//! Offline stand-in for the `bytes` crate, backed by plain `Vec<u8>`.
//!
//! Only the small API surface used by this workspace is provided: an
//! immutable [`Bytes`] buffer, a growable [`BytesMut`] builder and the
//! [`BufMut`] writer trait. Cheap O(1) slicing of the real crate is not
//! reproduced — buffers here are owned vectors.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty builder.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty builder with a reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the builder into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Byte-oriented writer trait (subset of the real `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.0.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(0xab);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[0xab, 1, 2, 3]);
        assert_eq!(frozen.len(), 4);
        assert!(!frozen.is_empty());
    }
}
