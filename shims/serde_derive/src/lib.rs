//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! real serde cannot be vendored. Nothing in the workspace actually
//! serializes through serde (the VBS format has its own hand-written binary
//! codec); the derives only annotate types for downstream users. The
//! stand-in therefore accepts `#[derive(Serialize, Deserialize)]` (including
//! `#[serde(...)]` field attributes) and expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
