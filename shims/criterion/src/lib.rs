//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by this workspace's benches: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a short warm-up followed by `sample_size`
//! timed iterations and prints the mean and min wall-clock time per
//! iteration. Good enough to spot order-of-magnitude regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Per-iteration timer handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then `sample_size` measured runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples.min(3) {
            std::hint::black_box(routine());
        }
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.measured.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&format!("{}/{}", id.name, id.parameter), |b| f(b, input));
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, label, &bencher.measured);
    }
}

/// The benchmark driver (offline stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let mut bencher = Bencher {
            samples: 10,
            measured: Vec::new(),
        };
        f(&mut bencher);
        report("bench", &name.to_string(), &bencher.measured);
    }
}

fn report(group: &str, label: &str, measured: &[Duration]) {
    if measured.is_empty() {
        println!("{group}/{label}: no samples recorded");
        return;
    }
    let total: Duration = measured.iter().sum();
    let mean = total / measured.len() as u32;
    let min = measured.iter().min().copied().unwrap_or_default();
    println!(
        "{group}/{label}: mean {:.3?} min {:.3?} ({} samples)",
        mean,
        min,
        measured.len()
    );
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles bench functions into a single runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // 3 warm-up + 5 measured iterations.
        assert_eq!(runs, 8);
    }
}
