//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`rngs::SmallRng`] seeded with
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`] over integer
//! ranges and [`Rng::gen_bool`]. The generator is splitmix64 — statistically
//! fine for the synthetic-workload and annealing uses here, deterministic
//! for a given seed, but *not* the same stream as the real `rand::SmallRng`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits, as the real rand does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                let v = lo + (rng.next_u64() as u128 % span) as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                let v = lo + (rng.next_u64() as u128 % span) as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A splitmix64 generator — the stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_range_bounds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u32 = a.gen_range(5..17);
            assert!((5..17).contains(&x));
            assert_eq!(x, b.gen_range(5..17));
        }
        let mut c = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let s: i32 = c.gen_range(-3..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious bias: {trues}");
    }
}
