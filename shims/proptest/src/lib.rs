//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings, integer-range strategies, tuple strategies,
//! [`collection::vec`], `any::<bool>()` and the `prop_assert*` /
//! `prop_assume!` macros. Each test runs a fixed number of deterministic
//! seeded cases (`PROPTEST_CASES` env var overrides the default of 64);
//! failing inputs are *not* shrunk — the assertion message plus the
//! deterministic seed are the reproduction recipe.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Produces values of type `Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "cannot sample from empty range");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Uniform `bool` strategy (what `any::<bool>()` returns).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Types with a canonical strategy, reachable through [`crate::any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

/// Returns the canonical strategy of a type, `proptest::any::<T>()`-style.
pub fn any<A: strategy::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Strategy for `Vec<T>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Length specifications accepted by [`vec`]: a fixed `usize` or any
    /// `usize`-valued strategy (ranges in particular) — the stand-in for
    /// proptest's `Into<SizeRange>` bound.
    pub trait IntoLenStrategy {
        /// The strategy the specification converts into.
        type Strategy: Strategy<Value = usize>;
        /// Performs the conversion.
        fn into_len_strategy(self) -> Self::Strategy;
    }

    /// A strategy that always yields the same length.
    #[derive(Debug, Clone, Copy)]
    pub struct FixedLen(usize);

    impl Strategy for FixedLen {
        type Value = usize;
        fn sample(&self, _rng: &mut TestRng) -> usize {
            self.0
        }
    }

    impl IntoLenStrategy for usize {
        type Strategy = FixedLen;
        fn into_len_strategy(self) -> FixedLen {
            FixedLen(self)
        }
    }

    impl IntoLenStrategy for Range<usize> {
        type Strategy = Range<usize>;
        fn into_len_strategy(self) -> Self {
            self
        }
    }

    impl IntoLenStrategy for RangeInclusive<usize> {
        type Strategy = RangeInclusive<usize>;
        fn into_len_strategy(self) -> Self {
            self
        }
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy, L: IntoLenStrategy>(element: S, len: L) -> VecStrategy<S, L::Strategy> {
        VecStrategy {
            element,
            len: len.into_len_strategy(),
        }
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (minimal) case-running machinery behind [`crate::proptest!`].

    /// Deterministic splitmix64 generator driving every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so every property test has
        /// its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case and the body re-runs for every case.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::cases() {
                    let _ = __proptest_case;
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its sampled inputs are not applicable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in -4i32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_of_tuples_respects_len(v in collection::vec((0u64..10, 1u32..5), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 10);
                prop_assert!((1..5).contains(b));
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_takes_both_values(b in any::<bool>()) {
            let _ = b;
        }
    }
}
