//! Offline stand-in for the `serde` facade crate.
//!
//! See `shims/serde_derive` for the rationale. `use serde::{Deserialize,
//! Serialize}` resolves to the no-op derive macros; no trait machinery is
//! provided because nothing in the workspace bounds on the serde traits.

pub use serde_derive::{Deserialize, Serialize};
