use std::fmt;
use vbs_arch::Coord;

/// Errors reported by the fabric simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Two different nets are electrically connected by the configuration.
    Short {
        /// Name of the first net.
        a: String,
        /// Name of the second net.
        b: String,
    },
    /// A net does not reach one of its sink pins.
    OpenNet {
        /// Name of the net.
        net: String,
        /// The macro holding the unreached sink.
        site: Coord,
        /// The unreached pin.
        pin: u8,
    },
    /// The LUT content found at a site differs from the netlist.
    WrongLogic {
        /// The macro with the wrong logic content.
        site: Coord,
    },
    /// The placement does not match the configuration dimensions.
    ShapeMismatch,
    /// Functional evaluation was asked for an unsupported circuit (e.g. a
    /// combinational loop).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Short { a, b } => write!(f, "nets `{a}` and `{b}` are shorted"),
            SimError::OpenNet { net, site, pin } => {
                write!(f, "net `{net}` does not reach pin {pin} of macro {site}")
            }
            SimError::WrongLogic { site } => {
                write!(f, "logic content at macro {site} differs from the netlist")
            }
            SimError::ShapeMismatch => write!(f, "placement and configuration shapes differ"),
            SimError::Unsupported { reason } => write!(f, "unsupported circuit: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OpenNet {
            net: "n3".into(),
            site: Coord::new(1, 2),
            pin: 4,
        };
        assert!(e.to_string().contains("pin 4"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
