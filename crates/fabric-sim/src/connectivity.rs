//! Electrical connectivity extraction from a raw configuration.

use crate::error::SimError;
use std::collections::HashMap;
use vbs_arch::{Coord, SbPair, Side, WireRef};
use vbs_bitstream::TaskBitstream;
use vbs_netlist::{BlockKind, Netlist};
use vbs_place::Placement;

/// One electrical node of the configured fabric: a wire or a logic-block pin,
/// in task-relative coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FabricNode {
    /// A routing wire.
    Wire(WireRef),
    /// Pin `pin` of the macro at `site`.
    Pin {
        /// The macro owning the pin.
        site: Coord,
        /// The pin number.
        pin: u8,
    },
}

/// The electrical nets created by a configuration: a partition of the fabric
/// nodes touched by at least one closed switch.
#[derive(Debug, Clone)]
pub struct Connectivity {
    parent: HashMap<FabricNode, FabricNode>,
}

impl Connectivity {
    fn find(&self, mut node: FabricNode) -> FabricNode {
        while let Some(&p) = self.parent.get(&node) {
            if p == node {
                break;
            }
            node = p;
        }
        node
    }

    /// Whether two pins are electrically connected by the configuration.
    pub fn pins_connected(&self, a: (Coord, u8), b: (Coord, u8)) -> bool {
        let na = FabricNode::Pin {
            site: a.0,
            pin: a.1,
        };
        let nb = FabricNode::Pin {
            site: b.0,
            pin: b.1,
        };
        self.parent.contains_key(&na)
            && self.parent.contains_key(&nb)
            && self.find(na) == self.find(nb)
    }

    /// The representative node of the electrical net a pin belongs to, if the
    /// pin is connected to anything.
    pub fn net_of_pin(&self, site: Coord, pin: u8) -> Option<FabricNode> {
        let node = FabricNode::Pin { site, pin };
        self.parent.contains_key(&node).then(|| self.find(node))
    }

    /// Number of distinct electrical nets.
    pub fn net_count(&self) -> usize {
        let mut roots: Vec<FabricNode> = self.parent.keys().map(|&n| self.find(n)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }
}

struct Builder {
    parent: HashMap<FabricNode, FabricNode>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, node: FabricNode) -> FabricNode {
        let p = *self.parent.entry(node).or_insert(node);
        if p == node {
            return node;
        }
        let root = self.find(p);
        self.parent.insert(node, root);
        root
    }

    fn union(&mut self, a: FabricNode, b: FabricNode) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }
}

/// Rebuilds the electrical nets created by every closed switch of `task`.
pub fn extract_connectivity(task: &TaskBitstream) -> Connectivity {
    let spec = *task.spec();
    let mut b = Builder::new();
    let in_task = |w: &WireRef| w.owner.x < task.width() && w.owner.y < task.height();

    for (at, frame) in task.iter_frames() {
        // Switch-box pass switches.
        for t in 0..spec.channel_width() {
            for pair in SbPair::ALL {
                if !frame.sb(t, pair) {
                    continue;
                }
                let (sa, sb) = pair.sides();
                let wire_at = |side: Side| -> Option<WireRef> {
                    let w = match side {
                        Side::East => Some(WireRef::horizontal(at.x, at.y, t)),
                        Side::North => Some(WireRef::vertical(at.x, at.y, t)),
                        Side::West => at.x.checked_sub(1).map(|x| WireRef::horizontal(x, at.y, t)),
                        Side::South => at.y.checked_sub(1).map(|y| WireRef::vertical(at.x, y, t)),
                    }?;
                    in_task(&w).then_some(w)
                };
                if let (Some(wa), Some(wb)) = (wire_at(sa), wire_at(sb)) {
                    b.union(FabricNode::Wire(wa), FabricNode::Wire(wb));
                }
            }
        }
        // Connection-box crossings.
        for pin in 0..spec.lb_pins() {
            for t in 0..spec.channel_width() {
                if !frame.crossing(pin, t) {
                    continue;
                }
                let wire = if pin % 2 == 0 {
                    WireRef::horizontal(at.x, at.y, t)
                } else {
                    WireRef::vertical(at.x, at.y, t)
                };
                if in_task(&wire) {
                    b.union(FabricNode::Pin { site: at, pin }, FabricNode::Wire(wire));
                }
            }
        }
    }
    Connectivity { parent: b.parent }
}

/// Verifies that `task` implements `netlist` under `placement`:
///
/// 1. every net's driver pin reaches all of its sink pins,
/// 2. no two different nets are electrically connected,
/// 3. every LUT site holds the netlist's truth table and register setting.
///
/// # Errors
///
/// Returns the first violation as a [`SimError`].
pub fn verify_against_netlist(
    task: &TaskBitstream,
    netlist: &Netlist,
    placement: &Placement,
) -> Result<Connectivity, SimError> {
    if placement.placed_blocks() != netlist.block_count() {
        return Err(SimError::ShapeMismatch);
    }
    let origin = placement.region().origin;
    let rel = |c: Coord| Coord::new(c.x - origin.x, c.y - origin.y);
    let connectivity = extract_connectivity(task);
    let output_pin = task.spec().output_pin();

    // 1. Connectivity of every net, and 2. no shorts between nets.
    let mut owner_of_root: HashMap<FabricNode, String> = HashMap::new();
    for (_, net) in netlist.iter_nets() {
        if net.sinks.is_empty() {
            continue;
        }
        let driver_block = netlist.block(net.driver);
        let driver_pin = match driver_block.kind {
            BlockKind::Lut { .. } | BlockKind::InputPad => output_pin,
            BlockKind::OutputPad => 0,
        };
        let driver_site = rel(placement.site(net.driver));
        let root = connectivity
            .net_of_pin(driver_site, driver_pin)
            .ok_or_else(|| SimError::OpenNet {
                net: net.name.clone(),
                site: driver_site,
                pin: driver_pin,
            })?;
        if let Some(existing) = owner_of_root.get(&root) {
            if existing != &net.name {
                return Err(SimError::Short {
                    a: existing.clone(),
                    b: net.name.clone(),
                });
            }
        }
        owner_of_root.insert(root, net.name.clone());
        for sink in &net.sinks {
            let site = rel(placement.site(sink.block));
            match connectivity.net_of_pin(site, sink.slot) {
                Some(r) if r == root => {}
                _ => {
                    return Err(SimError::OpenNet {
                        net: net.name.clone(),
                        site,
                        pin: sink.slot,
                    })
                }
            }
        }
    }

    // 3. Logic contents.
    let lut_size = task.spec().lut_size();
    for (block_id, block) in netlist.iter_blocks() {
        if let BlockKind::Lut { truth, registered } = &block.kind {
            let site = rel(placement.site(block_id));
            let (found_truth, found_reg) = task
                .try_frame(site)
                .map_err(|_| SimError::ShapeMismatch)?
                .logic();
            if found_truth != truth.widen(lut_size) || found_reg != *registered {
                return Err(SimError::WrongLogic { site });
            }
        }
    }

    Ok(connectivity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, Device};
    use vbs_bitstream::generate_bitstream;
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};
    use vbs_route::{route, RouterConfig};

    fn flow() -> (Netlist, Placement, TaskBitstream) {
        let netlist = SyntheticSpec::new("sim", 24, 5, 5)
            .with_seed(6)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 7, 7).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(6)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        let raw = generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
        (netlist, placement, raw)
    }

    #[test]
    fn generated_bitstream_verifies_against_its_netlist() {
        let (netlist, placement, raw) = flow();
        let connectivity = verify_against_netlist(&raw, &netlist, &placement).unwrap();
        assert!(connectivity.net_count() > 0);
    }

    #[test]
    fn breaking_a_switch_is_detected_as_an_open() {
        let (netlist, placement, raw) = flow();
        // Clear every switch-box bit of one frame that carries routing.
        let mut broken = raw.clone();
        let victim = raw
            .iter_frames()
            .find(|(_, f)| f.routing_bits().any(|b| b))
            .map(|(c, _)| c)
            .unwrap();
        let spec = *raw.spec();
        let mut frame = broken.frame_mut(victim);
        for t in 0..spec.channel_width() {
            for pair in SbPair::ALL {
                frame.set_sb(t, pair, false);
            }
        }
        for pin in 0..spec.lb_pins() {
            for t in 0..spec.channel_width() {
                frame.set_crossing(pin, t, false);
            }
        }
        let result = verify_against_netlist(&broken, &netlist, &placement);
        assert!(
            matches!(result, Err(SimError::OpenNet { .. })),
            "{result:?}"
        );
    }

    #[test]
    fn corrupting_logic_is_detected() {
        let (netlist, placement, raw) = flow();
        let (lut_id, _) = netlist
            .iter_blocks()
            .find(|(_, b)| b.kind.is_lut())
            .unwrap();
        let site = placement.site(lut_id);
        let mut broken = raw.clone();
        let bit = broken.frame(site).bit(0);
        broken.frame_mut(site).set_bit(0, !bit);
        assert!(matches!(
            verify_against_netlist(&broken, &netlist, &placement),
            Err(SimError::WrongLogic { .. })
        ));
    }

    #[test]
    fn shorting_two_nets_is_detected() {
        let (netlist, placement, raw) = flow();
        // Turn on every switch of a frame: this almost certainly bridges two
        // distinct nets somewhere.
        let mut broken = raw.clone();
        let spec = *raw.spec();
        for x in 0..broken.width() {
            for y in 0..broken.height() {
                let mut frame = broken.frame_mut(Coord::new(x, y));
                for t in 0..spec.channel_width() {
                    for pair in SbPair::ALL {
                        frame.set_sb(t, pair, true);
                    }
                }
            }
        }
        assert!(matches!(
            verify_against_netlist(&broken, &netlist, &placement),
            Err(SimError::Short { .. }) | Err(SimError::OpenNet { .. })
        ));
    }
}
