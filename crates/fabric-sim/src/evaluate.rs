//! Functional evaluation of a configured fabric.

use crate::connectivity::{extract_connectivity, FabricNode};
use crate::error::SimError;
use std::collections::HashMap;
use vbs_arch::Coord;
use vbs_bitstream::TaskBitstream;
use vbs_netlist::{BlockKind, Netlist};
use vbs_place::Placement;

/// Evaluates the combinational behaviour of a configured task on one input
/// vector and returns the value observed at every primary output pad.
///
/// Registered LUTs are treated as transparent (the flip-flop is bypassed for
/// the purpose of this check), so the result is the steady-state value after
/// the registers have been given enough cycles with stable inputs.
///
/// The evaluation reads LUT truth tables *from the configuration frames*, not
/// from the netlist; only the pad positions and pin bindings come from the
/// placement. Comparing the result with a netlist-level simulation therefore
/// exercises the whole bit-stream pipeline.
///
/// # Errors
///
/// Returns [`SimError::Unsupported`] if the circuit does not settle (a
/// combinational loop) and [`SimError::ShapeMismatch`] if the placement does
/// not match the netlist.
pub fn evaluate(
    task: &TaskBitstream,
    netlist: &Netlist,
    placement: &Placement,
    inputs: &HashMap<String, bool>,
) -> Result<HashMap<String, bool>, SimError> {
    if placement.placed_blocks() != netlist.block_count() {
        return Err(SimError::ShapeMismatch);
    }
    let origin = placement.region().origin;
    let rel = |c: Coord| Coord::new(c.x - origin.x, c.y - origin.y);
    let connectivity = extract_connectivity(task);
    let output_pin = task.spec().output_pin();
    let lut_size = task.spec().lut_size() as usize;

    // Electrical net values, keyed by representative node.
    let mut values: HashMap<FabricNode, bool> = HashMap::new();

    // Drive primary inputs.
    for (block_id, block) in netlist.iter_blocks() {
        if let BlockKind::InputPad = block.kind {
            let site = rel(placement.site(block_id));
            if let Some(root) = connectivity.net_of_pin(site, output_pin) {
                let value = inputs.get(&block.name).copied().unwrap_or(false);
                values.insert(root, value);
            }
        }
    }

    // Relax LUT outputs until the values settle.
    let lut_sites: Vec<(Coord, Vec<Option<FabricNode>>, Option<FabricNode>)> = netlist
        .iter_blocks()
        .filter(|(_, b)| b.kind.is_lut())
        .map(|(id, _)| {
            let site = rel(placement.site(id));
            let input_roots = (0..lut_size)
                .map(|slot| connectivity.net_of_pin(site, slot as u8))
                .collect();
            let output_root = connectivity.net_of_pin(site, output_pin);
            (site, input_roots, output_root)
        })
        .collect();

    let max_iterations = netlist.lut_count() + 2;
    for _ in 0..max_iterations {
        let mut changed = false;
        for (site, input_roots, output_root) in &lut_sites {
            let Some(output_root) = output_root else {
                continue;
            };
            let (truth, _) = task
                .try_frame(*site)
                .map_err(|_| SimError::ShapeMismatch)?
                .logic();
            let input_values: Vec<bool> = input_roots
                .iter()
                .map(|r| r.and_then(|r| values.get(&r).copied()).unwrap_or(false))
                .collect();
            let out = truth.evaluate(&input_values);
            if values.get(output_root).copied() != Some(out) {
                values.insert(*output_root, out);
                changed = true;
            }
        }
        if !changed {
            // Settled: read the primary outputs.
            let mut outputs = HashMap::new();
            for (block_id, block) in netlist.iter_blocks() {
                if let BlockKind::OutputPad = block.kind {
                    let site = rel(placement.site(block_id));
                    let value = connectivity
                        .net_of_pin(site, 0)
                        .and_then(|r| values.get(&r).copied())
                        .unwrap_or(false);
                    outputs.insert(block.name.clone(), value);
                }
            }
            return Ok(outputs);
        }
    }
    Err(SimError::Unsupported {
        reason: "combinational values did not settle (feedback loop)".into(),
    })
}

/// Reference model: evaluates the netlist directly (no configuration
/// involved), with the same transparent-register convention as [`evaluate`].
///
/// # Errors
///
/// Returns [`SimError::Unsupported`] if the netlist does not settle.
pub fn evaluate_netlist(
    netlist: &Netlist,
    inputs: &HashMap<String, bool>,
) -> Result<HashMap<String, bool>, SimError> {
    let mut net_values: HashMap<usize, bool> = HashMap::new();
    for (_, block) in netlist.iter_blocks() {
        if let BlockKind::InputPad = block.kind {
            if let Some(net) = block.output {
                net_values.insert(
                    net.index(),
                    inputs.get(&block.name).copied().unwrap_or(false),
                );
            }
        }
    }
    let max_iterations = netlist.lut_count() + 2;
    for _ in 0..max_iterations {
        let mut changed = false;
        for (_, block) in netlist.iter_blocks() {
            if let BlockKind::Lut { truth, .. } = &block.kind {
                let input_values: Vec<bool> = block
                    .inputs
                    .iter()
                    .map(|n| {
                        n.and_then(|n| net_values.get(&n.index()).copied())
                            .unwrap_or(false)
                    })
                    .collect();
                let out = truth.evaluate(&input_values);
                let net = block.output.expect("LUTs drive a net").index();
                if net_values.get(&net).copied() != Some(out) {
                    net_values.insert(net, out);
                    changed = true;
                }
            }
        }
        if !changed {
            let mut outputs = HashMap::new();
            for (_, block) in netlist.iter_blocks() {
                if let BlockKind::OutputPad = block.kind {
                    let value = block.inputs[0]
                        .and_then(|n| net_values.get(&n.index()).copied())
                        .unwrap_or(false);
                    outputs.insert(block.name.clone(), value);
                }
            }
            return Ok(outputs);
        }
    }
    Err(SimError::Unsupported {
        reason: "netlist did not settle".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, Device};
    use vbs_bitstream::generate_bitstream;
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};
    use vbs_route::{route, RouterConfig};

    #[test]
    fn configuration_matches_netlist_semantics_on_random_vectors() {
        let netlist = SyntheticSpec::new("eval", 18, 5, 3)
            .with_seed(11)
            .with_registered_fraction(0.0)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 6, 6).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(11)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        let raw = generate_bitstream(&netlist, &device, &placement, &routing).unwrap();

        for pattern in 0u32..8 {
            let inputs: HashMap<String, bool> = (0..netlist.input_count())
                .map(|i| (format!("pi_{i}"), (pattern >> (i % 3)) & 1 == 1))
                .collect();
            let golden = evaluate_netlist(&netlist, &inputs).unwrap();
            let from_bits = evaluate(&raw, &netlist, &placement, &inputs).unwrap();
            assert_eq!(golden, from_bits, "input pattern {pattern}");
        }
    }
}
