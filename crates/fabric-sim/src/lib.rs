//! Functional simulation of the reconfigurable fabric.
//!
//! The paper has no access to a physical FlexTiles device either; what it
//! needs (and what this crate provides) is a way to convince oneself that a
//! configuration written into the fabric's configuration memory implements
//! the intended circuit. The simulator:
//!
//! * interprets a [`TaskBitstream`] switch by switch and rebuilds the
//!   electrical nets it creates ([`extract_connectivity`]);
//! * checks a configuration against the placed netlist it is supposed to
//!   implement ([`verify_against_netlist`]): every source pin must reach all
//!   of its sink pins, no two nets may be shorted, and every LUT site must
//!   hold the right truth table;
//! * evaluates the combinational part of small configurations on concrete
//!   input vectors ([`evaluate`]), as an end-to-end functional check.
//!
//! This is the verification backstop used by the integration tests for the
//! encode → decode → relocate pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connectivity;
mod error;
mod evaluate;

pub use connectivity::{extract_connectivity, verify_against_netlist, Connectivity, FabricNode};
pub use error::SimError;
pub use evaluate::{evaluate, evaluate_netlist};
