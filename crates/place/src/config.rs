//! Simulated-annealing configuration.

use serde::{Deserialize, Serialize};

/// Tuning knobs of the simulated-annealing placer.
///
/// The defaults follow the classic VPR adaptive schedule; [`PlacerConfig::fast`]
/// trades quality for speed (useful in tests and quick experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// RNG seed; the placer is deterministic for a given seed.
    pub seed: u64,
    /// Multiplier of the number of moves evaluated per temperature step
    /// (`inner_num` in VPR terms). 1.0 is the standard effort.
    pub effort: f64,
    /// Initial acceptance-probability target used to derive the starting
    /// temperature from the initial cost distribution.
    pub initial_acceptance: f64,
    /// Stop when the temperature falls below `exit_ratio * cost / nets`.
    pub exit_ratio: f64,
    /// Upper bound on the number of temperature steps (safety valve).
    pub max_steps: usize,
}

impl PlacerConfig {
    /// Standard-effort configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        PlacerConfig {
            seed,
            effort: 1.0,
            initial_acceptance: 0.8,
            exit_ratio: 0.005,
            max_steps: 512,
        }
    }

    /// Low-effort configuration: an order of magnitude fewer moves, for tests
    /// and fast iteration. Placement quality is still reasonable because the
    /// adaptive schedule spends the moves where they matter.
    pub fn fast(seed: u64) -> Self {
        PlacerConfig {
            effort: 0.08,
            max_steps: 160,
            ..PlacerConfig::new(seed)
        }
    }

    /// Returns the number of moves per temperature for `blocks` movable
    /// blocks: `effort * blocks^(4/3)`, at least 16.
    pub fn moves_per_step(&self, blocks: usize) -> usize {
        let base = (blocks as f64).powf(4.0 / 3.0);
        ((self.effort * base).round() as usize).max(16)
    }
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_cheaper_than_default() {
        let d = PlacerConfig::default();
        let f = PlacerConfig::fast(1);
        assert!(f.moves_per_step(1000) < d.moves_per_step(1000));
        assert!(d.moves_per_step(1000) > 1000);
    }

    #[test]
    fn moves_have_a_floor() {
        assert!(PlacerConfig::fast(0).moves_per_step(1) >= 16);
    }
}
