//! The placement result: a bijection between netlist blocks and grid sites.

use crate::error::PlaceError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vbs_arch::{Coord, Device, Rect};
use vbs_netlist::{BlockId, Netlist};

/// An assignment of every netlist block to a distinct macro of the device.
///
/// The placement also remembers the *task region*: the bounding rectangle all
/// blocks were constrained to, which later becomes the width/height recorded
/// in the Virtual Bit-Stream header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    region: Rect,
    site_of: Vec<Coord>,
    occupant: HashMap<Coord, BlockId>,
}

impl Placement {
    /// Builds a placement from an explicit block-to-site assignment.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::RegionOutsideDevice`] if any site lies outside
    /// `region` or the device, and [`PlaceError::DeviceTooSmall`] if two
    /// blocks share a site.
    pub fn from_sites(
        device: &Device,
        region: Rect,
        sites: Vec<Coord>,
    ) -> Result<Self, PlaceError> {
        if !device.bounds().contains_rect(&region) {
            return Err(PlaceError::RegionOutsideDevice);
        }
        let mut occupant = HashMap::with_capacity(sites.len());
        for (i, &site) in sites.iter().enumerate() {
            if !region.contains(site) {
                return Err(PlaceError::RegionOutsideDevice);
            }
            if occupant.insert(site, BlockId(i as u32)).is_some() {
                return Err(PlaceError::DeviceTooSmall {
                    blocks: sites.len(),
                    sites: region.area() as usize,
                });
            }
        }
        Ok(Placement {
            region,
            site_of: sites,
            occupant,
        })
    }

    /// The region the blocks were placed in (the hardware task's footprint).
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of placed blocks.
    pub fn placed_blocks(&self) -> usize {
        self.site_of.len()
    }

    /// The site of a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not part of the placed netlist.
    pub fn site(&self, block: BlockId) -> Coord {
        self.site_of[block.index()]
    }

    /// The block occupying `site`, if any.
    pub fn block_at(&self, site: Coord) -> Option<BlockId> {
        self.occupant.get(&site).copied()
    }

    /// Iterates over `(BlockId, Coord)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Coord)> + '_ {
        self.site_of
            .iter()
            .enumerate()
            .map(|(i, &c)| (BlockId(i as u32), c))
    }

    /// The tight bounding rectangle of the placed blocks (may be smaller than
    /// the placement region).
    pub fn used_bounds(&self) -> Rect {
        if self.site_of.is_empty() {
            return Rect::new(self.region.origin, 0, 0);
        }
        let min_x = self.site_of.iter().map(|c| c.x).min().unwrap_or(0);
        let min_y = self.site_of.iter().map(|c| c.y).min().unwrap_or(0);
        let max_x = self.site_of.iter().map(|c| c.x).max().unwrap_or(0);
        let max_y = self.site_of.iter().map(|c| c.y).max().unwrap_or(0);
        Rect::new(
            Coord::new(min_x, min_y),
            max_x - min_x + 1,
            max_y - min_y + 1,
        )
    }

    /// Checks that the placement is a valid assignment for `netlist`:
    /// one site per block, every block placed.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Unplaced`] when a block is missing.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), PlaceError> {
        if self.site_of.len() != netlist.block_count() {
            return Err(PlaceError::Unplaced {
                block: self.site_of.len(),
            });
        }
        Ok(())
    }

    /// Moves every site by the same offset, producing the placement of the
    /// relocated task. Used by tests to cross-check run-time relocation.
    pub fn translated(&self, dx: u16, dy: u16) -> Placement {
        let sites: Vec<Coord> = self
            .site_of
            .iter()
            .map(|c| Coord::new(c.x + dx, c.y + dy))
            .collect();
        let occupant = sites
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, BlockId(i as u32)))
            .collect();
        Placement {
            region: Rect::new(
                Coord::new(self.region.origin.x + dx, self.region.origin.y + dy),
                self.region.width,
                self.region.height,
            ),
            site_of: sites,
            occupant,
        }
    }

    /// Internal mutable swap used by the annealer: exchanges the sites of two
    /// blocks (or moves a block to an empty site when `b` is `None`).
    pub(crate) fn swap(&mut self, a: BlockId, target: Coord) -> Option<BlockId> {
        let from = self.site_of[a.index()];
        let displaced = self.occupant.get(&target).copied();
        match displaced {
            Some(b) if b != a => {
                self.site_of[b.index()] = from;
                self.occupant.insert(from, b);
            }
            _ => {
                self.occupant.remove(&from);
            }
        }
        self.site_of[a.index()] = target;
        self.occupant.insert(target, a);
        displaced.filter(|&b| b != a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;

    fn device() -> Device {
        Device::new(ArchSpec::paper_example(), 6, 6).unwrap()
    }

    #[test]
    fn from_sites_rejects_overlaps_and_out_of_region() {
        let d = device();
        let region = Rect::at_origin(3, 3);
        let overlap = vec![Coord::new(0, 0), Coord::new(0, 0)];
        assert!(matches!(
            Placement::from_sites(&d, region, overlap),
            Err(PlaceError::DeviceTooSmall { .. })
        ));
        let outside = vec![Coord::new(5, 5)];
        assert!(matches!(
            Placement::from_sites(&d, region, outside),
            Err(PlaceError::RegionOutsideDevice)
        ));
    }

    #[test]
    fn swap_moves_and_exchanges() {
        let d = device();
        let region = Rect::at_origin(4, 4);
        let mut p =
            Placement::from_sites(&d, region, vec![Coord::new(0, 0), Coord::new(1, 0)]).unwrap();
        // Move block 0 to an empty site.
        assert_eq!(p.swap(BlockId(0), Coord::new(2, 2)), None);
        assert_eq!(p.site(BlockId(0)), Coord::new(2, 2));
        assert_eq!(p.block_at(Coord::new(0, 0)), None);
        // Swap block 0 with block 1.
        assert_eq!(p.swap(BlockId(0), Coord::new(1, 0)), Some(BlockId(1)));
        assert_eq!(p.site(BlockId(1)), Coord::new(2, 2));
        assert_eq!(p.block_at(Coord::new(1, 0)), Some(BlockId(0)));
    }

    #[test]
    fn translated_shifts_everything() {
        let d = Device::new(ArchSpec::paper_example(), 12, 12).unwrap();
        let p = Placement::from_sites(
            &d,
            Rect::at_origin(3, 3),
            vec![Coord::new(0, 1), Coord::new(2, 2)],
        )
        .unwrap();
        let t = p.translated(4, 5);
        assert_eq!(t.site(BlockId(0)), Coord::new(4, 6));
        assert_eq!(t.site(BlockId(1)), Coord::new(6, 7));
        assert_eq!(t.region().origin, Coord::new(4, 5));
        assert_eq!(t.block_at(Coord::new(6, 7)), Some(BlockId(1)));
    }

    #[test]
    fn used_bounds_is_tight() {
        let d = device();
        let p = Placement::from_sites(
            &d,
            Rect::at_origin(6, 6),
            vec![Coord::new(1, 2), Coord::new(4, 3)],
        )
        .unwrap();
        let b = p.used_bounds();
        assert_eq!(b.origin, Coord::new(1, 2));
        assert_eq!((b.width, b.height), (4, 2));
    }
}
