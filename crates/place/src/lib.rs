//! Packing and placement for the island-style FPGA model.
//!
//! The paper's flow (Figure 3) uses VPR to pack the mapped netlist into
//! logic blocks and to place them on the logic grid. In this architecture one
//! LUT + optional flip-flop fills exactly one logic block, so packing is the
//! identity mapping; placement is a classic simulated-annealing optimisation
//! of the half-perimeter wirelength, following the adaptive schedule of VPR.
//!
//! The output of this crate, a [`Placement`], assigns every netlist block
//! (LUT or I/O pad — the paper treats primary I/O as part of the fabric) to a
//! distinct macro of the device grid. The router then connects the placed
//! pins through the routing network.
//!
//! # Example
//!
//! ```
//! use vbs_arch::{ArchSpec, Device};
//! use vbs_netlist::generate::SyntheticSpec;
//! use vbs_place::{place, PlacerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("demo", 30, 6, 6).with_seed(1).build()?;
//! let device = Device::new(ArchSpec::paper_evaluation(), 8, 8)?;
//! let placement = place(&netlist, &device, &PlacerConfig::fast(1))?;
//! assert_eq!(placement.placed_blocks(), netlist.block_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
mod config;
mod cost;
mod error;
mod placement;

pub use annealer::place;
pub use config::PlacerConfig;
pub use cost::{net_bounding_box, wirelength_cost, BoundingBox};
pub use error::PlaceError;
pub use placement::Placement;
