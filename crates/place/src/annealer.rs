//! The simulated-annealing placement engine.
//!
//! The schedule follows VPR's adaptive annealer: the starting temperature is
//! derived from the cost spread of random perturbations, the temperature
//! update factor depends on the measured acceptance rate, and the move range
//! limit shrinks as the placement cools so late moves stay local.

use crate::config::PlacerConfig;
use crate::cost::{net_cost, wirelength_cost};
use crate::error::PlaceError;
use crate::placement::Placement;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vbs_arch::{Coord, Device, Rect};
use vbs_netlist::{BlockId, NetId, Netlist};

/// Places `netlist` on `device`, using the whole device as the task region.
///
/// # Errors
///
/// Returns [`PlaceError::DeviceTooSmall`] when the netlist has more blocks
/// than the device has macros.
pub fn place(
    netlist: &Netlist,
    device: &Device,
    config: &PlacerConfig,
) -> Result<Placement, PlaceError> {
    place_in_region(netlist, device, device.bounds(), config)
}

/// Places `netlist` inside `region` of `device`.
///
/// # Errors
///
/// Returns [`PlaceError::RegionOutsideDevice`] if the region does not fit the
/// device and [`PlaceError::DeviceTooSmall`] if it has fewer sites than the
/// netlist has blocks.
pub fn place_in_region(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    config: &PlacerConfig,
) -> Result<Placement, PlaceError> {
    if !device.bounds().contains_rect(&region) {
        return Err(PlaceError::RegionOutsideDevice);
    }
    let blocks = netlist.block_count();
    let sites = region.area() as usize;
    if blocks > sites {
        return Err(PlaceError::DeviceTooSmall { blocks, sites });
    }
    if blocks == 0 {
        return Placement::from_sites(device, region, Vec::new());
    }

    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);

    // Initial placement: blocks scattered over a shuffled list of sites.
    let mut all_sites: Vec<Coord> = region.iter().collect();
    for i in (1..all_sites.len()).rev() {
        let j = rng.gen_range(0..=i);
        all_sites.swap(i, j);
    }
    let mut placement = Placement::from_sites(device, region, all_sites[..blocks].to_vec())?;

    let mut cost = wirelength_cost(netlist, &placement);
    let nets = netlist.net_count().max(1);

    // Pre-compute which nets touch each block, so a move only re-evaluates the
    // affected nets.
    let mut nets_of_block: Vec<Vec<NetId>> = vec![Vec::new(); blocks];
    for (net_id, net) in netlist.iter_nets() {
        nets_of_block[net.driver.index()].push(net_id);
        for sink in &net.sinks {
            nets_of_block[sink.block.index()].push(net_id);
        }
    }
    for list in &mut nets_of_block {
        list.sort_unstable();
        list.dedup();
    }

    // Starting temperature: 20 x the standard deviation of random swap deltas
    // (VPR heuristic), measured on a probe pass.
    let probes = blocks.clamp(8, 256);
    let mut deltas = Vec::with_capacity(probes);
    for _ in 0..probes {
        let block = BlockId(rng.gen_range(0..blocks) as u32);
        let target = random_site(&mut rng, region, region.width.max(region.height));
        let (delta, undo) = try_move(netlist, &mut placement, &nets_of_block, block, target);
        deltas.push(delta);
        undo_move(&mut placement, undo);
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
    let mut temperature = 20.0 * var.sqrt().max(1.0);

    let mut rlim = region.width.max(region.height) as f64;
    let moves_per_step = config.moves_per_step(blocks);

    for _step in 0..config.max_steps {
        let mut accepted = 0usize;
        for _ in 0..moves_per_step {
            let block = BlockId(rng.gen_range(0..blocks) as u32);
            let from = placement.site(block);
            let target = neighbor_site(&mut rng, region, from, rlim.ceil() as u16);
            if target == from {
                continue;
            }
            let (delta, undo) = try_move(netlist, &mut placement, &nets_of_block, block, target);
            let accept = delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().min(1.0));
            if accept {
                cost += delta;
                accepted += 1;
            } else {
                undo_move(&mut placement, undo);
            }
        }
        let acceptance = accepted as f64 / moves_per_step as f64;

        // VPR's adaptive cooling schedule.
        let alpha = if acceptance > 0.96 {
            0.5
        } else if acceptance > 0.8 {
            0.9
        } else if acceptance > 0.15 {
            0.95
        } else {
            0.8
        };
        temperature *= alpha;
        // Range limit follows the acceptance rate towards the 44% sweet spot.
        rlim =
            (rlim * (1.0 - 0.44 + acceptance)).clamp(1.0, region.width.max(region.height) as f64);

        if temperature < config.exit_ratio * cost / nets as f64 {
            break;
        }
    }

    // A final greedy pass at zero temperature cleans up easy wins.
    for _ in 0..moves_per_step {
        let block = BlockId(rng.gen_range(0..blocks) as u32);
        let from = placement.site(block);
        let target = neighbor_site(&mut rng, region, from, 2);
        if target == from {
            continue;
        }
        let (delta, undo) = try_move(netlist, &mut placement, &nets_of_block, block, target);
        if delta <= 0.0 {
            cost += delta;
        } else {
            undo_move(&mut placement, undo);
        }
    }

    debug_assert!(
        (wirelength_cost(netlist, &placement) - cost).abs() < 1e-3 * cost.abs().max(1.0),
        "incremental cost bookkeeping diverged"
    );
    Ok(placement)
}

/// Record needed to undo a move: the block moved, where it came from, and the
/// displaced block (if the target was occupied).
struct Undo {
    block: BlockId,
    from: Coord,
    displaced: Option<BlockId>,
    to: Coord,
}

fn try_move(
    netlist: &Netlist,
    placement: &mut Placement,
    nets_of_block: &[Vec<NetId>],
    block: BlockId,
    target: Coord,
) -> (f64, Undo) {
    let from = placement.site(block);
    let occupant = placement.block_at(target);

    // Keep the affected-net list in a deterministic order: iteration order
    // feeds float summation and hence the accept/reject decisions.
    let mut affected: Vec<NetId> = nets_of_block[block.index()].clone();
    if let Some(other) = occupant {
        if other != block {
            affected.extend(nets_of_block[other.index()].iter().copied());
            affected.sort_unstable();
            affected.dedup();
        }
    }

    let before: f64 = affected
        .iter()
        .map(|&n| net_cost(netlist, placement, n))
        .sum();
    let displaced = placement.swap(block, target);
    let after: f64 = affected
        .iter()
        .map(|&n| net_cost(netlist, placement, n))
        .sum();
    (
        after - before,
        Undo {
            block,
            from,
            displaced,
            to: target,
        },
    )
}

fn undo_move(placement: &mut Placement, undo: Undo) {
    // Put the moved block back; this displaces whoever we put at `from`
    // (i.e. the originally displaced block), restoring both.
    placement.swap(undo.block, undo.from);
    if let Some(other) = undo.displaced {
        placement.swap(other, undo.to);
    }
}

fn random_site(rng: &mut SmallRng, region: Rect, _rlim: u16) -> Coord {
    Coord::new(
        region.origin.x + rng.gen_range(0..region.width),
        region.origin.y + rng.gen_range(0..region.height),
    )
}

fn neighbor_site(rng: &mut SmallRng, region: Rect, from: Coord, rlim: u16) -> Coord {
    let rlim = rlim.max(1) as i32;
    let dx = rng.gen_range(-rlim..=rlim);
    let dy = rng.gen_range(-rlim..=rlim);
    let x = (from.x as i32 + dx).clamp(
        region.origin.x as i32,
        (region.origin.x + region.width - 1) as i32,
    );
    let y = (from.y as i32 + dy).clamp(
        region.origin.y as i32,
        (region.origin.y + region.height - 1) as i32,
    );
    Coord::new(x as u16, y as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::wirelength_cost;
    use std::collections::HashSet;
    use vbs_arch::ArchSpec;
    use vbs_netlist::generate::SyntheticSpec;

    fn netlist(luts: usize) -> Netlist {
        SyntheticSpec::new("anneal", luts, 8, 8)
            .with_seed(17)
            .build()
            .unwrap()
    }

    #[test]
    fn placement_assigns_every_block_once() {
        let n = netlist(60);
        let device = Device::new(ArchSpec::paper_evaluation(), 10, 10).unwrap();
        let p = place(&n, &device, &PlacerConfig::fast(1)).unwrap();
        assert_eq!(p.placed_blocks(), n.block_count());
        let mut seen = HashSet::new();
        for (_, site) in p.iter() {
            assert!(device.contains(site));
            assert!(seen.insert(site), "two blocks share {site}");
        }
    }

    #[test]
    fn annealing_beats_random_placement() {
        let n = netlist(120);
        let device = Device::new(ArchSpec::paper_evaluation(), 14, 14).unwrap();
        // "Random" here is the probe-free initial state: effort zero keeps the
        // annealer from improving much, so compare fast effort vs none.
        let mut no_effort = PlacerConfig::fast(3);
        no_effort.effort = 0.0;
        no_effort.max_steps = 1;
        let random = place(&n, &device, &no_effort).unwrap();
        let annealed = place(&n, &device, &PlacerConfig::fast(3)).unwrap();
        assert!(
            wirelength_cost(&n, &annealed) < wirelength_cost(&n, &random),
            "annealed {} !< random {}",
            wirelength_cost(&n, &annealed),
            wirelength_cost(&n, &random)
        );
    }

    #[test]
    fn determinism_for_equal_seeds() {
        let n = netlist(40);
        let device = Device::new(ArchSpec::paper_evaluation(), 9, 9).unwrap();
        let a = place(&n, &device, &PlacerConfig::fast(5)).unwrap();
        let b = place(&n, &device, &PlacerConfig::fast(5)).unwrap();
        let sa: Vec<_> = a.iter().collect();
        let sb: Vec<_> = b.iter().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn too_small_device_is_rejected() {
        let n = netlist(60);
        let device = Device::new(ArchSpec::paper_evaluation(), 5, 5).unwrap();
        assert!(matches!(
            place(&n, &device, &PlacerConfig::fast(1)),
            Err(PlaceError::DeviceTooSmall { .. })
        ));
    }

    #[test]
    fn region_placement_stays_inside_region() {
        let n = netlist(20);
        let device = Device::new(ArchSpec::paper_evaluation(), 20, 20).unwrap();
        let region = Rect::new(Coord::new(5, 5), 8, 8);
        let p = place_in_region(&n, &device, region, &PlacerConfig::fast(2)).unwrap();
        for (_, site) in p.iter() {
            assert!(region.contains(site));
        }
        assert_eq!(p.region(), region);
    }
}
