use std::fmt;

/// Errors produced by the placer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The device does not have enough sites for the netlist blocks.
    DeviceTooSmall {
        /// Number of blocks to place.
        blocks: usize,
        /// Number of available sites.
        sites: usize,
    },
    /// The placement region does not lie inside the device.
    RegionOutsideDevice,
    /// A block is not placed (placement queried before completion or after a
    /// partial construction).
    Unplaced {
        /// Index of the unplaced block.
        block: usize,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::DeviceTooSmall { blocks, sites } => write!(
                f,
                "device too small: {blocks} blocks to place on {sites} sites"
            ),
            PlaceError::RegionOutsideDevice => {
                write!(f, "placement region does not fit inside the device")
            }
            PlaceError::Unplaced { block } => write!(f, "block {block} has no placement"),
        }
    }
}

impl std::error::Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = PlaceError::DeviceTooSmall {
            blocks: 10,
            sites: 4,
        };
        assert!(e.to_string().contains("10 blocks"));
        assert!(e.to_string().contains("4 sites"));
    }
}
