//! Placement cost: half-perimeter wirelength (HPWL) with the classic VPR
//! fanout correction factor.

use crate::placement::Placement;
use serde::{Deserialize, Serialize};
use vbs_netlist::{NetId, Netlist};

/// Axis-aligned bounding box of a net's terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum x of any terminal.
    pub min_x: u16,
    /// Minimum y of any terminal.
    pub min_y: u16,
    /// Maximum x of any terminal.
    pub max_x: u16,
    /// Maximum y of any terminal.
    pub max_y: u16,
}

impl BoundingBox {
    /// Half-perimeter of the box.
    pub fn half_perimeter(&self) -> u32 {
        (self.max_x - self.min_x) as u32 + (self.max_y - self.min_y) as u32
    }
}

/// Compensation factor for the HPWL underestimate on high-fanout nets,
/// following the piecewise-linear table used by VPR (Cheng's crossing counts).
pub(crate) fn fanout_correction(terminals: usize) -> f64 {
    const TABLE: [f64; 25] = [
        1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493, 1.4974, 1.5455,
        1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015,
        2.0379,
    ];
    if terminals == 0 {
        return 1.0;
    }
    if terminals <= TABLE.len() {
        TABLE[terminals - 1]
    } else {
        // Linear extrapolation used by VPR beyond 25 terminals.
        TABLE[TABLE.len() - 1] + 0.026_25 * (terminals - TABLE.len()) as f64
    }
}

/// Bounding box of `net` under `placement`, or `None` for nets with no
/// terminals.
pub fn net_bounding_box(
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
) -> Option<BoundingBox> {
    let n = netlist.net(net);
    let driver_site = placement.site(n.driver);
    let mut bb = BoundingBox {
        min_x: driver_site.x,
        min_y: driver_site.y,
        max_x: driver_site.x,
        max_y: driver_site.y,
    };
    for sink in &n.sinks {
        let site = placement.site(sink.block);
        bb.min_x = bb.min_x.min(site.x);
        bb.min_y = bb.min_y.min(site.y);
        bb.max_x = bb.max_x.max(site.x);
        bb.max_y = bb.max_y.max(site.y);
    }
    Some(bb)
}

/// Cost contribution of one net: corrected half-perimeter wirelength.
pub(crate) fn net_cost(netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    let n = netlist.net(net);
    let terminals = n.fanout() + 1;
    match net_bounding_box(netlist, placement, net) {
        Some(bb) => bb.half_perimeter() as f64 * fanout_correction(terminals),
        None => 0.0,
    }
}

/// Total wirelength cost of a placement: sum of corrected half-perimeter
/// wirelengths over every net.
///
/// ```
/// use vbs_arch::{ArchSpec, Device};
/// use vbs_netlist::generate::SyntheticSpec;
/// use vbs_place::{place, wirelength_cost, PlacerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = SyntheticSpec::new("demo", 20, 4, 4).with_seed(1).build()?;
/// let device = Device::new(ArchSpec::paper_evaluation(), 6, 6)?;
/// let placement = place(&netlist, &device, &PlacerConfig::fast(1))?;
/// assert!(wirelength_cost(&netlist, &placement) > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn wirelength_cost(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .iter_nets()
        .map(|(id, _)| net_cost(netlist, placement, id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, Coord, Device, Rect};
    use vbs_netlist::TruthTable;

    fn two_block_netlist() -> Netlist {
        let mut n = Netlist::new("pair", 6);
        let (_, a) = n.add_input("a");
        let t = TruthTable::from_fn(1, |i| i == 1).widen(6);
        let (_, _y) = n.add_lut("buf", t, &[a], false);
        n
    }

    #[test]
    fn bounding_box_spans_driver_and_sinks() {
        let netlist = two_block_netlist();
        let device = Device::new(ArchSpec::paper_example(), 8, 8).unwrap();
        let placement = Placement::from_sites(
            &device,
            Rect::at_origin(8, 8),
            vec![Coord::new(1, 1), Coord::new(5, 3)],
        )
        .unwrap();
        let bb = net_bounding_box(&netlist, &placement, NetId(0)).unwrap();
        assert_eq!((bb.min_x, bb.min_y, bb.max_x, bb.max_y), (1, 1, 5, 3));
        assert_eq!(bb.half_perimeter(), 6);
    }

    #[test]
    fn fanout_correction_is_monotone() {
        let mut prev = 0.0;
        for terminals in 1..200 {
            let f = fanout_correction(terminals);
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(fanout_correction(3), 1.0);
        assert!(fanout_correction(50) > 2.0);
    }

    #[test]
    fn cost_decreases_when_blocks_move_closer() {
        let netlist = two_block_netlist();
        let device = Device::new(ArchSpec::paper_example(), 8, 8).unwrap();
        let far = Placement::from_sites(
            &device,
            Rect::at_origin(8, 8),
            vec![Coord::new(0, 0), Coord::new(7, 7)],
        )
        .unwrap();
        let near = Placement::from_sites(
            &device,
            Rect::at_origin(8, 8),
            vec![Coord::new(0, 0), Coord::new(1, 0)],
        )
        .unwrap();
        assert!(wirelength_cost(&netlist, &near) < wirelength_cost(&netlist, &far));
    }
}
