//! Criterion bench behind Figure 5: VBS encoding cost as the cluster size
//! grows (the paper trades size against run-time decoding effort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbs_bench::run_circuit;
use vbs_core::VbsEncoder;

fn fig5_cluster(c: &mut Criterion) {
    let circuit = vbs_netlist::mcnc::by_name("tseng").expect("table entry");
    let run = run_circuit(circuit, 0.1, 20).expect("flow");
    let raw = run.result.raw_bitstream();
    let routing = run.result.routing();
    let spec = *run.result.device().spec();

    let mut group = c.benchmark_group("figure5");
    group.sample_size(15);
    for cluster in [1u16, 2, 4] {
        let encoder = VbsEncoder::new(spec, cluster).expect("encoder");
        group.bench_with_input(
            BenchmarkId::new("encode_cluster", cluster),
            &cluster,
            |b, _| b.iter(|| encoder.encode(raw, routing).expect("encode")),
        );
    }
    group.finish();
}

criterion_group!(benches, fig5_cluster);
criterion_main!(benches);
