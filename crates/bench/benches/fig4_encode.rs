//! Criterion bench behind Figure 4: raw bit-stream generation and VBS
//! encoding of an MCNC-calibrated circuit at the finest grain.

use criterion::{criterion_group, criterion_main, Criterion};
use vbs_bench::run_circuit;
use vbs_core::VbsEncoder;

fn fig4_encode(c: &mut Criterion) {
    let circuit = vbs_netlist::mcnc::by_name("ex5p").expect("table entry");
    let run = run_circuit(circuit, 0.08, 20).expect("flow");
    let raw = run.result.raw_bitstream();
    let routing = run.result.routing();
    let encoder = VbsEncoder::new(*run.result.device().spec(), 1).expect("encoder");

    let mut group = c.benchmark_group("figure4");
    group.sample_size(20);
    group.bench_function("vbs_encode_k1", |b| {
        b.iter(|| encoder.encode(raw, routing).expect("encode"))
    });
    group.bench_function("raw_serialize", |b| b.iter(|| raw.to_bytes()));
    group.finish();
}

criterion_group!(benches, fig4_encode);
criterion_main!(benches);
