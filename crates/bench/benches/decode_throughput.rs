//! Criterion bench of the run-time controller: de-virtualization throughput,
//! sequentially and with a worker pool (Section II-C notes the decode is
//! parallelizable macro by macro), plus the zero-allocation scratch-reuse
//! path and the streaming decode→write path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbs_bench::run_circuit;
use vbs_bitstream::TaskBitstream;
use vbs_core::{DecodeScratch, Devirtualizer, NullSink};
use vbs_runtime::{devirtualize_into, ReconfigurationController};

fn decode_throughput(c: &mut Criterion) {
    let circuit = vbs_netlist::mcnc::by_name("s298").expect("table entry");
    let run = run_circuit(circuit, 0.1, 20).expect("flow");
    let vbs = run.result.vbs(1).expect("encode");
    let device = run.result.device().clone();

    let mut group = c.benchmark_group("decode");
    group.sample_size(20);
    for workers in [1usize, 4] {
        let controller = ReconfigurationController::new(device.clone()).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("devirtualize", workers),
            &workers,
            |b, _| b.iter(|| controller.devirtualize(&vbs).expect("decode")),
        );
    }

    // Scratch reuse: steady-state zero-allocation decode into a recycled
    // buffer.
    let mut scratch = DecodeScratch::new();
    let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
    group.bench_function("decode_into (scratch reuse)", |b| {
        b.iter(|| devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode"))
    });

    // Streaming: frames pushed to a sink as each cluster record completes.
    let devirt = Devirtualizer::new(&vbs).expect("devirtualizer");
    group.bench_function("decode_streaming (null sink)", |b| {
        b.iter(|| {
            let mut sink = NullSink::default();
            devirt
                .decode_streaming(&mut staging, &mut scratch, &mut sink)
                .expect("decode");
            sink.frames
        })
    });

    // Streaming into live configuration memory: decode→resident latency of
    // a single load with writes overlapped (the decode scratch comes from
    // the controller's pool).
    let mut controller = ReconfigurationController::new(device);
    group.bench_function("load_streaming (into memory)", |b| {
        b.iter(|| {
            controller
                .load_streaming(&vbs, vbs_arch::Coord::new(0, 0), &mut staging)
                .expect("load")
        })
    });
    group.finish();
}

criterion_group!(benches, decode_throughput);
criterion_main!(benches);
