//! Criterion bench of the run-time controller: de-virtualization throughput,
//! sequentially and with a worker pool (Section II-C notes the decode is
//! parallelizable macro by macro).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbs_bench::run_circuit;
use vbs_runtime::ReconfigurationController;

fn decode_throughput(c: &mut Criterion) {
    let circuit = vbs_netlist::mcnc::by_name("s298").expect("table entry");
    let run = run_circuit(circuit, 0.1, 20).expect("flow");
    let vbs = run.result.vbs(1).expect("encode");
    let device = run.result.device().clone();

    let mut group = c.benchmark_group("decode");
    group.sample_size(20);
    for workers in [1usize, 4] {
        let controller = ReconfigurationController::new(device.clone()).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("devirtualize", workers),
            &workers,
            |b, _| b.iter(|| controller.devirtualize(&vbs).expect("decode")),
        );
    }
    group.finish();
}

criterion_group!(benches, decode_throughput);
criterion_main!(benches);
