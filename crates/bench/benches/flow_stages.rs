//! Criterion bench of the offline CAD flow stages (Figure 3): placement,
//! routing and raw bit-stream generation for a small circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use vbs_arch::{ArchSpec, Device};
use vbs_bitstream::generate_bitstream;
use vbs_netlist::generate::SyntheticSpec;
use vbs_place::{place, PlacerConfig};
use vbs_route::{route, RouterConfig};

fn flow_stages(c: &mut Criterion) {
    let netlist = SyntheticSpec::new("bench_flow", 80, 10, 10)
        .with_seed(5)
        .build()
        .expect("netlist");
    let device = Device::new(ArchSpec::new(12, 6).expect("spec"), 11, 11).expect("device");
    let placement = place(&netlist, &device, &PlacerConfig::fast(5)).expect("place");
    let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).expect("route");

    let mut group = c.benchmark_group("flow_stages");
    group.sample_size(10);
    group.bench_function("place", |b| {
        b.iter(|| place(&netlist, &device, &PlacerConfig::fast(5)).expect("place"))
    });
    group.bench_function("route", |b| {
        b.iter(|| route(&netlist, &device, &placement, &RouterConfig::fast()).expect("route"))
    });
    group.bench_function("raw_bitstream", |b| {
        b.iter(|| generate_bitstream(&netlist, &device, &placement, &routing).expect("bitstream"))
    });
    group.finish();
}

criterion_group!(benches, flow_stages);
criterion_main!(benches);
