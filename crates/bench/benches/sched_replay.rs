//! Criterion bench of the on-line scheduler: replaying a seeded 200-load
//! trace through the policy/compaction configurations, decode cache warm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbs_bench::sched_workload::{sched_device, sched_repository, sched_trace};
use vbs_runtime::{BestFit, FirstFit, PlacementPolicy, ReconfigurationController, TaskManager};
use vbs_sched::{replay, LruEviction, Scheduler, SchedulerConfig};

fn sched_replay(c: &mut Criterion) {
    let repository = sched_repository();
    let trace = sched_trace(200, 2015);

    let mut group = c.benchmark_group("sched_replay");
    group.sample_size(10);
    type PolicyMaker = fn() -> Box<dyn PlacementPolicy>;
    let configs: Vec<(&str, PolicyMaker, bool)> = vec![
        ("first_fit", || Box::new(FirstFit), false),
        ("best_fit_compaction", || Box::new(BestFit), true),
    ];
    for (name, make_policy, compaction) in configs {
        group.bench_with_input(
            BenchmarkId::new("replay_400_events", name),
            &compaction,
            |b, &compaction| {
                b.iter(|| {
                    let manager = TaskManager::new(
                        ReconfigurationController::new(sched_device(11, 11)),
                        repository.clone(),
                    )
                    .with_policy(make_policy());
                    let mut scheduler = Scheduler::with_config(
                        manager,
                        Box::new(LruEviction),
                        SchedulerConfig {
                            eviction_limit: 1,
                            compaction,
                            ..SchedulerConfig::default()
                        },
                    );
                    replay(&mut scheduler, &trace)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sched_replay);
criterion_main!(benches);
