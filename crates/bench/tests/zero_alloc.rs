//! Allocation-budget regression tests for the decode hot path, measured
//! with the counting global allocator.
//!
//! Pinned guarantees:
//!
//! * steady-state `decode_into` (warm scratch, recycled buffer) performs
//!   **zero** heap allocations per load;
//! * steady-state streaming loads (`load_streaming` into configuration
//!   memory) also perform zero allocations;
//! * a **cold** decode pre-reserves its buffers from the VBS header, so the
//!   first decode stays within a small per-buffer allocation budget instead
//!   of growing buffers incrementally.
//!
//! Everything runs inside one `#[test]` because the counters are
//! process-global and the harness runs tests concurrently.

use vbs_bench::{allocations, CountingAllocator};
use vbs_core::DecodeScratch;
use vbs_runtime::{devirtualize_into, ReconfigurationController};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn decode_hot_path_allocation_budget() {
    let repository = vbs_bench::sched_workload::sched_repository();
    let vbs = repository.fetch("fft_stage").expect("workload task");
    let device = vbs_bench::sched_workload::sched_device(11, 11);

    // --- Cold decode: one allocation per buffer, thanks to the header
    // pre-reserve (regression for incremental Vec/HashMap growth: without
    // reservation this is hundreds of allocations).
    let mut scratch = DecodeScratch::new();
    let mut staging = scratch.take_staging(*vbs.spec(), vbs.width(), vbs.height());
    let before = allocations();
    devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    let cold = allocations() - before;
    assert!(
        cold <= 24,
        "cold decode allocated {cold} times; the scratch has ~10 buffers and \
         each must allocate at most once (pre-reserved from the VBS header)"
    );

    // --- Steady state: zero allocations per load, across repeats.
    for _ in 0..2 {
        devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    }
    let before = allocations();
    for _ in 0..50 {
        devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "steady-state decode_into must not allocate (got {steady} over 50 loads)"
    );

    // --- Steady-state streaming load into live configuration memory:
    // decode plus frame writes, still zero allocations.
    let mut controller = ReconfigurationController::new(device);
    let origin = vbs_arch::Coord::new(2, 3);
    for _ in 0..2 {
        controller
            .load_streaming(&vbs, origin, &mut staging, &mut scratch)
            .expect("load");
    }
    let before = allocations();
    for _ in 0..50 {
        controller
            .load_streaming(&vbs, origin, &mut staging, &mut scratch)
            .expect("load");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "steady-state load_streaming must not allocate (got {steady} over 50 loads)"
    );

    // The loads actually configured the fabric.
    assert!(controller.memory().occupied_macros() > 0);
}
