//! Allocation-budget regression tests for the decode hot path, measured
//! with the counting global allocator.
//!
//! Pinned guarantees:
//!
//! * steady-state `decode_into` (warm scratch, recycled buffer) performs
//!   **zero** heap allocations per load;
//! * steady-state streaming loads (`load_streaming` into configuration
//!   memory) also perform zero allocations;
//! * steady-state **parallel** loads through the persistent multi-lane
//!   [`vbs_runtime::DecodeWorkerPool`] (4 decode lanes, every scratch and
//!   partial image drawn from a warm [`vbs_runtime::ScratchPool`]) perform
//!   zero allocations per load, and the pool reports exactly one fresh
//!   scratch per lane after warm-up;
//! * steady-state parallel loads with a **live telemetry registry**
//!   installed (per-lane spans, latency histograms and timeline events
//!   recorded on every load) stay at zero allocations — recording is
//!   relaxed atomics and preallocated ring slots;
//! * a **cold** decode pre-reserves its buffers from the VBS header, so the
//!   first decode stays within a small per-buffer allocation budget instead
//!   of growing buffers incrementally;
//! * a **shape-cycling** task mix (alternating tall/wide/larger rectangles)
//!   also stays at zero steady-state allocations, through both direct
//!   [`TaskBitstream::reset`] reshapes and pool recycling — the flat
//!   [`vbs_bitstream::FrameStore`] arena reshapes in place once its word
//!   capacity covers the largest shape seen, where the legacy per-frame
//!   layout allocated one `Vec` per frame whenever the mix grew.
//!
//! Everything runs inside one `#[test]` because the counters are
//! process-global and the harness runs tests concurrently.

use vbs_bench::{allocations, CountingAllocator};
use vbs_bitstream::TaskBitstream;
use vbs_core::DecodeScratch;
use vbs_runtime::{devirtualize_into, ReconfigurationController};
use vbs_sched::BitstreamPool;
use vbs_telemetry::{Stage, Telemetry};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn decode_hot_path_allocation_budget() {
    let repository = vbs_bench::sched_workload::sched_repository();
    let vbs = repository.fetch("fft_stage").expect("workload task");
    let device = vbs_bench::sched_workload::sched_device(11, 11);

    // --- Cold decode: one allocation per buffer, thanks to the header
    // pre-reserve (regression for incremental Vec/HashMap growth: without
    // reservation this is hundreds of allocations).
    let mut scratch = DecodeScratch::new();
    let mut staging = scratch.take_staging(*vbs.spec(), vbs.width(), vbs.height());
    let before = allocations();
    devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    let cold = allocations() - before;
    assert!(
        cold <= 24,
        "cold decode allocated {cold} times; the scratch has ~10 buffers and \
         each must allocate at most once (pre-reserved from the VBS header)"
    );

    // --- Steady state: zero allocations per load, across repeats.
    for _ in 0..2 {
        devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    }
    let before = allocations();
    for _ in 0..50 {
        devirtualize_into(&vbs, &mut staging, &mut scratch).expect("decode");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "steady-state decode_into must not allocate (got {steady} over 50 loads)"
    );

    // --- Steady-state streaming load into live configuration memory:
    // decode plus frame writes (scratch from the controller's pool), still
    // zero allocations.
    let mut controller = ReconfigurationController::new(device.clone());
    let origin = vbs_arch::Coord::new(2, 3);
    for _ in 0..2 {
        controller
            .load_streaming(&vbs, origin, &mut staging)
            .expect("load");
    }
    let before = allocations();
    for _ in 0..50 {
        controller
            .load_streaming(&vbs, origin, &mut staging)
            .expect("load");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "steady-state load_streaming must not allocate (got {steady} over 50 loads)"
    );

    // The loads actually configured the fabric.
    assert!(controller.memory().occupied_macros() > 0);

    // --- Steady-state parallel loads: the persistent 4-lane worker pool
    // runs the full decode→resident `load` path on pooled scratches and
    // partial images. Warm-up (the explicit `warm` plus two loads) settles
    // the pool; after that, zero allocations per load — dispatch is a
    // condvar epoch bump, every buffer recycles.
    let workers = 4usize;
    let mut parallel = ReconfigurationController::new(device).with_workers(workers);
    parallel.warm(&vbs).expect("warm");
    for _ in 0..2 {
        parallel.load(&vbs, origin).expect("load");
    }
    let before = allocations();
    for _ in 0..50 {
        parallel.load(&vbs, origin).expect("load");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "steady-state pooled parallel load must not allocate (got {steady} over 50 loads)"
    );
    let stats = parallel.scratch_pool().stats();
    assert_eq!(
        stats.scratch_fresh, workers as u64,
        "after warm-up the pool holds exactly one scratch per lane: {stats:?}"
    );
    assert_eq!(
        stats.fresh,
        workers as u64 + 1,
        "one partial per lane plus the staging target: {stats:?}"
    );
    assert!(parallel.memory().occupied_macros() > 0);

    // --- Telemetry recording on the hot path: install a *live* registry
    // and repeat the pooled parallel loads. Histogram recording is a few
    // relaxed atomic bumps, event recording writes into the ring's
    // preallocated slots, spans clone an Arc — so the load path stays at
    // zero steady-state allocations while every load leaves per-lane
    // decode spans and events on the timeline.
    let telemetry = Telemetry::new();
    parallel.set_telemetry(telemetry.clone(), 0);
    for _ in 0..2 {
        parallel.load(&vbs, origin).expect("load");
    }
    let recorded_before = telemetry.ring_stats().recorded;
    let lane_busy_before = telemetry.histogram(Stage::LaneBusy).count();
    let before = allocations();
    for _ in 0..50 {
        parallel.load(&vbs, origin).expect("load");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "telemetry recording must keep the load path allocation-free \
         (got {steady} over 50 instrumented loads)"
    );
    let recorded = telemetry.ring_stats().recorded - recorded_before;
    assert!(
        recorded >= 100,
        "each instrumented load leaves decode start/end events (got {recorded})"
    );
    assert!(
        telemetry.histogram(Stage::LaneBusy).count() > lane_busy_before,
        "instrumented loads record lane-busy spans"
    );

    // --- Shape-cycling reshapes: alternating tall/wide/larger rectangles
    // through one buffer must not allocate once the arena has grown to the
    // largest word count of the cycle.
    let spec = *vbs.spec();
    let mut buffer = TaskBitstream::empty(spec, 1, 1);
    let shapes = [(2u16, 9u16), (9, 2), (3, 6), (6, 3), (4, 4), (1, 12)];
    for &(w, h) in &shapes {
        buffer.reset(spec, w, h);
    }
    let before = allocations();
    for _ in 0..25 {
        for &(w, h) in &shapes {
            buffer.reset(spec, w, h);
        }
    }
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "shape-cycling TaskBitstream::reset must not allocate (got {steady})"
    );

    // --- Shape-cycling decode through pool recycling: every staging buffer
    // is checked out of a one-buffer pool, decoded into (different task
    // shape every load) and recycled. Pool hit = zero allocations per load
    // regardless of frame count.
    let mix: Vec<_> = ["fir_filter", "aes_round", "fft_stage"]
        .iter()
        .map(|name| repository.fetch(name).expect("workload task"))
        .collect();
    let pool = BitstreamPool::new(1);
    pool.put(TaskBitstream::empty(spec, 1, 1));
    let cycle = |rounds: usize, scratch: &mut DecodeScratch| {
        for i in 0..rounds * mix.len() {
            let vbs = &mix[i % mix.len()];
            let mut staging = pool.checkout(*vbs.spec(), vbs.width(), vbs.height());
            devirtualize_into(vbs, &mut staging, scratch).expect("decode");
            pool.put(staging);
        }
    };
    cycle(2, &mut scratch);
    let before = allocations();
    cycle(10, &mut scratch);
    let steady = allocations() - before;
    assert_eq!(
        steady, 0,
        "shape-cycling pooled decode must not allocate (got {steady} over 30 loads)"
    );
    let stats = pool.stats();
    assert_eq!(
        stats.fresh, 0,
        "every checkout must hit the recycled buffer"
    );
}
