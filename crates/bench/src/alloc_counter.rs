//! A counting global allocator for allocation-budget regression tests and
//! the `allocs/load` column of the decode benchmarks.
//!
//! Register it in a binary or test crate with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: vbs_bench::CountingAllocator = vbs_bench::CountingAllocator;
//! ```
//!
//! and read [`allocations`] / [`allocated_bytes`] deltas around the code
//! under measurement. Counting is process-global and lock-free; it is meant
//! for single-threaded measurement sections (concurrent allocations are
//! counted correctly but cannot be attributed).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator counting every allocation and reallocation.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are lock-free atomics
// and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total heap allocations (including reallocations) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
