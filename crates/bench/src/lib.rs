//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation is regenerated from the
//! same pipeline: instantiate the MCNC-calibrated synthetic circuit, run the
//! CAD flow (place, route at the normalized channel width of 20 tracks),
//! generate the raw bit-stream and the Virtual Bit-Streams, and report sizes.
//!
//! The binaries default to a scaled-down benchmark set so a full sweep runs
//! in minutes on a laptop; pass `--scale 1.0` (or `--full`) to reproduce the
//! paper-sized circuits.

use vbs_core::VbsStats;
use vbs_flow::{CadFlow, FlowError, FlowResult};
use vbs_netlist::mcnc::McncCircuit;
use vbs_netlist::NetlistError;

pub mod alloc_counter;
pub mod sched_workload;

pub use alloc_counter::{allocated_bytes, allocations, CountingAllocator};

/// Default scale factor applied to the MCNC circuits by the harness binaries.
pub const DEFAULT_SCALE: f64 = 0.12;

/// The normalized channel width used by the paper for all size comparisons.
pub const NORMALIZED_CHANNEL_WIDTH: u16 = 20;

/// Options shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessOptions {
    /// Scale factor applied to every circuit (1.0 = the paper's sizes).
    pub scale: f64,
    /// Channel width used for routing and size accounting.
    pub channel_width: u16,
    /// Only run the first `limit` circuits of Table II (None = all 20).
    pub limit: Option<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: DEFAULT_SCALE,
            channel_width: NORMALIZED_CHANNEL_WIDTH,
            limit: None,
        }
    }
}

impl HarnessOptions {
    /// Parses the common command-line flags (`--scale X`, `--full`,
    /// `--limit N`, `--channel-width W`). Unknown flags are ignored so the
    /// binaries stay forgiving.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut options = HarnessOptions::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => options.scale = 1.0,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.scale = v;
                        i += 1;
                    }
                }
                "--limit" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.limit = Some(v);
                        i += 1;
                    }
                }
                "--channel-width" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.channel_width = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// The circuits selected by these options.
    pub fn circuits(&self) -> Vec<&'static McncCircuit> {
        let all: Vec<&'static McncCircuit> = vbs_netlist::mcnc::TABLE2.iter().collect();
        match self.limit {
            Some(n) => all.into_iter().take(n).collect(),
            None => all,
        }
    }
}

/// One circuit run through the whole flow.
#[derive(Debug)]
pub struct CircuitRun {
    /// The Table II entry that was run.
    pub circuit: &'static McncCircuit,
    /// The scale factor that was applied.
    pub scale: f64,
    /// The flow outputs (device, placement, routing, raw bit-stream).
    pub result: FlowResult,
}

impl CircuitRun {
    /// VBS statistics at a given cluster size.
    ///
    /// # Errors
    ///
    /// Propagates encoder failures.
    pub fn stats(&self, cluster_size: u16) -> Result<VbsStats, FlowError> {
        self.result.vbs_stats(cluster_size)
    }
}

/// Errors of the harness: either circuit generation or the flow itself.
#[derive(Debug)]
pub enum HarnessError {
    /// Synthetic circuit generation failed.
    Netlist(NetlistError),
    /// The CAD flow failed.
    Flow(FlowError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Netlist(e) => write!(f, "netlist generation failed: {e}"),
            HarnessError::Flow(e) => write!(f, "cad flow failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<NetlistError> for HarnessError {
    fn from(e: NetlistError) -> Self {
        HarnessError::Netlist(e)
    }
}

impl From<FlowError> for HarnessError {
    fn from(e: FlowError) -> Self {
        HarnessError::Flow(e)
    }
}

/// Runs one Table II circuit through the flow at the requested scale and
/// channel width.
///
/// # Errors
///
/// Returns a [`HarnessError`] when generation, placement or routing fails.
pub fn run_circuit(
    circuit: &'static McncCircuit,
    scale: f64,
    channel_width: u16,
) -> Result<CircuitRun, HarnessError> {
    let netlist = circuit.build_scaled(scale)?;
    let edge = circuit.scaled_size(scale);
    let flow = CadFlow::new(channel_width, 6)?
        .with_grid(edge, edge)
        .with_seed(circuit.seed())
        .fast();
    let result = flow.run(&netlist)?;
    Ok(CircuitRun {
        circuit,
        scale,
        result,
    })
}

/// Geometric mean of a sequence of positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags() {
        let o = HarnessOptions::from_args(
            ["--scale", "0.5", "--limit", "3", "--channel-width", "12"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.limit, Some(3));
        assert_eq!(o.channel_width, 12);
        assert_eq!(o.circuits().len(), 3);
        let full = HarnessOptions::from_args(["--full"].iter().map(|s| s.to_string()));
        assert_eq!(full.scale, 1.0);
        assert_eq!(full.circuits().len(), 20);
    }

    #[test]
    fn geometric_mean_of_powers_of_two() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn smallest_circuit_runs_at_tiny_scale() {
        let circuit = vbs_netlist::mcnc::by_name("des").unwrap();
        let run = run_circuit(circuit, 0.05, 12).unwrap();
        let stats = run.stats(1).unwrap();
        assert!(stats.ratio() < 1.0);
    }
}
