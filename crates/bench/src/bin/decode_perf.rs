//! Decode→resident throughput baseline: buffered vs scratch-reuse vs
//! streaming vs pooled-parallel load paths, plus the batch-vs-greedy
//! compaction pause study and the 4-fabric fleet replay, emitted as
//! machine-readable `BENCH_decode.json` so perf numbers accumulate per PR.
//!
//! Per-load paths timed over the scheduler workload task mix on one
//! `--fabric`-sized device (a load = de-virtualize one VBS and make it
//! resident in configuration memory):
//!
//! * **legacy** — the pre-scratch path exactly as it shipped before this
//!   subsystem existed: fresh decoded image per load *and* fresh decode
//!   state per record (`decode_record_into` + `load_decoded`);
//! * **buffered** — the one-shot path: one header-pre-reserved scratch
//!   shared across the records of each load, allocated per load
//!   (`devirtualize_stream` on a cold pool + `load_decoded`);
//! * **scratch** — buffered writes, but decode state and the staging image
//!   come from a persistent [`vbs_core::DecodeScratch`]
//!   (`devirtualize_into` + `load_decoded`): zero allocations steady-state;
//! * **streaming** — scratch reuse *and* frame writes overlapped with the
//!   decode (`load_streaming`): memory writes begin after the first cluster
//!   record instead of after the last.
//!
//! The **parallel** arm sweeps decode lanes 1/2/4 through the full
//! `ReconfigurationController::load` path in two flavors: *pooled* (the
//! persistent [`vbs_runtime::DecodeWorkerPool`] lanes drawing every scratch
//! and partial image from a warm [`vbs_runtime::ScratchPool`] — zero
//! allocations per load) and *fresh* (the pre-pool behavior, re-created
//! inline: scoped threads spawned per load, `DecodeScratch::new()` and a
//! fresh partial per worker per load).
//!
//! The **compaction** arm fragments two identical schedulers and defrags
//! one with the batch-planned `Scheduler::compact` (each task moved at most
//! once, straight to its final position) and the other with the legacy
//! greedy bottom-left sweeps (re-created through public relocation
//! requests), reporting pause microseconds and frames rewritten for both.
//!
//! The fleet section replays the same seeded trace through a
//! `--fabrics`-sized multi-fabric scheduler in staged-pipeline mode vs
//! streaming mode.
//!
//! The **mcnc** arm runs the checked-in corpus (`tests/traces/mcnc/`)
//! instead of the synthetic task mix: per-circuit pooled-load throughput
//! and latency percentiles over the real place/route/encode streams, plus
//! the steady and variant-swap trace replays through the single scheduler
//! and the fleet with a telemetry registry attached, so the Load-stage
//! tail is gated in CI alongside the counters.
//!
//! The **fault** arm records the integrity machinery's cost: the corpus
//! steady trace replayed with readback verification off vs on (the
//! `verify_overhead` ratio), plus the seeded chaos fleet replay (write
//! faults, corruption, mid-trace outage) as the degraded-mode throughput
//! reference.
//!
//! Usage: `cargo run --release -p vbs-bench --bin decode_perf --
//!         [--loads N] [--fabric WxH] [--fabrics K] [--seed S]
//!         [--quick] [--out PATH]`

use std::time::{Duration, Instant};
use vbs_arch::{ArchSpec, Coord, Device, Rect};
use vbs_bench::sched_workload::{sched_device, sched_fleet, sched_repository, sched_trace};
use vbs_bench::{allocations, CountingAllocator};
use vbs_bitstream::{Kernels, TaskBitstream};
use vbs_core::{DecodeScratch, Devirtualizer, Vbs};
use vbs_runtime::{
    devirtualize_into, devirtualize_stream, BestFit, FabricView, ReconfigurationController,
    ScratchPool, VbsRepository,
};
use vbs_sched::{
    replay, replay_multi, CacheBudget, CacheStats, LeastLoaded, McncCorpus, MultiConfig, Outcome,
    Request, Scheduler, SchedulerConfig, Trace,
};
use vbs_telemetry::{HistogramSummary, LatencyHistogram, Stage, Telemetry};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Options {
    loads: usize,
    fabric: (u16, u16),
    fabrics: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Options {
    let mut options = Options {
        loads: 500,
        fabric: (11, 11),
        fabrics: 4,
        seed: 2015,
        out: "BENCH_decode.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => options.loads = options.loads.min(60),
            "--loads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.loads = 1usize.max(v);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.seed = v;
                    i += 1;
                }
            }
            "--fabrics" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.fabrics = 1usize.max(v);
                    i += 1;
                }
            }
            "--fabric" => {
                if let Some((w, h)) = args
                    .get(i + 1)
                    .and_then(|s| s.split_once('x'))
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                {
                    options.fabric = (w, h);
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    options.out = v.clone();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

/// One timed per-load path over `loads` round-robin loads of the task mix.
struct PathResult {
    name: String,
    elapsed: Duration,
    frames: u64,
    allocs: u64,
    loads: usize,
    /// Per-load wall latency in nanoseconds (recording is lock-free and
    /// allocation-free, so it does not disturb the allocs-per-load gate).
    latency: LatencyHistogram,
}

impl PathResult {
    fn ns_per_frame(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.frames.max(1) as f64
    }

    fn ns_per_load(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.loads.max(1) as f64
    }

    fn loads_per_sec(&self) -> f64 {
        self.loads as f64 / self.elapsed.as_secs_f64()
    }

    fn allocs_per_load(&self) -> f64 {
        self.allocs as f64 / self.loads.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"ns_per_frame\": {:.1}, \"ns_per_load\": {:.0}, \"loads_per_sec\": {:.1}, \"allocs_per_load\": {:.1}}}",
            self.ns_per_frame(),
            self.ns_per_load(),
            self.loads_per_sec(),
            self.allocs_per_load()
        )
    }

    /// The per-load latency distribution as a JSON object, nanoseconds.
    fn latency_json(&self) -> String {
        let s = self.latency.summary();
        format!(
            "{{\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.0}}}",
            s.p50, s.p95, s.p99, s.max, s.mean
        )
    }
}

fn streams(repository: &VbsRepository) -> Vec<Vbs> {
    vbs_bench::sched_workload::SCHED_TASKS
        .iter()
        .map(|(name, ..)| repository.fetch(name).expect("workload task"))
        .collect()
}

fn run_path(
    name: impl Into<String>,
    options: &Options,
    streams: &[Vbs],
    mut load: impl FnMut(&Vbs),
) -> PathResult {
    // Warm up outside the measurement (cold-scratch allocations, page
    // faults, branch predictors). Two rounds so pooled paths reach their
    // steady-state buffer population before counting starts.
    for _ in 0..2 {
        for vbs in streams {
            load(vbs);
        }
    }
    let frames_per_round: u64 = streams
        .iter()
        .map(|v| v.width() as u64 * v.height() as u64)
        .sum();
    // The histogram's one allocation happens here, before counting starts;
    // recording into it inside the loop is lock-free and allocation-free.
    let latency = LatencyHistogram::new();
    let before = allocations();
    let start = Instant::now();
    for i in 0..options.loads {
        let begun = Instant::now();
        load(&streams[i % streams.len()]);
        latency.record(u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let elapsed = start.elapsed();
    let allocs = allocations() - before;
    PathResult {
        name: name.into(),
        elapsed,
        frames: frames_per_round * (options.loads as u64) / streams.len() as u64,
        allocs,
        loads: options.loads,
        latency,
    }
}

fn per_load_paths(options: &Options, repository: &VbsRepository) -> Vec<PathResult> {
    let device = sched_device(options.fabric.0, options.fabric.1);
    let streams = streams(repository);
    let origin = Coord::new(0, 0);
    let mut results = Vec::new();

    // Legacy (pre-scratch): fresh image per load, fresh decode state per
    // record — the path as it existed before the scratch-arena rework.
    let mut controller = ReconfigurationController::new(device.clone());
    results.push(run_path("legacy", options, &streams, |vbs| {
        let devirt = Devirtualizer::new(vbs).expect("devirtualizer");
        let mut task = TaskBitstream::empty(*vbs.spec(), vbs.width(), vbs.height());
        for record in vbs.records() {
            devirt
                .decode_record_into(record, &mut task)
                .expect("decode");
        }
        controller.load_decoded(&task, origin).expect("load");
    }));

    // Buffered: one shared, header-pre-reserved scratch per load — the
    // cold pool (capacity 0) allocates per load like the pre-pool one-shot
    // path did.
    let mut controller = ReconfigurationController::new(device.clone());
    results.push(run_path("buffered", options, &streams, |vbs| {
        let once = ScratchPool::new(0);
        let (task, _report) = devirtualize_stream(vbs, 1, &once).expect("decode");
        controller.load_decoded(&task, origin).expect("load");
    }));

    // Scratch reuse: persistent arena + staging, buffered writes.
    let mut controller = ReconfigurationController::new(device.clone());
    let mut scratch = DecodeScratch::new();
    results.push(run_path("scratch", options, &streams, |vbs| {
        let mut staging = scratch.take_staging(*vbs.spec(), vbs.width(), vbs.height());
        devirtualize_into(vbs, &mut staging, &mut scratch).expect("decode");
        controller.load_decoded(&staging, origin).expect("load");
        scratch.put_staging(staging);
    }));

    // Streaming: pooled scratch + frame writes overlapping the decode.
    let mut controller = ReconfigurationController::new(device);
    let mut staging = TaskBitstream::empty(*streams[0].spec(), 1, 1);
    results.push(run_path("streaming", options, &streams, |vbs| {
        controller
            .load_streaming(vbs, origin, &mut staging)
            .expect("load");
    }));

    results
}

/// The parallel arm: the full `load` path at 1/2/4 decode lanes, pooled
/// (persistent `DecodeWorkerPool` + warm `ScratchPool`) vs fresh (the
/// pre-pool behavior: scoped threads, fresh scratch and partial per worker
/// per load). Returns `(pooled, fresh)` results per lane count.
fn parallel_paths(options: &Options, repository: &VbsRepository) -> Vec<(PathResult, PathResult)> {
    let streams = streams(repository);
    let origin = Coord::new(0, 0);
    let largest = streams
        .iter()
        .max_by_key(|v| v.width() as u64 * v.height() as u64)
        .expect("workload streams");
    let lanes = [1usize, 2, 4];
    let device = sched_device(options.fabric.0, options.fabric.1);
    // Deterministic warm-up: one warm scratch and staging buffer per
    // lane, pre-reserved for the largest stream, so no lane allocates
    // mid-measurement no matter how the lanes interleave.
    let mut controllers: Vec<ReconfigurationController> = lanes
        .iter()
        .map(|&workers| {
            let controller = ReconfigurationController::new(device.clone()).with_workers(workers);
            controller.warm(largest).expect("warm");
            controller
        })
        .collect();
    // Interleave the reps round-robin across lane counts, keeping each
    // lane's best run: the 1-vs-4-lane regression gate compares what is
    // (below the pool's sequential threshold) the same code path, so a
    // slow-machine phase must not land on one lane count only.
    let mut pooled: Vec<Option<PathResult>> = vec![None, None, None];
    for _ in 0..3 {
        for (i, &workers) in lanes.iter().enumerate() {
            let controller = &mut controllers[i];
            let run = run_path(format!("pooled_w{workers}"), options, &streams, |vbs| {
                controller.load(vbs, origin).expect("load");
            });
            if pooled[i]
                .as_ref()
                .is_none_or(|best| run.elapsed < best.elapsed)
            {
                pooled[i] = Some(run);
            }
        }
    }
    let mut results = Vec::new();
    for (i, &workers) in lanes.iter().enumerate() {
        let mut controller = ReconfigurationController::new(device.clone());
        let fresh = run_path(format!("fresh_w{workers}"), options, &streams, |vbs| {
            let task = fresh_parallel_decode(vbs, workers);
            controller.load_decoded(&task, origin).expect("load");
        });
        results.push((pooled[i].take().expect("pooled lane measured"), fresh));
    }
    results
}

/// The pre-pool parallel decode, re-created as the baseline: scoped worker
/// threads spawned per load, each with a fresh scratch and a lazily
/// allocated fresh partial image, merged at the end.
fn fresh_parallel_decode(vbs: &Vbs, workers: usize) -> TaskBitstream {
    let devirtualizer = Devirtualizer::new(vbs).expect("devirtualizer");
    let records = vbs.records();
    let spec = *vbs.spec();
    let (w, h) = (vbs.width().max(1), vbs.height().max(1));
    let mut task = TaskBitstream::empty(spec, w, h);
    if workers <= 1 || records.len() < 2 {
        let mut scratch = DecodeScratch::new();
        devirtualizer
            .decode_into(&mut task, &mut scratch)
            .expect("decode");
        return task;
    }
    let chunk = records.len().div_ceil(workers);
    let partials: Vec<Option<TaskBitstream>> = std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(chunk)
            .map(|slice| {
                let devirt = &devirtualizer;
                scope.spawn(move || {
                    let mut local: Option<TaskBitstream> = None;
                    let mut scratch = DecodeScratch::new();
                    for record in slice {
                        let target = local.get_or_insert_with(|| TaskBitstream::empty(spec, w, h));
                        devirt
                            .decode_record_with(record, target, &mut scratch)
                            .expect("decode");
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("decode workers never panic"))
            .collect()
    });
    for partial in partials.into_iter().flatten() {
        task.merge_disjoint(&partial).expect("disjoint partials");
    }
    task
}

/// One compaction strategy's cost on a deterministically fragmented fabric.
struct CompactionResult {
    name: &'static str,
    moves: usize,
    frames_rewritten: u64,
    pause_micros: u64,
    decodes: u64,
    cache_fetches: u64,
}

impl CompactionResult {
    fn json(&self) -> String {
        format!(
            "{{\"moves\": {}, \"frames_rewritten\": {}, \"pause_micros\": {}, \"decodes\": {}, \"cache_fetches\": {}}}",
            self.moves, self.frames_rewritten, self.pause_micros, self.decodes, self.cache_fetches
        )
    }
}

/// Builds a fragmented scheduler: fill the fabric with the task mix, then
/// unload every other job, leaving a checkerboard of holes. `budget` is the
/// per-pass compaction frame budget (0 = unbounded).
fn fragmented_scheduler(options: &Options, repository: &VbsRepository, budget: u64) -> Scheduler {
    let config = SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        compaction_frame_budget: budget,
        ..SchedulerConfig::default()
    };
    let mut sched = vbs_bench::sched_workload::sched_scheduler(
        repository,
        options.fabric.0,
        options.fabric.1,
        0,
        Box::new(BestFit),
        config,
    );
    let names: Vec<&str> = vbs_bench::sched_workload::SCHED_TASKS
        .iter()
        .map(|(name, ..)| *name)
        .collect();
    let mut jobs = Vec::new();
    for round in 0..12 {
        let outcome = sched.execute(Request::Load {
            task: names[round % names.len()].into(),
            priority: 1,
            deadline: None,
        });
        if let Outcome::Loaded { job, .. } = outcome {
            jobs.push(job);
        }
    }
    // Vacate every other resident, bottom-left ones included, so the
    // survivors all have somewhere better to go.
    for job in jobs.iter().step_by(2) {
        sched.execute(Request::Unload { job: *job });
    }
    sched
}

/// Measures the batch-planned `Scheduler::compact` against a re-creation of
/// the legacy greedy sweeps (executed through public relocation requests),
/// on identically fragmented fabrics.
fn compaction_paths(options: &Options, repository: &VbsRepository) -> Vec<CompactionResult> {
    // Batch: the shipped planner; pause metrics come from SchedMetrics.
    let mut batch = fragmented_scheduler(options, repository, 0);
    let before_metrics = batch.metrics();
    let before_cache = batch.cache_stats();
    let moves = batch.compact();
    let after = batch.metrics();
    let cache = batch.cache_stats();
    let batch_result = CompactionResult {
        name: "batch",
        moves,
        frames_rewritten: after.compaction_frames_moved - before_metrics.compaction_frames_moved,
        pause_micros: after.compaction_micros - before_metrics.compaction_micros,
        decodes: after.decodes - before_metrics.decodes,
        cache_fetches: (cache.hits + cache.misses) - (before_cache.hits + before_cache.misses),
    };

    // Greedy: up to four live bottom-left sweeps, every improvement
    // executed immediately as its own relocation (the pre-batch behavior).
    let mut greedy = fragmented_scheduler(options, repository, 0);
    let before_metrics = greedy.metrics();
    let before_cache = greedy.cache_stats();
    let mut moves = 0usize;
    let mut frames = 0u64;
    let pause = Instant::now();
    for _ in 0..4 {
        let mut moved = false;
        let mut residents = greedy.residents();
        residents.sort_by_key(|r| (r.region.origin.y, r.region.origin.x));
        for info in residents {
            let view = greedy.manager().fabric_view();
            let others: Vec<Rect> = view
                .occupied()
                .iter()
                .copied()
                .filter(|r| *r != info.region)
                .collect();
            let masked = FabricView::new(view.width(), view.height(), others);
            let Some(candidate) =
                greedy
                    .manager()
                    .policy()
                    .place(info.region.width, info.region.height, &masked)
            else {
                continue;
            };
            let current = info.region.origin;
            if (candidate.y, candidate.x) >= (current.y, current.x) {
                continue;
            }
            let outcome = greedy.execute(Request::Relocate {
                job: info.job,
                to: candidate,
            });
            if matches!(outcome, Outcome::Relocated { .. }) {
                moves += 1;
                frames += info.region.area() as u64;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let pause_micros = u64::try_from(pause.elapsed().as_micros()).unwrap_or(u64::MAX);
    let after = greedy.metrics();
    let cache = greedy.cache_stats();
    let greedy_result = CompactionResult {
        name: "greedy",
        moves,
        frames_rewritten: frames,
        pause_micros,
        decodes: after.decodes - before_metrics.decodes,
        cache_fetches: (cache.hits + cache.misses) - (before_cache.hits + before_cache.misses),
    };

    vec![batch_result, greedy_result]
}

/// The budgeted compaction study: the same fragmented fabric defragged with
/// `compaction_frame_budget` set to the largest workload task's area, so a
/// pass never rewrites more than one big task's worth of frames. Repeated
/// passes converge to the unbounded fixpoint; the per-pass pause histogram
/// (the `Stage::CompactionPause` spans the scheduler records) is the payoff
/// being measured.
struct BudgetedCompaction {
    budget: u64,
    passes: usize,
    moves: usize,
    frames_rewritten: u64,
    max_frames_per_pass: u64,
    truncated_passes: u64,
    /// `Stage::CompactionPause` summary, microseconds.
    pause: HistogramSummary,
}

impl BudgetedCompaction {
    fn json(&self) -> String {
        format!(
            "{{\"budget\": {}, \"passes\": {}, \"moves\": {}, \"frames_rewritten\": {}, \"max_frames_per_pass\": {}, \"truncated_passes\": {}, \"pause_p50_us\": {}, \"pause_p99_us\": {}, \"pause_max_us\": {}}}",
            self.budget,
            self.passes,
            self.moves,
            self.frames_rewritten,
            self.max_frames_per_pass,
            self.truncated_passes,
            self.pause.p50,
            self.pause.p99,
            self.pause.max
        )
    }
}

fn budgeted_compaction(options: &Options, repository: &VbsRepository) -> BudgetedCompaction {
    // The largest task area is the smallest budget that keeps every
    // individual move inside the bound (the planner always grants a pass
    // its first move, so a smaller budget could still exceed itself).
    let budget = streams(repository)
        .iter()
        .map(|v| v.width() as u64 * v.height() as u64)
        .max()
        .expect("workload streams");
    let mut sched = fragmented_scheduler(options, repository, budget);
    let telemetry = Telemetry::new();
    sched.set_telemetry(telemetry.clone(), 0);
    let mut passes = 0usize;
    let mut moves = 0usize;
    let mut max_frames_per_pass = 0u64;
    for _ in 0..20 {
        let before = sched.metrics().compaction_frames_moved;
        let pass_moves = sched.compact();
        if pass_moves == 0 {
            break;
        }
        passes += 1;
        moves += pass_moves;
        max_frames_per_pass =
            max_frames_per_pass.max(sched.metrics().compaction_frames_moved - before);
    }
    let metrics = sched.metrics();
    BudgetedCompaction {
        budget,
        passes,
        moves,
        frames_rewritten: metrics.compaction_frames_moved,
        max_frames_per_pass,
        truncated_passes: metrics.compaction_truncated,
        pause: telemetry.histogram(Stage::CompactionPause).summary(),
    }
}

/// One dispatched-vs-portable measurement of a single word kernel.
struct KernelOp {
    name: &'static str,
    dispatched: Duration,
    portable: Duration,
    words_swept: u64,
}

impl KernelOp {
    fn gwords(&self, elapsed: Duration) -> f64 {
        self.words_swept as f64 / elapsed.as_secs_f64().max(1e-12) / 1e9
    }

    fn speedup(&self) -> f64 {
        self.portable.as_secs_f64() / self.dispatched.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"dispatched_gwords_per_sec\": {:.2}, \"portable_gwords_per_sec\": {:.2}, \"speedup\": {:.2}}}",
            self.gwords(self.dispatched),
            self.gwords(self.portable),
            self.speedup()
        )
    }
}

/// The kernel microbench: the process-selected [`Kernels`] backend against
/// the portable chunked-`u64` backend, each sweeping the same 64 Ki-word
/// (512 KiB) buffers — larger than any task region, so the sweeps stream
/// memory the way a full-device scrub does.
fn kernel_paths(options: &Options) -> (&'static str, Vec<KernelOp>) {
    const WORDS: usize = 1 << 16;
    let active = Kernels::active();
    let portable = Kernels::portable();
    let a: Vec<u64> = (0..WORDS as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 9))
        .collect();
    let b: Vec<u64> = a
        .iter()
        .map(|w| w.rotate_left(29) ^ 0x5555_aaaa_0ff0_f00f)
        .collect();
    let mut dst = vec![0u64; WORDS];
    let iters = (options.loads.max(1) * 2).clamp(64, 2000);
    let words_swept = (WORDS * iters) as u64;

    let timed = |op: &mut dyn FnMut(&'static Kernels) -> u64, k: &'static Kernels| {
        let mut sink = op(k); // warm-up
        let start = Instant::now();
        for _ in 0..iters {
            sink ^= op(k);
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        elapsed
    };

    let mut ops = Vec::new();
    let mut copy = |k: &'static Kernels| {
        k.copy(&mut dst, &a);
        0u64
    };
    ops.push(KernelOp {
        name: "copy",
        dispatched: timed(&mut copy, active),
        portable: timed(&mut copy, portable),
        words_swept,
    });
    let mut dst = vec![0u64; WORDS];
    let mut or_into = |k: &'static Kernels| {
        k.or_into(&mut dst, &b);
        0u64
    };
    ops.push(KernelOp {
        name: "or_into",
        dispatched: timed(&mut or_into, active),
        portable: timed(&mut or_into, portable),
        words_swept,
    });
    let mut xor_popcount = |k: &'static Kernels| k.xor_popcount(&a, &b) as u64;
    ops.push(KernelOp {
        name: "xor_popcount",
        dispatched: timed(&mut xor_popcount, active),
        portable: timed(&mut xor_popcount, portable),
        words_swept,
    });
    let mut crc32 = |k: &'static Kernels| k.crc32_words(!0, &a) as u64;
    ops.push(KernelOp {
        name: "crc32_words",
        dispatched: timed(&mut crc32, active),
        portable: timed(&mut crc32, portable),
        words_swept,
    });
    (active.name(), ops)
}

/// One fabric size of the scaling curve: raw word-path frame writes tiled
/// across the whole arena, and the pooled end-to-end load path on a device
/// of that size.
struct ScalingResult {
    label: String,
    frame_write_mframes_per_sec: f64,
    pooled: PathResult,
}

impl ScalingResult {
    fn json(&self) -> String {
        let s = self.pooled.latency.summary();
        format!(
            "{{\"frame_write_mframes_per_sec\": {:.1}, \"loads_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            self.frame_write_mframes_per_sec,
            self.pooled.loads_per_sec(),
            s.p50,
            s.p99,
            s.max
        )
    }
}

/// The scaling arm: the same workload on fabrics from the paper's 11x11
/// example up to 100x100, pinning how frame-write and load throughput hold
/// up as the arena grows from cache-resident to multi-megabyte.
fn scaling_paths(options: &Options, repository: &VbsRepository) -> Vec<ScalingResult> {
    let sizes: [(u16, u16); 4] = [(11, 11), (32, 32), (64, 64), (100, 100)];
    let streams_v = streams(repository);
    let largest = streams_v
        .iter()
        .max_by_key(|v| v.width() as u64 * v.height() as u64)
        .expect("workload streams");
    let (task, _) = devirtualize_stream(largest, 1, &ScratchPool::default()).expect("decode");
    let (tw, th) = (task.width(), task.height());
    let iterations = options.loads.max(1);
    let origin = Coord::new(0, 0);
    let mut results = Vec::new();
    for (w, h) in sizes {
        let device = sched_device(w, h);
        // Frame writes tile the task across every position of the arena so
        // the sweep touches the full footprint, not one hot corner.
        let mut memory = vbs_bitstream::ConfigMemory::new(&device);
        let positions: Vec<Coord> = (0..h - th + 1)
            .step_by(th as usize)
            .flat_map(|y| {
                (0..w - tw + 1)
                    .step_by(tw as usize)
                    .map(move |x| Coord::new(x, y))
            })
            .collect();
        memory.load_task(&task, positions[0]).expect("warm");
        let start = Instant::now();
        for i in 0..iterations {
            memory
                .load_task(&task, positions[i % positions.len()])
                .expect("load");
        }
        let elapsed = start.elapsed();
        let frames = tw as u64 * th as u64 * iterations as u64;
        let frame_write_mframes_per_sec = frames as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6;

        let sized = Options {
            loads: options.loads,
            fabric: (w, h),
            fabrics: options.fabrics,
            seed: options.seed,
            out: String::new(),
        };
        let mut controller = ReconfigurationController::new(device).with_workers(4);
        controller.warm(largest).expect("warm");
        let pooled = run_path(format!("pooled_{w}x{h}"), &sized, &streams_v, |vbs| {
            controller.load(vbs, origin).expect("load");
        });
        results.push(ScalingResult {
            label: format!("{w}x{h}"),
            frame_write_mframes_per_sec,
            pooled,
        });
    }
    results
}

/// One region-op measurement of the `frame_write` arm: the word-level flat
/// arena path vs the retained scalar (legacy per-bit) fallback.
struct FrameWriteResult {
    name: &'static str,
    word: Duration,
    scalar: Duration,
    frames: u64,
}

impl FrameWriteResult {
    fn mframes_per_sec(&self, elapsed: Duration) -> f64 {
        self.frames as f64 / elapsed.as_secs_f64() / 1e6
    }

    fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.word.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"word_mframes_per_sec\": {:.1}, \"scalar_mframes_per_sec\": {:.1}, \"speedup_word_vs_scalar\": {:.1}}}",
            self.mframes_per_sec(self.word),
            self.mframes_per_sec(self.scalar),
            self.speedup()
        )
    }
}

/// Times the raw `ConfigMemory` region operations — task load, region
/// clear, relocation move — on the flat word arena vs the scalar per-bit
/// reference twins (the legacy layout's access pattern).
fn frame_write_paths(options: &Options, repository: &VbsRepository) -> Vec<FrameWriteResult> {
    let device = sched_device(options.fabric.0, options.fabric.1);
    // The largest workload task gives the most representative region size.
    let vbs = streams(repository)
        .into_iter()
        .max_by_key(|v| v.width() as u64 * v.height() as u64)
        .expect("workload streams");
    let (task, _) = devirtualize_stream(&vbs, 1, &ScratchPool::default()).expect("decode");
    let mut memory = vbs_bitstream::ConfigMemory::new(&device);
    let (tw, th) = (task.width(), task.height());
    assert!(
        tw <= options.fabric.0 && th <= options.fabric.1,
        "frame_write arm needs --fabric at least as large as the largest \
         workload task ({tw}x{th}), got {}x{}",
        options.fabric.0,
        options.fabric.1
    );
    let a = Coord::new(0, 0);
    let b = Coord::new(options.fabric.0 - tw, options.fabric.1 - th);
    assert!(
        b != a,
        "frame_write relocation needs the fabric to exceed the largest \
         workload task ({tw}x{th}) in at least one dimension, got {}x{}",
        options.fabric.0,
        options.fabric.1
    );
    let rect = |o: Coord| vbs_arch::Rect::new(o, tw, th);
    let iterations = options.loads.max(1);
    let frames = tw as u64 * th as u64 * iterations as u64;

    fn timed(iterations: usize, mut op: impl FnMut()) -> Duration {
        op(); // warm-up
        let start = Instant::now();
        for _ in 0..iterations {
            op();
        }
        start.elapsed()
    }

    let load_word = timed(iterations, || memory.load_task(&task, a).expect("load"));
    let load_scalar = timed(iterations, || {
        memory.load_task_scalar(&task, a).expect("load")
    });
    // Relocation ping-pongs between two corners so the source always holds
    // the task (flip-flopping keeps every move a full-content move).
    memory.load_task(&task, a).expect("seed");
    let mut at = a;
    let reloc_word = timed(iterations, || {
        let to = if at == a { b } else { a };
        memory.move_region(rect(at), to).expect("move");
        at = to;
    });
    memory.clear_region(rect(a)).expect("clear");
    memory.clear_region(rect(b)).expect("clear");
    memory.load_task(&task, a).expect("seed");
    let mut at = a;
    let reloc_scalar = timed(iterations, || {
        let to = if at == a { b } else { a };
        memory.move_region_scalar(rect(at), to).expect("move");
        at = to;
    });
    let clear_word = timed(iterations, || memory.clear_region(rect(a)).expect("clear"));
    let clear_scalar = timed(iterations, || {
        memory.clear_region_scalar(rect(a)).expect("clear")
    });

    vec![
        FrameWriteResult {
            name: "load",
            word: load_word,
            scalar: load_scalar,
            frames,
        },
        FrameWriteResult {
            name: "clear",
            word: clear_word,
            scalar: clear_scalar,
            frames,
        },
        FrameWriteResult {
            name: "relocate",
            word: reloc_word,
            scalar: reloc_scalar,
            frames,
        },
    ]
}

struct FleetResult {
    name: &'static str,
    elapsed: Duration,
    events: usize,
    accepted: u64,
    decode_micros: u64,
}

impl FleetResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            "{{\"events_per_sec\": {:.1}, \"accepted\": {}, \"decode_micros\": {}, \"elapsed_ms\": {:.1}}}",
            self.events_per_sec(),
            self.accepted,
            self.decode_micros,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

fn run_fleet(
    name: &'static str,
    options: &Options,
    repository: &VbsRepository,
    multi_config: MultiConfig,
) -> FleetResult {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let mut multi = sched_fleet(
        repository,
        options.fabrics,
        options.fabric,
        Box::new(LeastLoaded),
        &|| Box::new(BestFit),
        config,
        multi_config,
    );
    let trace = sched_trace(options.loads, options.seed);
    let start = Instant::now();
    let report = replay_multi(&mut multi, &trace);
    let elapsed = start.elapsed();
    FleetResult {
        name,
        elapsed,
        events: report.events,
        accepted: report.multi.loads_accepted,
        decode_micros: report.fabrics.iter().map(|f| f.sched.decode_micros).sum(),
    }
}

/// One corpus trace replayed end-to-end through a scheduler with telemetry
/// attached: acceptance counters plus the Load-stage latency tail.
struct McncReplay {
    name: String,
    elapsed: Duration,
    events: usize,
    accepted: u64,
    rejected: u64,
    deadline_missed: u64,
    /// `Stage::Load` histogram summary from the attached telemetry
    /// registry, microseconds.
    load_latency: HistogramSummary,
}

impl McncReplay {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            "{{\"events_per_sec\": {:.1}, \"accepted\": {}, \"rejected\": {}, \"deadline_missed\": {}, \"load_p50_us\": {}, \"load_p95_us\": {}, \"load_p99_us\": {}, \"load_max_us\": {}}}",
            self.events_per_sec(),
            self.accepted,
            self.rejected,
            self.deadline_missed,
            self.load_latency.p50,
            self.load_latency.p95,
            self.load_latency.p99,
            self.load_latency.max
        )
    }
}

/// The mcnc arm: per-circuit pooled-load throughput over the checked-in
/// corpus streams, and the corpus traces replayed through the single
/// scheduler and the least-loaded fleet with telemetry histograms.
fn mcnc_arm(options: &Options) -> (McncCorpus, Vec<PathResult>, Vec<McncReplay>) {
    let corpus = McncCorpus::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc"
    ))
    .expect("checked-in MCNC corpus (rebuild with the mcnc_corpus bin)");

    let spec = ArchSpec::new(corpus.channel_width, corpus.lut_size).expect("corpus arch");
    let device = Device::new(spec, corpus.single.0, corpus.single.1).expect("corpus device");
    let mut controller = ReconfigurationController::new(device).with_workers(2);
    let origin = Coord::new(0, 0);
    let streams: Vec<(String, Vbs)> = corpus
        .tasks
        .iter()
        .map(|t| {
            let vbs = corpus.repository.fetch(&t.name).expect("corpus stream");
            (t.name.clone(), vbs)
        })
        .collect();
    let largest = streams
        .iter()
        .map(|(_, v)| v)
        .max_by_key(|v| v.width() as u64 * v.height() as u64)
        .expect("corpus streams");
    controller.warm(largest).expect("warm");
    let mut paths = Vec::new();
    for (name, vbs) in &streams {
        paths.push(run_path(
            name.clone(),
            options,
            std::slice::from_ref(vbs),
            |vbs| {
                controller.load(vbs, origin).expect("load");
            },
        ));
    }

    let mut replays = Vec::new();
    for (name, trace) in &corpus.traces {
        let mut single = corpus.single_scheduler();
        let telemetry = Telemetry::new();
        single.set_telemetry(telemetry.clone(), 0);
        let start = Instant::now();
        let report = replay(&mut single, trace);
        replays.push(McncReplay {
            name: format!("{name}_single"),
            elapsed: start.elapsed(),
            events: report.events,
            accepted: report.sched.loads_accepted,
            rejected: report.sched.loads_rejected,
            deadline_missed: report.sched.deadline_missed,
            load_latency: telemetry.histogram(Stage::Load).summary(),
        });

        let mut fleet = corpus
            .fleet_scheduler("least-loaded")
            .expect("known shard policy");
        let telemetry = Telemetry::new();
        fleet.set_telemetry(telemetry.clone());
        let start = Instant::now();
        let report = replay_multi(&mut fleet, trace);
        replays.push(McncReplay {
            name: format!("{name}_fleet"),
            elapsed: start.elapsed(),
            events: report.events,
            accepted: report.multi.loads_accepted,
            rejected: report.multi.loads_rejected,
            deadline_missed: report.fabrics.iter().map(|f| f.sched.deadline_missed).sum(),
            load_latency: telemetry.histogram(Stage::Load).summary(),
        });
    }
    (corpus, paths, replays)
}

/// One replay of the fault arm: the corpus steady trace with a given
/// integrity posture, so the fault plane's cost is tracked per PR.
struct FaultReplay {
    name: &'static str,
    elapsed: Duration,
    events: usize,
    accepted: u64,
    verify_scrubs: u64,
}

impl FaultReplay {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            "{{\"events_per_sec\": {:.1}, \"elapsed_ms\": {:.2}, \"accepted\": {}, \"verify_scrubs\": {}}}",
            self.events_per_sec(),
            self.elapsed.as_secs_f64() * 1e3,
            self.accepted,
            self.verify_scrubs
        )
    }
}

/// The fault arm: readback-verification overhead on the corpus steady
/// trace (single scheduler, verify off vs on — identical fault-free
/// workload, the only delta is the post-write `verify_region` readback),
/// plus the seeded chaos fleet replay (`McncCorpus::CHAOS_PLANS`: write
/// faults, corruption, and a mid-trace outage) as the degraded-mode
/// throughput reference. Returns the three replays and the verify
/// overhead ratio (verify-on elapsed over verify-off elapsed).
fn fault_arm(corpus: &McncCorpus) -> (Vec<FaultReplay>, f64) {
    let trace = corpus.trace("steady").expect("steady trace");

    let run_single = |name: &'static str, verify: bool| {
        let mut sched = corpus.single_scheduler();
        sched.set_verify(verify);
        let start = Instant::now();
        let report = replay(&mut sched, trace);
        FaultReplay {
            name,
            elapsed: start.elapsed(),
            events: report.events,
            accepted: report.sched.loads_accepted,
            verify_scrubs: report.sched.verify_scrubs,
        }
    };
    // Warm-up pass so the first measured replay does not pay cold-cache
    // decode costs the second one skips.
    run_single("warmup", false);
    let off = run_single("verify_off", false);
    let on = run_single("verify_on", true);
    let overhead = on.elapsed.as_secs_f64() / off.elapsed.as_secs_f64().max(1e-12);

    let mut fleet = corpus.chaos_fleet_scheduler();
    let start = Instant::now();
    let report = replay_multi(&mut fleet, trace);
    let chaos = FaultReplay {
        name: "chaos",
        elapsed: start.elapsed(),
        events: report.events,
        accepted: report.multi.loads_accepted,
        verify_scrubs: report.shard_totals().verify_scrubs,
    };

    (vec![off, on, chaos], overhead)
}

/// One point of a cache-budget sweep: a full trace replay under one
/// [`CacheBudget`], best-of-3 elapsed over fresh schedulers.
struct MemoryPoint {
    label: &'static str,
    budget: CacheBudget,
    elapsed: Duration,
    events: usize,
    accepted: u64,
    /// End-of-replay cache state (byte gauges are absolute, counters are
    /// per-replay deltas).
    cache: CacheStats,
}

impl MemoryPoint {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    fn loads_per_sec(&self) -> f64 {
        self.accepted as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            "{{\"hot_budget_bytes\": {}, \"warm_budget_bytes\": {}, \"resident_bytes\": {}, \"hot_bytes\": {}, \"warm_bytes\": {}, \"hit_rate\": {:.3}, \"warm_hits\": {}, \"demotions\": {}, \"loads_per_sec\": {:.1}, \"events_per_sec\": {:.1}}}",
            self.budget.hot_bytes,
            self.budget.warm_bytes,
            self.cache.resident_bytes(),
            self.cache.hot_bytes,
            self.cache.warm_bytes,
            self.cache.hit_rate(),
            self.cache.warm_hits,
            self.cache.demotions,
            self.loads_per_sec(),
            self.events_per_sec(),
        )
    }
}

/// Replays `trace` under `budget` on fresh schedulers from `make`: one
/// warm-up replay, then one timed one (the replays are deterministic, so
/// counters and byte gauges are identical across reps). Further reps run
/// through [`remeasure`], interleaved across the sweep's points.
fn memory_point(
    label: &'static str,
    budget: CacheBudget,
    trace: &Trace,
    make: &dyn Fn(CacheBudget) -> Scheduler,
) -> MemoryPoint {
    let mut sched = make(budget);
    replay(&mut sched, trace); // warm-up: page faults, lazy parses
    let mut sched = make(budget);
    let start = Instant::now();
    let report = replay(&mut sched, trace);
    let elapsed = start.elapsed();
    MemoryPoint {
        label,
        budget,
        elapsed,
        events: report.events,
        accepted: report.sched.loads_accepted,
        cache: report.cache,
    }
}

/// One more timed replay of `point`'s budget, keeping the faster elapsed.
fn remeasure(point: &mut MemoryPoint, trace: &Trace, make: &dyn Fn(CacheBudget) -> Scheduler) {
    let mut sched = make(point.budget);
    let start = Instant::now();
    replay(&mut sched, trace);
    point.elapsed = point.elapsed.min(start.elapsed());
}

/// Sweeps a replay across cache budgets: unbounded first (measuring the
/// unbounded hot tier's resident bytes), then total budgets at 50%, 25%
/// and 12.5% of that footprint. Each finite point gives three quarters of
/// its total to decoded arenas and one quarter to compressed warm bytes,
/// so `hot + warm` — everything the tiers hold resident — is bounded by
/// the named fraction. Returns the points in sweep order.
fn memory_sweep(trace: &Trace, make: &dyn Fn(CacheBudget) -> Scheduler) -> Vec<MemoryPoint> {
    let unbounded = memory_point("unbounded", CacheBudget::UNBOUNDED, trace, make);
    let full = unbounded.cache.hot_bytes.max(1);
    let mut points = vec![unbounded];
    for (label, fraction) in [("total50", 2u64), ("total25", 4), ("total12", 8)] {
        let total = (full / fraction).max(4);
        let budget = CacheBudget {
            hot_bytes: total * 3 / 4,
            warm_bytes: total / 4,
        };
        points.push(memory_point(label, budget, trace, make));
    }
    // Two more reps per point, interleaved round-robin so machine-load
    // drift lands on every budget equally — the headline compares
    // point-to-point throughput ratios, which sequential best-of-N leaves
    // at the mercy of when each point happened to run.
    for _ in 0..2 {
        for point in &mut points {
            remeasure(point, trace, make);
        }
    }
    points
}

/// The memory arm: cache-budget sweeps over the synthetic workload on the
/// `--fabric` device and over the MCNC steady trace on a 100×100
/// production-scale device, plus the warm re-decode allocation gate (the
/// pooled `redecode_into` seam re-decoding a held stream into a reused
/// arena must allocate nothing).
fn memory_arm(
    options: &Options,
    repository: &VbsRepository,
    corpus: &McncCorpus,
) -> (Vec<MemoryPoint>, Vec<MemoryPoint>, PathResult) {
    let trace = vbs_bench::sched_workload::sched_trace(options.loads, options.seed);
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let synthetic = memory_sweep(&trace, &|budget| {
        vbs_bench::sched_workload::sched_scheduler(
            repository,
            options.fabric.0,
            options.fabric.1,
            0,
            Box::new(BestFit),
            SchedulerConfig {
                cache_budget: budget,
                ..config
            },
        )
    });

    // The production-scale scenario: a 100×100 fabric serving a fleet
    // population of MCNC task instances under a skewed steady workload —
    // the unbounded hot tier holds every instance's decoded arena, the
    // budgeted points must find the hot working set.
    let instances = 48;
    let scaled_repo = corpus.scaled_repository(instances);
    let scaled_trace = corpus.scaled_steady_trace(instances, 960, options.seed);
    let mcnc = memory_sweep(&scaled_trace, &|budget| {
        corpus.scheduler_over(
            scaled_repo.clone(),
            100,
            100,
            SchedulerConfig {
                cache_budget: budget,
                // Never let the count cap bind: byte budgets are the knob
                // under test, and the unbounded baseline must actually hold
                // every instance hot.
                cache_capacity: instances,
                ..McncCorpus::replay_config()
            },
        )
    });

    // Warm re-decode gate: the exact inner work of a warm hit — the pooled
    // lanes re-decoding an already-parsed stream into a reused arena.
    let spec = ArchSpec::new(corpus.channel_width, corpus.lut_size).expect("corpus arch");
    let largest = corpus
        .tasks
        .iter()
        .max_by_key(|t| t.width as u64 * t.height as u64)
        .expect("corpus tasks");
    let vbs = corpus.repository.fetch(&largest.name).expect("stream");
    let device = Device::new(spec, vbs.width(), vbs.height()).expect("device");
    let controller = ReconfigurationController::new(device).with_workers(2);
    controller.warm(&vbs).expect("warm");
    let mut staging = TaskBitstream::empty(*vbs.spec(), vbs.width(), vbs.height());
    let redecode = run_path(
        "warm_redecode",
        options,
        std::slice::from_ref(&vbs),
        |vbs| {
            controller
                .redecode_into(vbs, &mut staging)
                .expect("redecode");
        },
    );

    (synthetic, mcnc, redecode)
}

fn main() {
    let options = parse_args();
    let repository = sched_repository();
    println!(
        "# decode_perf — {} loads, {}x{} fabric, {} fleet fabrics, seed {}",
        options.loads, options.fabric.0, options.fabric.1, options.fabrics, options.seed
    );

    let paths = per_load_paths(&options, &repository);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "path", "ns/frame", "ns/load", "loads/s", "allocs/load"
    );
    for p in &paths {
        println!(
            "{:<12} {:>12.1} {:>12.0} {:>12.1} {:>12.1}",
            p.name,
            p.ns_per_frame(),
            p.ns_per_load(),
            p.loads_per_sec(),
            p.allocs_per_load()
        );
    }
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "latency(µs)", "p50", "p95", "p99", "max"
    );
    for p in &paths {
        let s = p.latency.summary();
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            p.name,
            s.p50 as f64 / 1e3,
            s.p95 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            s.max as f64 / 1e3
        );
    }
    let streaming = &paths[3];
    let vs_legacy = streaming.loads_per_sec() / paths[0].loads_per_sec();
    let vs_buffered = streaming.loads_per_sec() / paths[1].loads_per_sec();
    println!(
        "streaming decode→resident throughput: {vs_legacy:.2}x vs legacy, {vs_buffered:.2}x vs buffered"
    );

    let parallel = parallel_paths(&options, &repository);
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "parallel", "pooled l/s", "fresh l/s", "pooled alloc/l", "fresh alloc/l"
    );
    for (pooled, fresh) in &parallel {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>14.1}",
            pooled.name.trim_start_matches("pooled_"),
            pooled.loads_per_sec(),
            fresh.loads_per_sec(),
            pooled.allocs_per_load(),
            fresh.allocs_per_load()
        );
    }
    let pooled4 = &parallel[2].0;
    let speedup_pooled4_vs_scratch = pooled4.loads_per_sec() / paths[2].loads_per_sec();
    let speedup_pooled4_vs_fresh4 = pooled4.loads_per_sec() / parallel[2].1.loads_per_sec();
    println!(
        "pooled 4-lane load path: {speedup_pooled4_vs_scratch:.2}x vs 1-thread scratch, \
         {speedup_pooled4_vs_fresh4:.2}x vs fresh 4-worker"
    );
    // The adaptive-lane regression gate: configuring more lanes than the
    // load can use must never cost throughput (the pool falls back to a
    // sequential decode below its record threshold). 0.95 absorbs run
    // noise, not a real regression.
    let pooled1 = &parallel[0].0;
    assert!(
        pooled4.loads_per_sec() >= pooled1.loads_per_sec() * 0.95,
        "pooled 4-lane path regressed below 1-lane: {:.1} vs {:.1} loads/s",
        pooled4.loads_per_sec(),
        pooled1.loads_per_sec()
    );

    let compaction = compaction_paths(&options, &repository);
    println!(
        "{:<12} {:>8} {:>16} {:>14} {:>9} {:>14}",
        "compaction", "moves", "frames rewritten", "pause µs", "decodes", "cache fetches"
    );
    for c in &compaction {
        println!(
            "{:<12} {:>8} {:>16} {:>14} {:>9} {:>14}",
            c.name, c.moves, c.frames_rewritten, c.pause_micros, c.decodes, c.cache_fetches
        );
    }
    let budgeted = budgeted_compaction(&options, &repository);
    println!(
        "compaction budgeted: {} frames/pass budget, {} passes ({} truncated), \
         {} moves, max {} frames/pass, pause p99 {} µs",
        budgeted.budget,
        budgeted.passes,
        budgeted.truncated_passes,
        budgeted.moves,
        budgeted.max_frames_per_pass,
        budgeted.pause.p99
    );
    assert!(
        budgeted.max_frames_per_pass <= budgeted.budget,
        "a budgeted pass rewrote {} frames against a budget of {}",
        budgeted.max_frames_per_pass,
        budgeted.budget
    );

    let frame_write = frame_write_paths(&options, &repository);
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "frame_write", "word Mframes/s", "scalar Mframes/s", "speedup"
    );
    for f in &frame_write {
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>9.1}x",
            f.name,
            f.mframes_per_sec(f.word),
            f.mframes_per_sec(f.scalar),
            f.speedup()
        );
    }

    let (kernel_backend, kernel_ops) = kernel_paths(&options);
    println!(
        "{:<12} {:>18} {:>18} {:>10}   (backend: {kernel_backend})",
        "kernels", "dispatched Gw/s", "portable Gw/s", "speedup"
    );
    for op in &kernel_ops {
        println!(
            "{:<12} {:>18.2} {:>18.2} {:>9.2}x",
            op.name,
            op.gwords(op.dispatched),
            op.gwords(op.portable),
            op.speedup()
        );
    }

    let scaling = scaling_paths(&options, &repository);
    println!(
        "{:<12} {:>20} {:>12} {:>10} {:>10}",
        "scaling", "frame-write Mfr/s", "loads/s", "p50 µs", "p99 µs"
    );
    for s in &scaling {
        let lat = s.pooled.latency.summary();
        println!(
            "{:<12} {:>20.1} {:>12.1} {:>10.1} {:>10.1}",
            s.label,
            s.frame_write_mframes_per_sec,
            s.pooled.loads_per_sec(),
            lat.p50 as f64 / 1e3,
            lat.p99 as f64 / 1e3
        );
    }

    let fleet_buffered = run_fleet("pipelined", &options, &repository, MultiConfig::default());
    let fleet_streaming = run_fleet(
        "streaming",
        &options,
        &repository,
        MultiConfig {
            streaming: true,
            ..MultiConfig::default()
        },
    );
    for f in [&fleet_buffered, &fleet_streaming] {
        println!(
            "fleet {:<10} {:>10.0} events/s  {:>6} accepted  {:>9} decode µs",
            f.name,
            f.events_per_sec(),
            f.accepted,
            f.decode_micros
        );
    }

    let (corpus, mcnc_tasks, mcnc_replays) = mcnc_arm(&options);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "mcnc task", "loads/s", "p50 µs", "p99 µs", "allocs/load"
    );
    for p in &mcnc_tasks {
        let s = p.latency.summary();
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            p.name,
            p.loads_per_sec(),
            s.p50 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            p.allocs_per_load()
        );
    }
    for r in &mcnc_replays {
        println!(
            "mcnc {:<16} {:>6} accepted {:>4} rejected {:>3} missed  load p99 {:>6} µs",
            r.name, r.accepted, r.rejected, r.deadline_missed, r.load_latency.p99
        );
    }

    let (fault_replays, verify_overhead) = fault_arm(&corpus);
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8}",
        "fault", "events/s", "elapsed ms", "accepted", "scrubs"
    );
    for f in &fault_replays {
        println!(
            "{:<12} {:>12.1} {:>12.2} {:>10} {:>8}",
            f.name,
            f.events_per_sec(),
            f.elapsed.as_secs_f64() * 1e3,
            f.accepted,
            f.verify_scrubs
        );
    }
    println!("readback verification overhead: {verify_overhead:.2}x on the steady trace");

    let (memory_synth, memory_mcnc, warm_redecode) = memory_arm(&options, &repository, &corpus);
    for (section, points) in [
        ("memory 11x11", &memory_synth),
        ("memory 100x100", &memory_mcnc),
    ] {
        println!(
            "{:<15} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10}",
            section, "hot budget", "resident", "hit rate", "warm hits", "demotions", "loads/s"
        );
        for p in points {
            println!(
                "{:<15} {:>12} {:>12} {:>9.3} {:>10} {:>10} {:>10.1}",
                p.label,
                p.budget.hot_bytes,
                p.cache.resident_bytes(),
                p.cache.hit_rate(),
                p.cache.warm_hits,
                p.cache.demotions,
                p.loads_per_sec()
            );
        }
    }
    // Every finite point must honor its budget, and the 25% point is the
    // headline: a quarter of the unbounded hot footprint at near-unbounded
    // throughput (the ≥0.9× gate itself lives in CI, off the JSON).
    for p in memory_synth.iter().chain(&memory_mcnc) {
        if !p.budget.is_unbounded() {
            assert!(
                p.cache.hot_bytes <= p.budget.hot_bytes
                    && p.cache.warm_bytes <= p.budget.warm_bytes,
                "{}: cache exceeded its budget ({} hot / {} warm over {:?})",
                p.label,
                p.cache.hot_bytes,
                p.cache.warm_bytes,
                p.budget
            );
        }
    }
    let mcnc_unbounded = &memory_mcnc[0];
    let mcnc_total25 = memory_mcnc
        .iter()
        .find(|p| p.label == "total25")
        .expect("total25 sweep point");
    let headline_resident_fraction = mcnc_total25.cache.resident_bytes() as f64
        / mcnc_unbounded.cache.resident_bytes().max(1) as f64;
    let headline_throughput_ratio = mcnc_total25.loads_per_sec() / mcnc_unbounded.loads_per_sec();
    println!(
        "memory headline (mcnc steady @ 100x100): {:.1}% of unbounded cache bytes \
         at {:.2}x unbounded loads/s",
        headline_resident_fraction * 100.0,
        headline_throughput_ratio
    );
    println!(
        "warm re-decode: {:.0} ns/load, {:.1} allocs/load",
        warm_redecode.ns_per_load(),
        warm_redecode.allocs_per_load()
    );
    assert!(
        warm_redecode.allocs_per_load() == 0.0,
        "warm re-decode through the pooled lanes must be allocation-free, \
         got {:.1} allocs/load",
        warm_redecode.allocs_per_load()
    );

    let parallel_json = parallel
        .iter()
        .flat_map(|(pooled, fresh)| {
            [
                format!("    \"{}\": {}", pooled.name, pooled.json()),
                format!("    \"{}\": {}", fresh.name, fresh.json()),
            ]
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let latency_json = paths
        .iter()
        .chain(parallel.iter().flat_map(|(pooled, fresh)| [pooled, fresh]))
        .map(|p| format!("    \"{}\": {}", p.name, p.latency_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let mcnc_tasks_json = mcnc_tasks
        .iter()
        .map(|p| {
            format!(
                "      \"{}\": {{\"perf\": {}, \"latency\": {}}}",
                p.name,
                p.json(),
                p.latency_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let mcnc_replays_json = mcnc_replays
        .iter()
        .map(|r| format!("      \"{}\": {}", r.name, r.json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let fault_json = fault_replays
        .iter()
        .map(|f| format!("    \"{}\": {}", f.name, f.json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let kernels_json = kernel_ops
        .iter()
        .map(|op| format!("      \"{}\": {}", op.name, op.json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_json = scaling
        .iter()
        .map(|s| format!("    \"{}\": {}", s.label, s.json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let memory_points = |points: &[MemoryPoint]| {
        points
            .iter()
            .map(|p| format!("        \"{}\": {}", p.label, p.json()))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let memory_json = format!(
        "{{\n    \"synthetic\": {{\n      \"fabric\": \"{}x{}\",\n      \"points\": {{\n{}\n      }}\n    }},\n    \"mcnc_steady\": {{\n      \"fabric\": \"100x100\",\n      \"points\": {{\n{}\n      }},\n      \"headline\": {{\"budget_fraction\": 0.25, \"resident_fraction\": {:.3}, \"throughput_ratio\": {:.3}}}\n    }},\n    \"warm_redecode\": {{\"ns_per_load\": {:.0}, \"allocs_per_load\": {:.1}}}\n  }}",
        options.fabric.0,
        options.fabric.1,
        memory_points(&memory_synth),
        memory_points(&memory_mcnc),
        headline_resident_fraction,
        headline_throughput_ratio,
        warm_redecode.ns_per_load(),
        warm_redecode.allocs_per_load(),
    );
    let json = format!(
        "{{\n  \"bench\": \"decode_perf\",\n  \"loads\": {},\n  \"fabric\": \"{}x{}\",\n  \"fabrics\": {},\n  \"seed\": {},\n  \"paths\": {{\n    \"legacy\": {},\n    \"buffered\": {},\n    \"scratch\": {},\n    \"streaming\": {}\n  }},\n  \"latency\": {{\n{}\n  }},\n  \"speedup_streaming_vs_legacy\": {:.3},\n  \"speedup_streaming_vs_buffered\": {:.3},\n  \"parallel\": {{\n{},\n    \"speedup_pooled4_vs_scratch\": {:.3},\n    \"speedup_pooled4_vs_fresh4\": {:.3}\n  }},\n  \"compaction\": {{\n    \"batch\": {},\n    \"greedy\": {},\n    \"budgeted\": {}\n  }},\n  \"frame_write\": {{\n    \"load\": {},\n    \"clear\": {},\n    \"relocate\": {},\n    \"kernels\": {{\n      \"backend\": \"{}\",\n{}\n    }}\n  }},\n  \"scaling\": {{\n{}\n  }},\n  \"fleet\": {{\n    \"pipelined\": {},\n    \"streaming\": {}\n  }},\n  \"mcnc\": {{\n    \"single\": \"{}x{}\",\n    \"fleet\": \"{}x{}x{}\",\n    \"tasks\": {{\n{}\n    }},\n    \"replays\": {{\n{}\n    }}\n  }},\n  \"fault\": {{\n{},\n    \"verify_overhead\": {:.3}\n  }},\n  \"memory\": {}\n}}\n",
        options.loads,
        options.fabric.0,
        options.fabric.1,
        options.fabrics,
        options.seed,
        paths[0].json(),
        paths[1].json(),
        paths[2].json(),
        paths[3].json(),
        latency_json,
        vs_legacy,
        vs_buffered,
        parallel_json,
        speedup_pooled4_vs_scratch,
        speedup_pooled4_vs_fresh4,
        compaction[0].json(),
        compaction[1].json(),
        budgeted.json(),
        frame_write[0].json(),
        frame_write[1].json(),
        frame_write[2].json(),
        kernel_backend,
        kernels_json,
        scaling_json,
        fleet_buffered.json(),
        fleet_streaming.json(),
        corpus.single.0,
        corpus.single.1,
        corpus.fleet.0,
        corpus.fleet.1,
        corpus.fleet.2,
        mcnc_tasks_json,
        mcnc_replays_json,
        fault_json,
        verify_overhead,
        memory_json,
    );
    std::fs::write(&options.out, json).expect("write baseline json");
    println!("wrote {}", options.out);
}
