//! Decode→resident throughput baseline: buffered vs scratch-reuse vs
//! streaming load paths, plus the 4-fabric fleet replay, emitted as
//! machine-readable `BENCH_decode.json` so perf numbers accumulate per PR.
//!
//! Four per-load paths are timed over the scheduler workload task mix on
//! one `--fabric`-sized device (a load = de-virtualize one VBS and make it
//! resident in configuration memory):
//!
//! * **legacy** — the pre-scratch path exactly as it shipped before this
//!   subsystem existed: fresh decoded image per load *and* fresh decode
//!   state per record (`decode_record_into` + `load_decoded`);
//! * **buffered** — today's one-shot path: one header-pre-reserved scratch
//!   shared across the records of each load
//!   (`devirtualize_stream` + `load_decoded`);
//! * **scratch** — buffered writes, but decode state and the staging image
//!   come from a persistent [`vbs_core::DecodeScratch`]
//!   (`devirtualize_into` + `load_decoded`): zero allocations steady-state;
//! * **streaming** — scratch reuse *and* frame writes overlapped with the
//!   decode (`load_streaming`): memory writes begin after the first cluster
//!   record instead of after the last.
//!
//! The headline `speedup_streaming_vs_legacy` compares the new steady-state
//! path against the pre-PR behavior; `speedup_streaming_vs_buffered`
//! isolates what scratch persistence + streaming buy over today's one-shot
//! decode.
//!
//! The fleet section replays the same seeded trace through a
//! `--fabrics`-sized multi-fabric scheduler in staged-pipeline mode vs
//! streaming mode.
//!
//! Usage: `cargo run --release -p vbs-bench --bin decode_perf --
//!         [--loads N] [--fabric WxH] [--fabrics K] [--seed S]
//!         [--quick] [--out PATH]`

use std::time::{Duration, Instant};
use vbs_arch::Coord;
use vbs_bench::sched_workload::{sched_device, sched_fleet, sched_repository, sched_trace};
use vbs_bench::{allocations, CountingAllocator};
use vbs_core::{DecodeScratch, Devirtualizer, Vbs};
use vbs_runtime::{
    devirtualize_into, devirtualize_stream, BestFit, ReconfigurationController, VbsRepository,
};
use vbs_sched::{replay_multi, LeastLoaded, MultiConfig, SchedulerConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Options {
    loads: usize,
    fabric: (u16, u16),
    fabrics: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Options {
    let mut options = Options {
        loads: 500,
        fabric: (11, 11),
        fabrics: 4,
        seed: 2015,
        out: "BENCH_decode.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => options.loads = options.loads.min(60),
            "--loads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.loads = 1usize.max(v);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.seed = v;
                    i += 1;
                }
            }
            "--fabrics" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.fabrics = 1usize.max(v);
                    i += 1;
                }
            }
            "--fabric" => {
                if let Some((w, h)) = args
                    .get(i + 1)
                    .and_then(|s| s.split_once('x'))
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                {
                    options.fabric = (w, h);
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    options.out = v.clone();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

/// One timed per-load path over `loads` round-robin loads of the task mix.
struct PathResult {
    name: &'static str,
    elapsed: Duration,
    frames: u64,
    allocs: u64,
    loads: usize,
}

impl PathResult {
    fn ns_per_frame(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.frames.max(1) as f64
    }

    fn ns_per_load(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.loads.max(1) as f64
    }

    fn loads_per_sec(&self) -> f64 {
        self.loads as f64 / self.elapsed.as_secs_f64()
    }

    fn allocs_per_load(&self) -> f64 {
        self.allocs as f64 / self.loads.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"ns_per_frame\": {:.1}, \"ns_per_load\": {:.0}, \"loads_per_sec\": {:.1}, \"allocs_per_load\": {:.1}}}",
            self.ns_per_frame(),
            self.ns_per_load(),
            self.loads_per_sec(),
            self.allocs_per_load()
        )
    }
}

fn streams(repository: &VbsRepository) -> Vec<Vbs> {
    vbs_bench::sched_workload::SCHED_TASKS
        .iter()
        .map(|(name, ..)| repository.fetch(name).expect("workload task"))
        .collect()
}

fn run_path(
    name: &'static str,
    options: &Options,
    streams: &[Vbs],
    mut load: impl FnMut(&Vbs),
) -> PathResult {
    // Warm up outside the measurement (cold-scratch allocations, page
    // faults, branch predictors).
    for vbs in streams {
        load(vbs);
    }
    let frames_per_round: u64 = streams
        .iter()
        .map(|v| v.width() as u64 * v.height() as u64)
        .sum();
    let before = allocations();
    let start = Instant::now();
    for i in 0..options.loads {
        load(&streams[i % streams.len()]);
    }
    let elapsed = start.elapsed();
    let allocs = allocations() - before;
    PathResult {
        name,
        elapsed,
        frames: frames_per_round * (options.loads as u64) / streams.len() as u64,
        allocs,
        loads: options.loads,
    }
}

fn per_load_paths(options: &Options, repository: &VbsRepository) -> Vec<PathResult> {
    let device = sched_device(options.fabric.0, options.fabric.1);
    let streams = streams(repository);
    let origin = Coord::new(0, 0);
    let mut results = Vec::new();

    // Legacy (pre-scratch): fresh image per load, fresh decode state per
    // record — the path as it existed before the scratch-arena rework.
    let mut controller = ReconfigurationController::new(device.clone());
    results.push(run_path("legacy", options, &streams, |vbs| {
        let devirt = Devirtualizer::new(vbs).expect("devirtualizer");
        let mut task = vbs_bitstream::TaskBitstream::empty(*vbs.spec(), vbs.width(), vbs.height());
        for record in vbs.records() {
            devirt
                .decode_record_into(record, &mut task)
                .expect("decode");
        }
        controller.load_decoded(&task, origin).expect("load");
    }));

    // Buffered: one shared, header-pre-reserved scratch per load.
    let mut controller = ReconfigurationController::new(device.clone());
    results.push(run_path("buffered", options, &streams, |vbs| {
        let (task, _report) = devirtualize_stream(vbs, 1).expect("decode");
        controller.load_decoded(&task, origin).expect("load");
    }));

    // Scratch reuse: persistent arena + staging, buffered writes.
    let mut controller = ReconfigurationController::new(device.clone());
    let mut scratch = DecodeScratch::new();
    results.push(run_path("scratch", options, &streams, |vbs| {
        let mut staging = scratch.take_staging(*vbs.spec(), vbs.width(), vbs.height());
        devirtualize_into(vbs, &mut staging, &mut scratch).expect("decode");
        controller.load_decoded(&staging, origin).expect("load");
        scratch.put_staging(staging);
    }));

    // Streaming: persistent arena + frame writes overlapping the decode.
    let mut controller = ReconfigurationController::new(device);
    let mut scratch = DecodeScratch::new();
    let mut staging = vbs_bitstream::TaskBitstream::empty(*streams[0].spec(), 1, 1);
    results.push(run_path("streaming", options, &streams, |vbs| {
        controller
            .load_streaming(vbs, origin, &mut staging, &mut scratch)
            .expect("load");
    }));

    results
}

/// One region-op measurement of the `frame_write` arm: the word-level flat
/// arena path vs the retained scalar (legacy per-bit) fallback.
struct FrameWriteResult {
    name: &'static str,
    word: Duration,
    scalar: Duration,
    frames: u64,
}

impl FrameWriteResult {
    fn mframes_per_sec(&self, elapsed: Duration) -> f64 {
        self.frames as f64 / elapsed.as_secs_f64() / 1e6
    }

    fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.word.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"word_mframes_per_sec\": {:.1}, \"scalar_mframes_per_sec\": {:.1}, \"speedup_word_vs_scalar\": {:.1}}}",
            self.mframes_per_sec(self.word),
            self.mframes_per_sec(self.scalar),
            self.speedup()
        )
    }
}

/// Times the raw `ConfigMemory` region operations — task load, region
/// clear, relocation move — on the flat word arena vs the scalar per-bit
/// reference twins (the legacy layout's access pattern).
fn frame_write_paths(options: &Options, repository: &VbsRepository) -> Vec<FrameWriteResult> {
    let device = sched_device(options.fabric.0, options.fabric.1);
    // The largest workload task gives the most representative region size.
    let vbs = streams(repository)
        .into_iter()
        .max_by_key(|v| v.width() as u64 * v.height() as u64)
        .expect("workload streams");
    let (task, _) = devirtualize_stream(&vbs, 1).expect("decode");
    let mut memory = vbs_bitstream::ConfigMemory::new(&device);
    let (tw, th) = (task.width(), task.height());
    assert!(
        tw <= options.fabric.0 && th <= options.fabric.1,
        "frame_write arm needs --fabric at least as large as the largest \
         workload task ({tw}x{th}), got {}x{}",
        options.fabric.0,
        options.fabric.1
    );
    let a = Coord::new(0, 0);
    let b = Coord::new(options.fabric.0 - tw, options.fabric.1 - th);
    assert!(
        b != a,
        "frame_write relocation needs the fabric to exceed the largest \
         workload task ({tw}x{th}) in at least one dimension, got {}x{}",
        options.fabric.0,
        options.fabric.1
    );
    let rect = |o: Coord| vbs_arch::Rect::new(o, tw, th);
    let iterations = options.loads.max(1);
    let frames = tw as u64 * th as u64 * iterations as u64;

    fn timed(iterations: usize, mut op: impl FnMut()) -> Duration {
        op(); // warm-up
        let start = Instant::now();
        for _ in 0..iterations {
            op();
        }
        start.elapsed()
    }

    let load_word = timed(iterations, || memory.load_task(&task, a).expect("load"));
    let load_scalar = timed(iterations, || {
        memory.load_task_scalar(&task, a).expect("load")
    });
    // Relocation ping-pongs between two corners so the source always holds
    // the task (flip-flopping keeps every move a full-content move).
    memory.load_task(&task, a).expect("seed");
    let mut at = a;
    let reloc_word = timed(iterations, || {
        let to = if at == a { b } else { a };
        memory.move_region(rect(at), to).expect("move");
        at = to;
    });
    memory.clear_region(rect(a)).expect("clear");
    memory.clear_region(rect(b)).expect("clear");
    memory.load_task(&task, a).expect("seed");
    let mut at = a;
    let reloc_scalar = timed(iterations, || {
        let to = if at == a { b } else { a };
        memory.move_region_scalar(rect(at), to).expect("move");
        at = to;
    });
    let clear_word = timed(iterations, || memory.clear_region(rect(a)).expect("clear"));
    let clear_scalar = timed(iterations, || {
        memory.clear_region_scalar(rect(a)).expect("clear")
    });

    vec![
        FrameWriteResult {
            name: "load",
            word: load_word,
            scalar: load_scalar,
            frames,
        },
        FrameWriteResult {
            name: "clear",
            word: clear_word,
            scalar: clear_scalar,
            frames,
        },
        FrameWriteResult {
            name: "relocate",
            word: reloc_word,
            scalar: reloc_scalar,
            frames,
        },
    ]
}

struct FleetResult {
    name: &'static str,
    elapsed: Duration,
    events: usize,
    accepted: u64,
    decode_micros: u128,
}

impl FleetResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            "{{\"events_per_sec\": {:.1}, \"accepted\": {}, \"decode_micros\": {}, \"elapsed_ms\": {:.1}}}",
            self.events_per_sec(),
            self.accepted,
            self.decode_micros,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

fn run_fleet(
    name: &'static str,
    options: &Options,
    repository: &VbsRepository,
    multi_config: MultiConfig,
) -> FleetResult {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let mut multi = sched_fleet(
        repository,
        options.fabrics,
        options.fabric,
        Box::new(LeastLoaded),
        &|| Box::new(BestFit),
        config,
        multi_config,
    );
    let trace = sched_trace(options.loads, options.seed);
    let start = Instant::now();
    let report = replay_multi(&mut multi, &trace);
    let elapsed = start.elapsed();
    FleetResult {
        name,
        elapsed,
        events: report.events,
        accepted: report.multi.loads_accepted,
        decode_micros: report.fabrics.iter().map(|f| f.sched.decode_micros).sum(),
    }
}

fn main() {
    let options = parse_args();
    let repository = sched_repository();
    println!(
        "# decode_perf — {} loads, {}x{} fabric, {} fleet fabrics, seed {}",
        options.loads, options.fabric.0, options.fabric.1, options.fabrics, options.seed
    );

    let paths = per_load_paths(&options, &repository);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "path", "ns/frame", "ns/load", "loads/s", "allocs/load"
    );
    for p in &paths {
        println!(
            "{:<12} {:>12.1} {:>12.0} {:>12.1} {:>12.1}",
            p.name,
            p.ns_per_frame(),
            p.ns_per_load(),
            p.loads_per_sec(),
            p.allocs_per_load()
        );
    }
    let streaming = &paths[3];
    let vs_legacy = streaming.loads_per_sec() / paths[0].loads_per_sec();
    let vs_buffered = streaming.loads_per_sec() / paths[1].loads_per_sec();
    println!(
        "streaming decode→resident throughput: {vs_legacy:.2}x vs legacy, {vs_buffered:.2}x vs buffered"
    );

    let frame_write = frame_write_paths(&options, &repository);
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "frame_write", "word Mframes/s", "scalar Mframes/s", "speedup"
    );
    for f in &frame_write {
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>9.1}x",
            f.name,
            f.mframes_per_sec(f.word),
            f.mframes_per_sec(f.scalar),
            f.speedup()
        );
    }

    let fleet_buffered = run_fleet("pipelined", &options, &repository, MultiConfig::default());
    let fleet_streaming = run_fleet(
        "streaming",
        &options,
        &repository,
        MultiConfig {
            streaming: true,
            ..MultiConfig::default()
        },
    );
    for f in [&fleet_buffered, &fleet_streaming] {
        println!(
            "fleet {:<10} {:>10.0} events/s  {:>6} accepted  {:>9} decode µs",
            f.name,
            f.events_per_sec(),
            f.accepted,
            f.decode_micros
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"decode_perf\",\n  \"loads\": {},\n  \"fabric\": \"{}x{}\",\n  \"fabrics\": {},\n  \"seed\": {},\n  \"paths\": {{\n    \"legacy\": {},\n    \"buffered\": {},\n    \"scratch\": {},\n    \"streaming\": {}\n  }},\n  \"speedup_streaming_vs_legacy\": {:.3},\n  \"speedup_streaming_vs_buffered\": {:.3},\n  \"frame_write\": {{\n    \"load\": {},\n    \"clear\": {},\n    \"relocate\": {}\n  }},\n  \"fleet\": {{\n    \"pipelined\": {},\n    \"streaming\": {}\n  }}\n}}\n",
        options.loads,
        options.fabric.0,
        options.fabric.1,
        options.fabrics,
        options.seed,
        paths[0].json(),
        paths[1].json(),
        paths[2].json(),
        paths[3].json(),
        vs_legacy,
        vs_buffered,
        frame_write[0].json(),
        frame_write[1].json(),
        frame_write[2].json(),
        fleet_buffered.json(),
        fleet_streaming.json(),
    );
    std::fs::write(&options.out, json).expect("write baseline json");
    println!("wrote {}", options.out);
}
