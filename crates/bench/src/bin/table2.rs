//! Regenerates Table II of the paper: the benchmark set with its array size,
//! minimum channel width and logic-block count.
//!
//! The paper's MCW column comes from VPR's binary search on the real MCNC
//! netlists; here the synthetic equivalents are searched the same way, so the
//! comparison shows how closely the substitutes track the originals.
//!
//! Usage: `cargo run --release -p vbs-bench --bin table2 [--scale X|--full] [--limit N]`

use vbs_bench::HarnessOptions;
use vbs_flow::CadFlow;

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    println!("# Table II — benchmark set (scale {:.2})", options.scale);
    println!(
        "{:<10} {:>5} {:>10} {:>7} {:>12} {:>12}",
        "name", "size", "MCW(paper)", "LBs", "LBs(built)", "MCW(measured)"
    );
    for circuit in options.circuits() {
        let netlist = match circuit.build_scaled(options.scale) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{}: generation failed: {e}", circuit.name);
                continue;
            }
        };
        let edge = circuit.scaled_size(options.scale);
        let flow = match CadFlow::new(24, 6) {
            Ok(f) => f.with_seed(circuit.seed()).fast(),
            Err(e) => {
                eprintln!("{}: {e}", circuit.name);
                continue;
            }
        };
        let mcw = match flow.minimum_channel_width(&netlist, edge, edge, 24) {
            Ok(search) => search.min_channel_width.to_string(),
            Err(e) => format!("fail ({e})"),
        };
        println!(
            "{:<10} {:>5} {:>10} {:>7} {:>12} {:>12}",
            circuit.name,
            circuit.size,
            circuit.min_channel_width,
            circuit.logic_blocks,
            netlist.lut_count(),
            mcw
        );
    }
}
