//! Chaos determinism gate: replays the MCNC steady trace through the
//! 2-fabric fleet under the seeded fault schedules
//! (`McncCorpus::CHAOS_PLANS` — scattered write faults on both fabrics
//! plus a mid-trace outage of fabric 0), twice, and diffs the counters.
//! Any divergence between the two runs means a nondeterministic fault
//! path; any drift from `chaos.golden` means observable fault-handling
//! behavior changed.
//!
//! ```text
//! cargo run --release -p vbs-bench --bin chaos            # rewrite chaos.golden
//! cargo run --release -p vbs-bench --bin chaos -- --check # fail on drift
//! ```
//!
//! CI runs the `--check` form next to the corpus drift check; see
//! `crates/sched/README.md` for the regen workflow.

use std::path::PathBuf;
use std::process::ExitCode;
use vbs_sched::McncCorpus;

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc"
    ))
}

fn main() -> ExitCode {
    let check_mode = std::env::args().any(|a| a == "--check");
    let dir = corpus_dir();
    let corpus = match McncCorpus::load(&dir) {
        Ok(corpus) => corpus,
        Err(e) => {
            eprintln!("load corpus: {e} — build it first with the mcnc_corpus bin");
            return ExitCode::FAILURE;
        }
    };

    // The determinism gate proper: two seeded runs, bit-identical counters.
    let first = corpus.chaos_lines();
    let second = corpus.chaos_lines();
    if first != second {
        eprintln!("NONDETERMINISM: two seeded chaos replays diverged");
        for (a, b) in first.iter().zip(&second) {
            if a != b {
                eprintln!("  run 1: {a}\n  run 2: {b}");
            }
        }
        return ExitCode::FAILURE;
    }

    let mut golden = String::from(
        "# Golden counters of the seeded chaos replay (fault schedules in\n\
         # McncCorpus::CHAOS_PLANS; line format in McncCorpus::chaos_lines).\n\
         # Regenerate: cargo run --release -p vbs-bench --bin chaos\n",
    );
    for line in &first {
        golden.push_str(line);
        golden.push('\n');
    }
    let path = dir.join("chaos.golden");

    if check_mode {
        match std::fs::read_to_string(&path) {
            Ok(on_disk) if on_disk == golden => {
                println!("chaos goldens up to date ({} lines)", first.len());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "DRIFT: {} differs from a fresh replay; regenerate with \
                     `cargo run --release -p vbs-bench --bin chaos` and commit the diff",
                    path.display()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("DRIFT: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        }
    } else {
        if let Err(e) = std::fs::write(&path, &golden) {
            eprintln!("write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
        for line in &first {
            println!("  {line}");
        }
        ExitCode::SUCCESS
    }
}
