//! Ablation studies of the design choices called out in `DESIGN.md`:
//!
//! * coding width: the paper's `M = ⌈log2(4W + L + 1)⌉` I/O identifiers vs a
//!   naive fixed 16-bit pair coding;
//! * raw fallback: with and without the "use the raw coding when the list is
//!   bigger" rule of Section IV-A;
//! * decode parallelism: de-virtualization wall-clock vs worker count.
//!
//! Usage: `cargo run --release -p vbs-bench --bin ablation [--scale X] [--limit N]`

use vbs_arch::Device;
use vbs_bench::{run_circuit, HarnessOptions};
use vbs_core::ClusterRoutes;
use vbs_runtime::ReconfigurationController;

fn main() {
    let mut options = HarnessOptions::from_args(std::env::args().skip(1));
    if options.limit.is_none() {
        options.limit = Some(6);
    }
    println!(
        "# Ablations (W = {}, scale {:.2})",
        options.channel_width, options.scale
    );

    println!(
        "\n## Connection coding width — paper M-bit identifiers vs naive 16-bit identifiers\n"
    );
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14}",
        "name", "connections", "VBS (M bits)", "VBS (16 bits)", "overhead"
    );
    let mut runs = Vec::new();
    for circuit in options.circuits() {
        match run_circuit(circuit, options.scale, options.channel_width) {
            Ok(run) => runs.push(run),
            Err(e) => eprintln!("{}: {e}", circuit.name),
        }
    }
    for run in &runs {
        let vbs = match run.result.vbs(1) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}: {e}", run.circuit.name);
                continue;
            }
        };
        let stats = vbs_core::VbsStats::of(&vbs);
        let m_bits = vbs.io_bits() as u64;
        let naive_bits = vbs.size_bits() + stats.connections as u64 * 2 * (16 - m_bits);
        println!(
            "{:<10} {:>12} {:>14} {:>14} {:>13.1}%",
            run.circuit.name,
            stats.connections,
            vbs.size_bits(),
            naive_bits,
            100.0 * (naive_bits as f64 / vbs.size_bits() as f64 - 1.0)
        );
    }

    println!("\n## Raw-macro fallback — how many records used it and what it saved\n");
    println!(
        "{:<10} {:>9} {:>9} {:>16}",
        "name", "coded", "raw", "VBS/raw ratio"
    );
    for run in &runs {
        if let Ok(vbs) = run.result.vbs(1) {
            let stats = vbs_core::VbsStats::of(&vbs);
            // Size if raw fallback records had been forced to stay coded at
            // the break-even bound (upper estimate: raw routing bits each).
            println!(
                "{:<10} {:>9} {:>9} {:>15.1}%",
                run.circuit.name,
                stats.coded_records,
                stats.raw_records,
                100.0 * stats.ratio()
            );
        }
    }
    let mut total_raw = 0usize;
    let mut total_records = 0usize;
    for run in &runs {
        if let Ok(vbs) = run.result.vbs(1) {
            total_records += vbs.records().len();
            total_raw += vbs
                .records()
                .iter()
                .filter(|r| matches!(r.routes, ClusterRoutes::Raw(_)))
                .count();
        }
    }
    println!("raw fallback used by {total_raw} of {total_records} records");

    println!("\n## De-virtualization parallelism (largest selected circuit)\n");
    println!("Pooled lanes: every decode draws its scratch and partial images");
    println!("from one shared ScratchPool, so the sweep measures decode work,");
    println!("not allocator churn. reused/fresh are the pool's counters.\n");
    if let Some(run) = runs.last() {
        if let Ok(vbs) = run.result.vbs(1) {
            let device = run.result.device().clone();
            let pool = vbs_runtime::ScratchPool::default();
            for workers in [1usize, 2, 4, 8] {
                let mut controller = ReconfigurationController::new(
                    Device::new(*device.spec(), device.width(), device.height())
                        .expect("same dims"),
                )
                .with_workers(workers);
                controller.set_scratch_pool(pool.clone());
                if let Err(e) = controller.warm(&vbs) {
                    eprintln!("warm failed: {e}");
                    continue;
                }
                // One warm-up decode, then the measured one: steady state.
                let mut best = u64::MAX;
                for _ in 0..3 {
                    match controller.devirtualize(&vbs) {
                        Ok((task, report)) => {
                            best = best.min(report.micros);
                            pool.put(task);
                        }
                        Err(e) => {
                            eprintln!("decode failed: {e}");
                            best = u64::MAX;
                            break;
                        }
                    }
                }
                if best == u64::MAX {
                    continue;
                }
                let stats = pool.stats();
                println!(
                    "{:<10} workers={:<2} records={:<6} decode={best} us  \
                     pool reused={} fresh={} scratch_fresh={}",
                    run.circuit.name,
                    workers,
                    vbs.records().len(),
                    stats.reused,
                    stats.fresh,
                    stats.scratch_fresh
                );
            }
        }
    }
}
