//! Regenerates Figure 5 of the paper: effect of the macro cluster size on the
//! Virtual Bit-Stream size. For each cluster size the harness reports the
//! minimum, geometric mean and maximum VBS size over the benchmark set, plus
//! the average compression ratio (the paper reports 41 % at k = 1 dropping to
//! 9–15 % for larger clusters).
//!
//! Usage: `cargo run --release -p vbs-bench --bin figure5 [--scale X|--full] [--limit N]`

use vbs_bench::{geometric_mean, run_circuit, HarnessOptions};

const CLUSTER_SIZES: [u16; 6] = [1, 2, 3, 4, 6, 8];

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "# Figure 5 — VBS size vs cluster size (W = {}, scale {:.2})",
        options.channel_width, options.scale
    );

    // Route every circuit once; clustering is a re-encoding of the same
    // routed task.
    let runs: Vec<_> = options
        .circuits()
        .into_iter()
        .filter_map(
            |circuit| match run_circuit(circuit, options.scale, options.channel_width) {
                Ok(run) => Some(run),
                Err(e) => {
                    eprintln!("{}: {e}", circuit.name);
                    None
                }
            },
        )
        .collect();

    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "cluster", "min (bits)", "geomean", "max (bits)", "avg ratio", "raw-fallbk"
    );
    for k in CLUSTER_SIZES {
        let mut sizes = Vec::new();
        let mut ratios = Vec::new();
        let mut raw_fallbacks = 0usize;
        for run in &runs {
            let task_edge = run
                .result
                .raw_bitstream()
                .width()
                .min(run.result.raw_bitstream().height());
            if k > task_edge {
                continue;
            }
            match run.stats(k) {
                Ok(stats) => {
                    sizes.push(stats.vbs_bits as f64);
                    ratios.push(stats.ratio());
                    raw_fallbacks += stats.raw_records;
                }
                Err(e) => eprintln!("{} (k={k}): {e}", run.circuit.name),
            }
        }
        if sizes.is_empty() {
            continue;
        }
        let min = sizes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().copied().fold(0.0f64, f64::max);
        let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "{:>7} {:>14.0} {:>14.0} {:>14.0} {:>9.1}% {:>10}",
            k,
            min,
            geometric_mean(&sizes),
            max,
            100.0 * avg_ratio,
            raw_fallbacks
        );
    }
    println!("\npaper reference: 41% at k=1, 9-15% for larger clusters, diminishing beyond k~4");
}
