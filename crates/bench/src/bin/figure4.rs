//! Regenerates Figure 4 of the paper: raw bit-stream size vs Virtual
//! Bit-Stream size for every benchmark, plus the average compression ratio
//! (the paper reports the VBS at 41 % of the raw size on average).
//!
//! Usage: `cargo run --release -p vbs-bench --bin figure4 [--scale X|--full] [--limit N]`

use vbs_bench::{geometric_mean, run_circuit, HarnessOptions};

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "# Figure 4 — raw vs virtual bit-stream size (W = {}, scale {:.2})",
        options.channel_width, options.scale
    );
    println!(
        "{:<10} {:>14} {:>14} {:>9} {:>8} {:>10}",
        "name", "raw (bits)", "VBS (bits)", "ratio", "factor", "raw-fallbk"
    );
    let mut ratios = Vec::new();
    for circuit in options.circuits() {
        match run_circuit(circuit, options.scale, options.channel_width) {
            Ok(run) => match run.stats(1) {
                Ok(stats) => {
                    ratios.push(stats.ratio());
                    println!(
                        "{:<10} {:>14} {:>14} {:>8.1}% {:>7.2}x {:>10}",
                        circuit.name,
                        stats.raw_bits,
                        stats.vbs_bits,
                        100.0 * stats.ratio(),
                        stats.factor(),
                        stats.raw_records
                    );
                }
                Err(e) => eprintln!("{}: encoding failed: {e}", circuit.name),
            },
            Err(e) => eprintln!("{}: {e}", circuit.name),
        }
    }
    if !ratios.is_empty() {
        let arithmetic = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "\naverage VBS/raw ratio: {:.1}% (geometric mean {:.1}%) over {} circuits",
            100.0 * arithmetic,
            100.0 * geometric_mean(&ratios),
            ratios.len()
        );
        println!("paper reference: 41% average at the finest grain (>=2.5x compression)");
    }
}
