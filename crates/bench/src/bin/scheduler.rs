//! Scheduler throughput experiment: replays a seeded synthetic workload
//! through every placement-policy / compaction combination and reports
//! acceptance, eviction, fragmentation, cache and throughput numbers.
//!
//! Usage: `cargo run --release -p vbs-bench --bin scheduler
//!         [--loads N] [--fabric WxH] [--seed S]`

use std::time::Instant;
use vbs_bench::sched_workload::{sched_device, sched_repository, sched_trace};
use vbs_runtime::{
    BestFit, BottomLeftSkyline, FirstFit, PlacementPolicy, ReconfigurationController, TaskManager,
};
use vbs_sched::{replay, LruEviction, Scheduler, SchedulerConfig};

struct Options {
    loads: usize,
    fabric: (u16, u16),
    seed: u64,
}

fn parse_args() -> Options {
    let mut options = Options {
        loads: 500,
        fabric: (11, 11),
        seed: 2015,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--loads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    // The trace generator requires at least one load.
                    options.loads = 1usize.max(v);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.seed = v;
                    i += 1;
                }
            }
            "--fabric" => {
                if let Some((w, h)) = args
                    .get(i + 1)
                    .and_then(|s| s.split_once('x'))
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                {
                    options.fabric = (w, h);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

fn main() {
    let options = parse_args();
    let repository = sched_repository();
    let trace = sched_trace(options.loads, options.seed);
    println!(
        "# Scheduler throughput — {} events on a {}x{} fabric (seed {})",
        trace.len(),
        options.fabric.0,
        options.fabric.1,
        options.seed
    );
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>10}",
        "configuration", "accept%", "evict", "reloc", "hit%", "decode µs", "frag", "events/s"
    );

    type PolicyMaker = fn() -> Box<dyn PlacementPolicy>;
    let policies: Vec<(&str, PolicyMaker)> = vec![
        ("first-fit", || Box::new(FirstFit)),
        ("best-fit", || Box::new(BestFit)),
        ("skyline", || Box::new(BottomLeftSkyline)),
    ];
    for (policy_name, make_policy) in &policies {
        for compaction in [false, true] {
            let manager = TaskManager::new(
                ReconfigurationController::new(sched_device(options.fabric.0, options.fabric.1)),
                repository.clone(),
            )
            .with_policy(make_policy());
            let mut scheduler = Scheduler::with_config(
                manager,
                Box::new(LruEviction),
                SchedulerConfig {
                    eviction_limit: 1,
                    compaction,
                    ..SchedulerConfig::default()
                },
            );
            let start = Instant::now();
            let report = replay(&mut scheduler, &trace);
            let elapsed = start.elapsed();
            let label = format!(
                "{policy_name}{}",
                if compaction { " + compaction" } else { "" }
            );
            println!(
                "{:<28} {:>7.1}% {:>8} {:>8} {:>7.1}% {:>9.1} {:>8.3} {:>10.0}",
                label,
                100.0 * report.acceptance_rate(),
                report.sched.evictions,
                report.sched.relocations,
                100.0 * report.cache.hit_rate(),
                report.sched.mean_decode_micros(),
                report.sched.mean_fragmentation(),
                report.events as f64 / elapsed.as_secs_f64(),
            );
        }
    }
}
