//! Scheduler throughput experiment.
//!
//! Single-fabric mode (default) replays a seeded synthetic workload through
//! every placement-policy / compaction combination and reports acceptance,
//! eviction, fragmentation, cache and throughput numbers.
//!
//! Multi-fabric mode (`--fabrics K` with K > 1) shards the same workload
//! over a K-device fleet per shard policy, compares it against K
//! *independent* single-fabric schedulers each facing the full stream, and
//! reports per-fabric utilization, migrations and decode-pipeline overlap.
//!
//! Usage: `cargo run --release -p vbs-bench --bin scheduler --
//!         [--loads N] [--fabric WxH] [--seed S]
//!         [--fabrics K] [--shard-policy P|all]`
//! with P one of `round-robin`, `least-loaded`, `cache-affinity`.

use std::time::Instant;
use vbs_bench::sched_workload::{sched_fleet, sched_repository, sched_scheduler, sched_trace};
use vbs_runtime::{BestFit, BottomLeftSkyline, FirstFit, PlacementPolicy, VbsRepository};
use vbs_sched::{
    replay, replay_multi, shard_policy_by_name, MultiConfig, SchedulerConfig, Trace,
    SHARD_POLICY_NAMES,
};

struct Options {
    loads: usize,
    fabric: (u16, u16),
    seed: u64,
    fabrics: usize,
    shard_policy: String,
}

fn parse_args() -> Options {
    let mut options = Options {
        loads: 500,
        fabric: (11, 11),
        seed: 2015,
        fabrics: 1,
        shard_policy: "all".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--loads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    // The trace generator requires at least one load.
                    options.loads = 1usize.max(v);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.seed = v;
                    i += 1;
                }
            }
            "--fabric" => {
                if let Some((w, h)) = args
                    .get(i + 1)
                    .and_then(|s| s.split_once('x'))
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                {
                    options.fabric = (w, h);
                    i += 1;
                }
            }
            "--fabrics" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.fabrics = 1usize.max(v);
                    i += 1;
                }
            }
            "--shard-policy" => {
                if let Some(v) = args.get(i + 1) {
                    options.shard_policy = v.clone();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

fn single_fabric_matrix(options: &Options, repository: &VbsRepository, trace: &Trace) {
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>10}",
        "configuration", "accept%", "evict", "reloc", "hit%", "decode µs", "frag", "events/s"
    );

    type PolicyMaker = fn() -> Box<dyn PlacementPolicy>;
    let policies: Vec<(&str, PolicyMaker)> = vec![
        ("first-fit", || Box::new(FirstFit)),
        ("best-fit", || Box::new(BestFit)),
        ("skyline", || Box::new(BottomLeftSkyline)),
    ];
    for (policy_name, make_policy) in &policies {
        for compaction in [false, true] {
            let mut scheduler = sched_scheduler(
                repository,
                options.fabric.0,
                options.fabric.1,
                0,
                make_policy(),
                SchedulerConfig {
                    eviction_limit: 1,
                    compaction,
                    ..SchedulerConfig::default()
                },
            );
            let start = Instant::now();
            let report = replay(&mut scheduler, trace);
            let elapsed = start.elapsed();
            let label = format!(
                "{policy_name}{}",
                if compaction { " + compaction" } else { "" }
            );
            println!(
                "{:<28} {:>7.1}% {:>8} {:>8} {:>7.1}% {:>9.1} {:>8.3} {:>10.0}",
                label,
                100.0 * report.acceptance_rate(),
                report.sched.evictions,
                report.sched.relocations,
                100.0 * report.cache.hit_rate(),
                report.sched.mean_decode_micros(),
                report.sched.mean_fragmentation(),
                report.events as f64 / elapsed.as_secs_f64(),
            );
        }
    }
}

fn multi_fabric_comparison(options: &Options, repository: &VbsRepository, trace: &Trace) {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let k = options.fabrics;

    // Baseline: K independent single-fabric schedulers, each replaying the
    // full overloaded stream. Aggregate acceptance = accepted / submitted
    // across all of them (equals the mean single-fabric acceptance).
    let mut independent_accepted = 0u64;
    let mut independent_submitted = 0u64;
    let baseline_start = Instant::now();
    for i in 0..k {
        let mut single = sched_scheduler(
            repository,
            options.fabric.0,
            options.fabric.1,
            i as u32,
            Box::new(BestFit),
            config,
        );
        let report = replay(&mut single, trace);
        independent_accepted += report.sched.loads_accepted;
        independent_submitted += report.sched.loads_submitted;
    }
    let baseline_elapsed = baseline_start.elapsed();
    let independent_rate = independent_accepted as f64 / independent_submitted as f64;
    println!(
        "{k} independent fabrics         {:>7.1}% aggregate acceptance ({independent_accepted}/{independent_submitted} loads, {:.2}s)",
        100.0 * independent_rate,
        baseline_elapsed.as_secs_f64()
    );
    println!();

    let policies: Vec<&str> = if options.shard_policy == "all" {
        SHARD_POLICY_NAMES.to_vec()
    } else {
        vec![options.shard_policy.as_str()]
    };
    for policy_name in policies {
        let shard = shard_policy_by_name(policy_name).expect("validated in main");
        let mut multi = sched_fleet(
            repository,
            k,
            options.fabric,
            shard,
            &|| Box::new(BestFit),
            config,
            MultiConfig::default(),
        );
        let start = Instant::now();
        let report = replay_multi(&mut multi, trace);
        let elapsed = start.elapsed();
        println!(
            "== sharded x{k}, {policy_name} == ({:.0} events/s, vs independents {:+.1}%)",
            report.events as f64 / elapsed.as_secs_f64(),
            100.0 * (report.acceptance_rate() - independent_rate),
        );
        print!("{report}");
        println!();
    }
}

fn main() {
    let options = parse_args();
    // Reject a bad shard policy before any replay work happens.
    if options.shard_policy != "all" && shard_policy_by_name(&options.shard_policy).is_none() {
        eprintln!(
            "unknown shard policy {:?} (expected \"all\" or one of {SHARD_POLICY_NAMES:?})",
            options.shard_policy
        );
        std::process::exit(2);
    }
    let repository = sched_repository();
    let trace = sched_trace(options.loads, options.seed);
    println!(
        "# Scheduler throughput — {} events on {}x {}x{} fabric(s) (seed {})",
        trace.len(),
        options.fabrics,
        options.fabric.0,
        options.fabric.1,
        options.seed
    );
    if options.fabrics <= 1 {
        single_fabric_matrix(&options, &repository, &trace);
    } else {
        multi_fabric_comparison(&options, &repository, &trace);
    }
}
