//! Shared workload fixture for the scheduler throughput bench and bin:
//! a small repository of synthetic tasks plus the device they target.

use vbs_arch::{ArchSpec, Device};
use vbs_flow::CadFlow;
use vbs_netlist::generate::SyntheticSpec;
use vbs_runtime::{
    FabricId, PlacementPolicy, ReconfigurationController, TaskManager, VbsRepository,
};
use vbs_sched::{
    LruEviction, MultiConfig, MultiFabricScheduler, Scheduler, SchedulerConfig, ShardPolicy, Trace,
    WorkloadSpec,
};

/// Channel width of the scheduler workload fabric.
pub const SCHED_CHANNEL_WIDTH: u16 = 9;
/// LUT size of the scheduler workload fabric.
pub const SCHED_LUT_SIZE: u8 = 6;

/// The task mix: (name, LUTs, grid edge, seed).
pub const SCHED_TASKS: &[(&str, usize, u16, u64)] = &[
    ("fir_filter", 9, 4, 21),
    ("crc_engine", 8, 4, 22),
    ("aes_round", 16, 5, 23),
    ("fft_stage", 24, 6, 24),
];

/// Builds the repository of [`SCHED_TASKS`] through the full CAD flow.
///
/// # Panics
///
/// Panics when the flow fails — the fixture is deterministic, so that only
/// happens if the flow itself regresses.
pub fn sched_repository() -> VbsRepository {
    let mut repo = VbsRepository::new();
    for &(name, luts, edge, seed) in SCHED_TASKS {
        let netlist = SyntheticSpec::new(name, luts, 3, 3)
            .with_seed(seed)
            .build()
            .expect("netlist generation");
        let result = CadFlow::new(SCHED_CHANNEL_WIDTH, SCHED_LUT_SIZE)
            .expect("flow construction")
            .with_grid(edge, edge)
            .with_seed(seed)
            .fast()
            .run(&netlist)
            .expect("cad flow");
        repo.store(name, &result.vbs(1).expect("vbs encoding"));
    }
    repo
}

/// A `width` × `height` device on the workload architecture.
///
/// # Panics
///
/// Panics on degenerate dimensions.
pub fn sched_device(width: u16, height: u16) -> Device {
    Device::new(
        ArchSpec::new(SCHED_CHANNEL_WIDTH, SCHED_LUT_SIZE).expect("arch spec"),
        width,
        height,
    )
    .expect("device")
}

/// One single-fabric scheduler over the workload repository, with LRU
/// eviction, tagged as fabric `fabric` of a fleet.
pub fn sched_scheduler(
    repository: &VbsRepository,
    width: u16,
    height: u16,
    fabric: u32,
    policy: Box<dyn PlacementPolicy>,
    config: SchedulerConfig,
) -> Scheduler {
    let manager = TaskManager::new(
        ReconfigurationController::new(sched_device(width, height)),
        repository.clone(),
    )
    .with_policy(policy)
    .with_fabric_id(FabricId(fabric));
    Scheduler::with_config(manager, Box::new(LruEviction), config)
}

/// A K-fabric fleet of identical `fabric`-sized (width, height) devices
/// over the workload repository, dispatching through `shard`.
pub fn sched_fleet(
    repository: &VbsRepository,
    k: usize,
    fabric: (u16, u16),
    shard: Box<dyn ShardPolicy>,
    make_policy: &dyn Fn() -> Box<dyn PlacementPolicy>,
    config: SchedulerConfig,
    multi_config: MultiConfig,
) -> MultiFabricScheduler {
    let fabrics = (0..k)
        .map(|i| {
            sched_scheduler(
                repository,
                fabric.0,
                fabric.1,
                i as u32,
                make_policy(),
                config,
            )
        })
        .collect();
    MultiFabricScheduler::new(fabrics, shard, multi_config)
}

/// A seeded synthetic trace over the workload task mix.
pub fn sched_trace(loads: usize, seed: u64) -> Trace {
    Trace::synthetic(&WorkloadSpec {
        tasks: SCHED_TASKS.iter().map(|t| t.0.to_string()).collect(),
        loads,
        mean_interarrival: 3,
        mean_duration: 24,
        priority_levels: 4,
        deadline_slack: None,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_fixture_is_deterministic() {
        assert_eq!(sched_trace(10, 7), sched_trace(10, 7));
        assert_eq!(sched_trace(10, 7).len(), 20);
    }
}
