//! Bit-identity differential suite for the word-level region operations.
//!
//! Every hot `ConfigMemory` operation (`load_task`, `clear_region`,
//! `copy_region`, `move_region`) runs as contiguous word-run copies/fills
//! over the flat [`vbs_bitstream::FrameStore`] arena; each keeps a scalar
//! per-bit twin (`*_scalar`) that is layout-blind by construction. These
//! properties drive both implementations over random devices, task shapes,
//! frame contents and (overlapping) region pairs and require the resulting
//! configuration memories to be **bit-identical** — the proof that the flat
//! layout is invisible to every consumer.

use proptest::prelude::*;
use vbs_arch::{ArchSpec, Coord, Device, Rect};
use vbs_bitstream::{ConfigMemory, TaskBitstream};

/// The two architectures the differential sweep alternates between — the
/// Section II example (284-bit frames, padding-heavy last word) and the
/// evaluation architecture (1004-bit frames).
fn arch(pick: u8) -> ArchSpec {
    if pick.is_multiple_of(2) {
        ArchSpec::paper_example()
    } else {
        ArchSpec::paper_evaluation()
    }
}

/// Builds a `width` × `height` task whose frames carry a seeded pseudo-random
/// bit pattern (every macro gets a few set bits, including the last valid
/// bit so padding handling is exercised).
fn patterned_task(spec: ArchSpec, width: u16, height: u16, seed: u64) -> TaskBitstream {
    let mut task = TaskBitstream::empty(spec, width, height);
    let bits = spec.raw_bits_per_macro();
    let mut state = seed | 1;
    for y in 0..height {
        for x in 0..width {
            let mut frame = task.frame_mut(Coord::new(x, y));
            for _ in 0..8 {
                // splitmix-ish scramble; deterministic per (seed, macro).
                state = state
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x243f_6a88_85a3_08d3);
                frame.set_bit((state % bits as u64) as usize, true);
            }
            frame.set_bit(bits - 1, (state >> 13) & 1 == 1);
        }
    }
    task
}

/// A memory pre-soiled with a patterned background task covering the whole
/// device, so region operations must overwrite stale content correctly.
fn soiled_memory(spec: ArchSpec, dev_w: u16, dev_h: u16, seed: u64) -> ConfigMemory {
    let device = Device::new(spec, dev_w, dev_h).expect("device");
    let mut memory = ConfigMemory::new(&device);
    let background = patterned_task(spec, dev_w, dev_h, seed ^ 0xdead_beef);
    memory
        .load_task(&background, Coord::new(0, 0))
        .expect("background load");
    memory
}

proptest! {
    #[test]
    fn load_task_matches_scalar(
        pick in 0u8..2,
        dev in 6u16..12,
        tw in 1u16..5,
        th in 1u16..5,
        ox in 0u16..8,
        oy in 0u16..8,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(ox + tw <= dev && oy + th <= dev);
        let spec = arch(pick);
        let task = patterned_task(spec, tw, th, seed);
        let mut word = soiled_memory(spec, dev, dev, seed);
        let mut scalar = word.clone();
        word.load_task(&task, Coord::new(ox, oy)).expect("word load");
        scalar
            .load_task_scalar(&task, Coord::new(ox, oy))
            .expect("scalar load");
        prop_assert_eq!(&word, &scalar);
        // Read-back round-trips the task verbatim.
        let back = word
            .read_region(Rect::new(Coord::new(ox, oy), tw, th))
            .expect("read back");
        prop_assert_eq!(back.diff_count(&task).expect("same shape"), 0);
    }

    #[test]
    fn clear_region_matches_scalar(
        pick in 0u8..2,
        dev in 6u16..12,
        rw in 1u16..6,
        rh in 1u16..6,
        ox in 0u16..8,
        oy in 0u16..8,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(ox + rw <= dev && oy + rh <= dev);
        let spec = arch(pick);
        let region = Rect::new(Coord::new(ox, oy), rw, rh);
        let mut word = soiled_memory(spec, dev, dev, seed);
        let mut scalar = word.clone();
        word.clear_region(region).expect("word clear");
        scalar.clear_region_scalar(region).expect("scalar clear");
        prop_assert_eq!(&word, &scalar);
        let back = word.read_region(region).expect("read back");
        prop_assert_eq!(back.popcount(), 0);
    }

    #[test]
    fn copy_and_move_region_match_scalar_even_overlapping(
        pick in 0u8..2,
        dev in 6u16..12,
        rw in 1u16..5,
        rh in 1u16..5,
        sx in 0u16..8,
        sy in 0u16..8,
        dx in 0u16..8,
        dy in 0u16..8,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(sx + rw <= dev && sy + rh <= dev);
        prop_assume!(dx + rw <= dev && dy + rh <= dev);
        let spec = arch(pick);
        let from = Rect::new(Coord::new(sx, sy), rw, rh);
        let to = Coord::new(dx, dy);

        let mut word = soiled_memory(spec, dev, dev, seed);
        let mut scalar = word.clone();
        word.copy_region(from, to).expect("word copy");
        scalar.copy_region_scalar(from, to).expect("scalar copy");
        prop_assert_eq!(&word, &scalar);

        let mut word = soiled_memory(spec, dev, dev, seed.rotate_left(17));
        let mut scalar = word.clone();
        word.move_region(from, to).expect("word move");
        scalar.move_region_scalar(from, to).expect("scalar move");
        prop_assert_eq!(&word, &scalar);
    }
}
