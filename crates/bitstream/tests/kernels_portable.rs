//! Forced-fallback coverage: `VBS_KERNELS=portable` must pin the process to
//! the portable backend even on a host whose feature detection would pick a
//! SIMD table. CI runs the whole bitstream suite under this variable; this
//! test makes the selection itself observable from inside one process by
//! setting the variable *before* the first `Kernels::active()` call (its own
//! integration-test binary, so the dispatch slot is untouched).

use vbs_bitstream::{crc32_words_scalar, Kernels};

#[test]
fn env_override_pins_the_portable_backend() {
    std::env::set_var("VBS_KERNELS", "portable");
    let k = Kernels::active();
    assert_eq!(k.name(), "portable");
    assert!(std::ptr::eq(k, Kernels::portable()));

    // The forced backend still computes the real answers.
    let words: Vec<u64> = (0..37u64)
        .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .collect();
    assert_eq!(
        k.popcount(&words),
        words.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    );
    assert_eq!(!k.crc32_words(!0, &words), crc32_words_scalar(&words));

    // The selection is per-process and sticky: clearing the variable does
    // not flip an already-resolved slot.
    std::env::remove_var("VBS_KERNELS");
    assert_eq!(Kernels::active().name(), "portable");
}
