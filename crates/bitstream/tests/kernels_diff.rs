//! Differential suite for the runtime-dispatched word kernels.
//!
//! Every backend [`vbs_bitstream::Kernels`] can select (the host-detected
//! SIMD table and the portable chunked-`u64` table) must be bit-identical to
//! the obvious scalar loops on *every* input shape: empty slices, sub-16-word
//! buffers that never reach the unrolled loops, ragged tails past the last
//! full vector, and misaligned offsets into a larger arena (the frame arena
//! hands kernels unaligned interior runs, never whole allocations). The CRC
//! kernel is additionally pinned against the retained byte-at-a-time oracle
//! [`vbs_bitstream::crc32_words_scalar`], which exercises the PCLMULQDQ
//! folding schedule on hosts that have it.

use proptest::prelude::*;
use vbs_bitstream::{crc32_words_scalar, Kernels};

/// Deterministic splitmix-style word stream.
fn words(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x243f_6a88_85a3_08d3);
            state ^ (state >> 31)
        })
        .collect()
}

/// The two real backends plus the scalar reference loops, run over the same
/// misaligned window of a larger buffer.
fn backends() -> [&'static Kernels; 2] {
    [Kernels::detected(), Kernels::portable()]
}

proptest! {
    // Lengths deliberately cross every code-path boundary: 0, sub-vector
    // (<4), sub-unroll (<16), and several full 64-byte CRC stripes (>=8).
    #[test]
    fn copy_and_fill_match_scalar_on_any_window(
        len in 0usize..200,
        off in 0usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let src = words(seed, off + len);
        let backdrop = words(seed ^ !0, off + len + 3);
        for k in backends() {
            let mut dst = backdrop.clone();
            k.copy(&mut dst[off..off + len], &src[off..]);
            // Scalar reference: an element loop on purpose, so the
            // expectation is computed by different code than any backend.
            let mut expect = backdrop.clone();
            #[allow(clippy::manual_memcpy)]
            for i in 0..len {
                expect[off + i] = src[off + i];
            }
            prop_assert_eq!(&dst, &expect, "copy diverged on {}", k.name());

            k.fill_zero(&mut dst[off..off + len]);
            for w in &mut expect[off..off + len] {
                *w = 0;
            }
            prop_assert_eq!(&dst, &expect, "fill_zero diverged on {}", k.name());
        }
    }

    #[test]
    fn or_and_popcounts_match_scalar_on_any_window(
        len in 0usize..200,
        off in 0usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let a = words(seed, off + len);
        let b = words(seed.rotate_left(21) | 1, off + len);
        let expect_or: Vec<u64> = a[off..].iter().zip(&b[off..]).map(|(x, y)| x | y).collect();
        let expect_diff: usize = a[off..]
            .iter()
            .zip(&b[off..])
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum();
        let expect_pop: usize = a[off..].iter().map(|w| w.count_ones() as usize).sum();
        for k in backends() {
            let mut dst = a.clone();
            k.or_into(&mut dst[off..], &b[off..]);
            prop_assert_eq!(&dst[off..], &expect_or[..], "or_into diverged on {}", k.name());
            prop_assert_eq!(
                k.xor_popcount(&a[off..], &b[off..]),
                expect_diff,
                "xor_popcount diverged on {}",
                k.name()
            );
            prop_assert_eq!(
                k.popcount(&a[off..]),
                expect_pop,
                "popcount diverged on {}",
                k.name()
            );
        }
    }

    #[test]
    fn crc_kernels_match_the_byte_oracle_on_any_window(
        len in 0usize..200,
        off in 0usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let buf = words(seed, off + len);
        let run = &buf[off..];
        let expect = crc32_words_scalar(run);
        for k in backends() {
            prop_assert_eq!(
                !k.crc32_words(!0, run),
                expect,
                "crc32_words diverged on {} at {} words",
                k.name(),
                len
            );
        }
    }

    // Streaming splits must land on the same digest as one shot — the scrub
    // path folds a frame run in stride-sized pieces.
    #[test]
    fn crc_kernels_compose_across_arbitrary_splits(
        len in 0usize..120,
        cut in 0usize..120,
        seed in 0u64..u64::MAX,
    ) {
        let buf = words(seed, len);
        let cut = cut.min(len);
        for k in backends() {
            let one_shot = k.crc32_words(!0, &buf);
            let split = k.crc32_words(k.crc32_words(!0, &buf[..cut]), &buf[cut..]);
            prop_assert_eq!(one_shot, split, "split fold diverged on {}", k.name());
        }
    }
}
