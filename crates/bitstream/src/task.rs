//! The raw bit-stream of one hardware task.

use crate::error::BitstreamError;
use crate::frame::{FrameMut, FrameRef};
use crate::store::FrameStore;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use vbs_arch::{ArchSpec, Coord};

/// The raw ("conventional") configuration bit-stream of a hardware task:
/// one frame for every macro of the task's `width` × `height` rectangle, in
/// row-major task-relative order, packed into a single contiguous
/// [`FrameStore`] word arena (no per-frame allocations).
///
/// Its size — the reference every compression ratio of the paper is measured
/// against — is `width · height · N_raw` bits regardless of how much of the
/// fabric the task actually uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskBitstream {
    width: u16,
    height: u16,
    store: FrameStore,
}

impl TaskBitstream {
    /// Creates an all-empty bit-stream for a `width` × `height` task.
    pub fn empty(spec: ArchSpec, width: u16, height: u16) -> Self {
        TaskBitstream {
            width,
            height,
            store: FrameStore::new(spec, width as usize * height as usize),
        }
    }

    /// Reshapes this bit-stream to an all-empty `width` × `height` task of
    /// `spec` **in place**, reusing the word arena wherever possible.
    ///
    /// This is the buffer-recycling primitive of the zero-allocation decode
    /// path: because the frames live in one flat arena, a pooled
    /// `TaskBitstream` checked out for a new task pays no heap traffic as
    /// long as the new shape's word count fits the arena's capacity — even
    /// when the task mix cycles through different shapes and architectures.
    pub fn reset(&mut self, spec: ArchSpec, width: u16, height: u16) {
        self.width = width;
        self.height = height;
        self.store.reset(spec, width as usize * height as usize);
    }

    /// The architecture of the target fabric.
    pub const fn spec(&self) -> &ArchSpec {
        self.store.spec()
    }

    /// Task width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Task height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Number of macros covered by the task rectangle.
    pub fn macro_count(&self) -> usize {
        self.store.len()
    }

    /// The flat word arena holding the frames (row-major).
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// Mutable access to the word arena — the bulk-copy entry point of the
    /// word-level region operations.
    pub fn store_mut(&mut self) -> &mut FrameStore {
        &mut self.store
    }

    /// Size of the raw bit-stream in bits: `width · height · N_raw`.
    pub fn size_bits(&self) -> u64 {
        self.store.len() as u64 * self.spec().raw_bits_per_macro() as u64
    }

    /// Resident memory of the decoded word arena, in bytes. This is what a
    /// decoded cache entry actually holds, as opposed to [`Self::size_bits`]
    /// which counts the logical frame bits.
    pub fn size_bytes(&self) -> u64 {
        self.store.words().len() as u64 * 8
    }

    /// The frame of the macro at task-relative coordinates `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the task rectangle; use
    /// [`TaskBitstream::try_frame`] for untrusted coordinates.
    pub fn frame(&self, at: Coord) -> FrameRef<'_> {
        self.store.frame(self.index(at))
    }

    /// Fallible access to a frame.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::OutOfTask`] when `at` is outside the task.
    pub fn try_frame(&self, at: Coord) -> Result<FrameRef<'_>, BitstreamError> {
        if at.x < self.width && at.y < self.height {
            Ok(self
                .store
                .frame(at.y as usize * self.width as usize + at.x as usize))
        } else {
            Err(BitstreamError::OutOfTask { at })
        }
    }

    /// Mutable access to the frame at task-relative coordinates `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the task rectangle.
    pub fn frame_mut(&mut self, at: Coord) -> FrameMut<'_> {
        let idx = self.index(at);
        self.store.frame_mut(idx)
    }

    /// Iterates over `(task-relative coordinate, frame)` pairs, row-major.
    pub fn iter_frames(&self) -> impl Iterator<Item = (Coord, FrameRef<'_>)> {
        let w = self.width;
        self.store.iter().enumerate().map(move |(i, f)| {
            (
                Coord::new((i % w as usize) as u16, (i / w as usize) as u16),
                f,
            )
        })
    }

    /// Merges another bit-stream of the same shape into this one by OR-ing
    /// the two word arenas — the conflict-free combine step of the parallel
    /// de-virtualizer, where each partial image holds disjoint non-empty
    /// frames. One pass over contiguous words, no per-frame dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::LayoutMismatch`] when the shapes or
    /// architectures differ.
    pub fn merge_disjoint(&mut self, other: &TaskBitstream) -> Result<(), BitstreamError> {
        if self.spec() != other.spec() || self.width != other.width || self.height != other.height {
            return Err(BitstreamError::LayoutMismatch);
        }
        crate::Kernels::active().or_into(self.store.words_mut(), other.store.words());
        Ok(())
    }

    /// Number of macros whose frame is not entirely zero.
    pub fn occupied_macros(&self) -> usize {
        self.store.iter().filter(|f| !f.is_empty()).count()
    }

    /// Total number of configured (set) bits over the whole task.
    pub fn popcount(&self) -> usize {
        self.store.popcount()
    }

    /// Number of differing bits with another bit-stream of the same shape —
    /// a single XOR-popcount sweep over the two arenas.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::LayoutMismatch`] when the shapes or
    /// architectures differ.
    pub fn diff_count(&self, other: &TaskBitstream) -> Result<usize, BitstreamError> {
        if self.spec() != other.spec() || self.width != other.width || self.height != other.height {
            return Err(BitstreamError::LayoutMismatch);
        }
        Ok(crate::Kernels::active().xor_popcount(self.store.words(), other.store.words()))
    }

    /// Serializes the bit-stream to bytes (frames concatenated LSB-first,
    /// each frame padded to a whole byte).
    pub fn to_bytes(&self) -> Bytes {
        let frame_bytes = self.spec().raw_bits_per_macro().div_ceil(8);
        let mut buf = BytesMut::with_capacity(self.store.len() * frame_bytes);
        for frame in self.store.iter() {
            let mut byte = 0u8;
            for i in 0..frame.len() {
                if frame.bit(i) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if frame.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
        buf.freeze()
    }

    /// Rebuilds a bit-stream from bytes produced by [`TaskBitstream::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Truncated`] when the byte count does not
    /// match the expected shape.
    pub fn from_bytes(
        spec: ArchSpec,
        width: u16,
        height: u16,
        bytes: &[u8],
    ) -> Result<Self, BitstreamError> {
        let frame_bytes = spec.raw_bits_per_macro().div_ceil(8);
        let expected = frame_bytes * width as usize * height as usize;
        if bytes.len() != expected {
            return Err(BitstreamError::Truncated {
                expected,
                found: bytes.len(),
            });
        }
        let mut task = TaskBitstream::empty(spec, width, height);
        for (frame_idx, chunk) in bytes.chunks(frame_bytes).enumerate() {
            let mut frame = task.store.frame_mut(frame_idx);
            for i in 0..frame.len() {
                let bit = (chunk[i / 8] >> (i % 8)) & 1 == 1;
                frame.set_bit(i, bit);
            }
        }
        Ok(task)
    }

    fn index(&self, at: Coord) -> usize {
        assert!(
            at.x < self.width && at.y < self.height,
            "coordinate {at} outside task {}x{}",
            self.width,
            self.height
        );
        at.y as usize * self.width as usize + at.x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::SbPair;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn size_matches_the_rectangle() {
        let t = TaskBitstream::empty(spec(), 4, 3);
        assert_eq!(t.size_bits(), 12 * 284);
        assert_eq!(t.macro_count(), 12);
        assert_eq!(t.occupied_macros(), 0);
    }

    #[test]
    fn frame_access_and_bounds() {
        let mut t = TaskBitstream::empty(spec(), 4, 3);
        t.frame_mut(Coord::new(2, 1))
            .set_sb(0, SbPair::EastWest, true);
        assert!(t.frame(Coord::new(2, 1)).sb(0, SbPair::EastWest));
        assert_eq!(t.occupied_macros(), 1);
        assert_eq!(t.popcount(), 1);
        assert!(matches!(
            t.try_frame(Coord::new(4, 0)),
            Err(BitstreamError::OutOfTask { .. })
        ));
    }

    #[test]
    fn byte_roundtrip_preserves_every_bit() {
        let mut t = TaskBitstream::empty(spec(), 3, 2);
        t.frame_mut(Coord::new(0, 0)).set_crossing(3, 1, true);
        t.frame_mut(Coord::new(2, 1))
            .set_sb(4, SbPair::NorthWest, true);
        t.frame_mut(Coord::new(1, 0)).set_bit(283, true);
        let bytes = t.to_bytes();
        let back = TaskBitstream::from_bytes(spec(), 3, 2, &bytes).unwrap();
        assert_eq!(t.diff_count(&back).unwrap(), 0);
        assert_eq!(back.popcount(), 3);
    }

    #[test]
    fn from_bytes_rejects_wrong_length() {
        let t = TaskBitstream::empty(spec(), 2, 2);
        let bytes = t.to_bytes();
        assert!(matches!(
            TaskBitstream::from_bytes(spec(), 2, 3, &bytes),
            Err(BitstreamError::Truncated { .. })
        ));
    }

    #[test]
    fn diff_requires_same_shape() {
        let a = TaskBitstream::empty(spec(), 2, 2);
        let b = TaskBitstream::empty(spec(), 2, 3);
        assert!(matches!(
            a.diff_count(&b),
            Err(BitstreamError::LayoutMismatch)
        ));
    }

    #[test]
    fn reset_reshapes_in_place() {
        let mut t = TaskBitstream::empty(spec(), 4, 3);
        t.frame_mut(Coord::new(3, 2)).set_bit(7, true);
        // Same shape: just zeroed.
        t.reset(spec(), 4, 3);
        assert_eq!(t.popcount(), 0);
        assert_eq!(t.macro_count(), 12);
        // Shrink, then grow past the original shape.
        t.frame_mut(Coord::new(0, 0)).set_bit(1, true);
        t.reset(spec(), 2, 2);
        assert_eq!((t.width(), t.height()), (2, 2));
        assert_eq!(t.popcount(), 0);
        t.reset(spec(), 5, 4);
        assert_eq!(t.macro_count(), 20);
        assert_eq!(t.popcount(), 0);
        // Architecture change reshapes every frame.
        let other = vbs_arch::ArchSpec::paper_evaluation();
        t.reset(other, 2, 1);
        assert_eq!(t.spec(), &other);
        assert_eq!(t.frame(Coord::new(0, 0)).len(), other.raw_bits_per_macro());
        assert_eq!(t.popcount(), 0);
    }

    #[test]
    fn iter_frames_is_row_major() {
        let t = TaskBitstream::empty(spec(), 3, 2);
        let coords: Vec<Coord> = t.iter_frames().map(|(c, _)| c).collect();
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[3], Coord::new(0, 1));
        assert_eq!(coords.len(), 6);
    }

    #[test]
    fn merge_disjoint_ors_the_arenas() {
        let mut a = TaskBitstream::empty(spec(), 3, 2);
        let mut b = TaskBitstream::empty(spec(), 3, 2);
        a.frame_mut(Coord::new(0, 0)).set_bit(5, true);
        b.frame_mut(Coord::new(2, 1)).set_bit(283, true);
        a.merge_disjoint(&b).unwrap();
        assert!(a.frame(Coord::new(0, 0)).bit(5));
        assert!(a.frame(Coord::new(2, 1)).bit(283));
        assert_eq!(a.popcount(), 2);
        let c = TaskBitstream::empty(spec(), 2, 2);
        assert!(matches!(
            a.merge_disjoint(&c),
            Err(BitstreamError::LayoutMismatch)
        ));
    }
}
