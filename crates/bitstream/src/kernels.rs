//! Runtime-dispatched word-sweep kernels.
//!
//! Every hot loop of the frame arena funnels through this module: the bulk
//! copies and clears behind [`crate::FrameStore::copy_run_from`] /
//! [`crate::FrameStore::clear_run`], the XOR-popcount behind `diff_count`,
//! the OR sweep behind `merge_disjoint`, plain popcounts, and the CRC-32
//! word fold used by readback verify and the VBS stream footer. A
//! [`Kernels`] value is a table of function pointers for those six sweeps;
//! the table is selected **once** per process:
//!
//! * `VBS_KERNELS=portable` in the environment forces the portable backend
//!   (CI uses this to keep the fallback covered on AVX2 hosts);
//! * otherwise, on x86-64, `is_x86_feature_detected!` picks the AVX2
//!   backend — with a PCLMULQDQ-folded CRC when carry-less multiply and
//!   SSE4.1 are also present;
//! * everywhere else the portable chunked-`u64` backend runs.
//!
//! The portable backend is not a straw man: it is the same
//! `copy_from_slice` / `fill` / word-loop code the arena ran before dispatch
//! existed, and every SIMD path is proptest-pinned bit-identical against it
//! (`tests/kernels_diff.rs`). The byte-at-a-time CRC oracle stays in
//! [`crate::crc`] as `crc32_words_scalar`.
//!
//! # Safety
//!
//! This is the one module of the crate that contains `unsafe`: the
//! `#[target_feature]` intrinsics bodies, and the dereference of the
//! `AtomicPtr` dispatch slot (which only ever holds `&'static Kernels`).
//! Each backend's safe wrappers are installed into the table only after the
//! features they require were detected at runtime.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, Ordering};

/// A resolved backend: one function pointer per hot word sweep.
///
/// Obtain the process-wide selection with [`Kernels::active`], or a specific
/// backend with [`Kernels::portable`] / [`Kernels::detected`] (the
/// differential tests and the bench compare backends directly, bypassing the
/// global slot).
pub struct Kernels {
    name: &'static str,
    copy: fn(&mut [u64], &[u64]),
    fill_zero: fn(&mut [u64]),
    or_into: fn(&mut [u64], &[u64]),
    xor_popcount: fn(&[u64], &[u64]) -> usize,
    popcount: fn(&[u64]) -> usize,
    crc32_words: fn(u32, &[u64]) -> u32,
}

/// The process-wide dispatch slot. Null until first use; only ever stores
/// pointers derived from `&'static Kernels`.
static ACTIVE: AtomicPtr<Kernels> = AtomicPtr::new(std::ptr::null_mut());

impl Kernels {
    /// The backend every arena sweep dispatches through, selected on first
    /// call (environment override first, then feature detection).
    pub fn active() -> &'static Kernels {
        let p = ACTIVE.load(Ordering::Acquire);
        if p.is_null() {
            let selected = Self::select();
            ACTIVE.store(
                selected as *const Kernels as *mut Kernels,
                Ordering::Release,
            );
            selected
        } else {
            // SAFETY: ACTIVE only ever holds pointers cast from
            // `&'static Kernels` (here and in `force`).
            unsafe { &*p }
        }
    }

    /// Overrides the process-wide selection — a bench/test hook for
    /// comparing backends without re-execing with `VBS_KERNELS` set.
    pub fn force(kernels: &'static Kernels) {
        ACTIVE.store(kernels as *const Kernels as *mut Kernels, Ordering::Release);
    }

    fn select() -> &'static Kernels {
        if std::env::var("VBS_KERNELS").as_deref() == Ok("portable") {
            return Self::portable();
        }
        Self::detected()
    }

    /// The portable chunked-`u64` backend (the pre-dispatch scalar code).
    pub fn portable() -> &'static Kernels {
        &PORTABLE
    }

    /// The best backend the host supports, ignoring the environment
    /// override.
    pub fn detected() -> &'static Kernels {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                if std::arch::is_x86_feature_detected!("pclmulqdq")
                    && std::arch::is_x86_feature_detected!("sse4.1")
                {
                    return &x86::AVX2_PCLMUL;
                }
                return &x86::AVX2;
            }
        }
        &PORTABLE
    }

    /// The backend's name (`"portable"`, `"avx2"`, `"avx2+pclmul"`).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Copies `src` into `dst` (equal lengths required).
    pub fn copy(&self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "kernel copy length mismatch");
        (self.copy)(dst, src);
    }

    /// Zeroes every word of `words`.
    pub fn fill_zero(&self, words: &mut [u64]) {
        (self.fill_zero)(words);
    }

    /// ORs `src` into `dst` word-wise (equal lengths required).
    pub fn or_into(&self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "kernel or length mismatch");
        (self.or_into)(dst, src);
    }

    /// Number of bits where `a` and `b` differ (equal lengths required).
    pub fn xor_popcount(&self, a: &[u64], b: &[u64]) -> usize {
        assert_eq!(a.len(), b.len(), "kernel diff length mismatch");
        (self.xor_popcount)(a, b)
    }

    /// Number of set bits in `words`.
    pub fn popcount(&self, words: &[u64]) -> usize {
        (self.popcount)(words)
    }

    /// Folds `words` (little-endian byte order) into a raw CRC-32 state.
    ///
    /// `state` and the return value are the *internal* (inverted) CRC
    /// register — [`crate::Crc32`] owns the pre/post inversion.
    pub fn crc32_words(&self, state: u32, words: &[u64]) -> u32 {
        (self.crc32_words)(state, words)
    }
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish()
    }
}

static PORTABLE: Kernels = Kernels {
    name: "portable",
    copy: portable::copy,
    fill_zero: portable::fill_zero,
    or_into: portable::or_into,
    xor_popcount: portable::xor_popcount,
    popcount: portable::popcount,
    crc32_words: portable::crc32_words,
};

mod portable {
    use crate::crc;

    pub(super) fn copy(dst: &mut [u64], src: &[u64]) {
        dst.copy_from_slice(src);
    }

    pub(super) fn fill_zero(words: &mut [u64]) {
        words.fill(0);
    }

    pub(super) fn or_into(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= *s;
        }
    }

    pub(super) fn xor_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum()
    }

    pub(super) fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub(super) fn crc32_words(state: u32, words: &[u64]) -> u32 {
        crc::crc32_words_slice8(state, words)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Kernels;
    use crate::crc;
    use std::arch::x86_64::*;

    pub(super) static AVX2: Kernels = Kernels {
        name: "avx2",
        copy,
        fill_zero,
        or_into,
        xor_popcount,
        popcount,
        crc32_words: crc_slice8,
    };

    pub(super) static AVX2_PCLMUL: Kernels = Kernels {
        name: "avx2+pclmul",
        copy,
        fill_zero,
        or_into,
        xor_popcount,
        popcount,
        crc32_words: crc_pclmul,
    };

    // Safe wrappers: these are only ever installed into a `Kernels` table
    // that `detected()` returns after the required features tested present,
    // so the `#[target_feature]` bodies cannot execute on a host without
    // them.

    fn copy(dst: &mut [u64], src: &[u64]) {
        // SAFETY: AVX2 detected before this backend is selected.
        unsafe { copy_avx2(dst, src) }
    }

    fn fill_zero(words: &mut [u64]) {
        // SAFETY: AVX2 detected before this backend is selected.
        unsafe { fill_zero_avx2(words) }
    }

    fn or_into(dst: &mut [u64], src: &[u64]) {
        // SAFETY: AVX2 detected before this backend is selected.
        unsafe { or_into_avx2(dst, src) }
    }

    fn xor_popcount(a: &[u64], b: &[u64]) -> usize {
        // SAFETY: AVX2 + POPCNT detected before this backend is selected.
        unsafe { xor_popcount_avx2(a, b) }
    }

    fn popcount(words: &[u64]) -> usize {
        // SAFETY: AVX2 + POPCNT detected before this backend is selected.
        unsafe { popcount_avx2(words) }
    }

    fn crc_slice8(state: u32, words: &[u64]) -> u32 {
        crc::crc32_words_slice8(state, words)
    }

    fn crc_pclmul(state: u32, words: &[u64]) -> u32 {
        // SAFETY: PCLMULQDQ + SSE4.1 detected before this backend is
        // selected.
        unsafe { crc32_words_clmul(state, words) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn copy_avx2(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let a = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let b = _mm256_loadu_si256(s.add(i + 4) as *const __m256i);
            let c = _mm256_loadu_si256(s.add(i + 8) as *const __m256i);
            let e = _mm256_loadu_si256(s.add(i + 12) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, a);
            _mm256_storeu_si256(d.add(i + 4) as *mut __m256i, b);
            _mm256_storeu_si256(d.add(i + 8) as *mut __m256i, c);
            _mm256_storeu_si256(d.add(i + 12) as *mut __m256i, e);
            i += 16;
        }
        while i + 4 <= n {
            let a = _mm256_loadu_si256(s.add(i) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, a);
            i += 4;
        }
        if i < n {
            dst[i..].copy_from_slice(&src[i..]);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn fill_zero_avx2(words: &mut [u64]) {
        let n = words.len();
        let d = words.as_mut_ptr();
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            _mm256_storeu_si256(d.add(i) as *mut __m256i, zero);
            _mm256_storeu_si256(d.add(i + 4) as *mut __m256i, zero);
            _mm256_storeu_si256(d.add(i + 8) as *mut __m256i, zero);
            _mm256_storeu_si256(d.add(i + 12) as *mut __m256i, zero);
            i += 16;
        }
        while i + 4 <= n {
            _mm256_storeu_si256(d.add(i) as *mut __m256i, zero);
            i += 4;
        }
        if i < n {
            words[i..].fill(0);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn or_into_avx2(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_si256(d.add(i) as *const __m256i);
            let b = _mm256_loadu_si256(s.add(i) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_or_si256(a, b));
            i += 4;
        }
        while i < n {
            dst[i] |= src[i];
            i += 1;
        }
    }

    // The popcounts stay scalar loops *inside* a `#[target_feature]` body:
    // the baseline x86-64 target lacks POPCNT, so `count_ones` otherwise
    // compiles to the bit-twiddling fallback. With `popcnt` (and AVX2 for
    // the vectorizer) enabled the loop body becomes hardware popcounts.

    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> usize {
        let mut total = 0usize;
        for i in 0..a.len() {
            total += (a[i] ^ b[i]).count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn popcount_avx2(words: &[u64]) -> usize {
        let mut total = 0usize;
        for &w in words {
            total += w.count_ones() as usize;
        }
        total
    }

    // CRC-32 by PCLMULQDQ folding — the classic zlib/Intel "Fast CRC
    // Computation Using PCLMULQDQ" schedule for the reflected IEEE
    // polynomial: fold 64-byte stripes with (k1, k2), collapse to one
    // 128-bit accumulator and fold 16-byte blocks with (k3, k4), then
    // reduce 128 → 64 → 32 bits with k5 and a Barrett step. Word slices
    // on a little-endian target are exactly the byte stream the reflected
    // CRC consumes, so blocks load straight from the `u64` buffer.

    #[target_feature(enable = "pclmulqdq,sse4.1")]
    unsafe fn crc32_words_clmul(state: u32, words: &[u64]) -> u32 {
        // Fold an even-word prefix of at least 64 bytes; slice-by-8
        // finishes any tail (and handles short inputs entirely).
        let n2 = words.len() & !1;
        if n2 < 8 {
            return crc::crc32_words_slice8(state, words);
        }
        let p = words.as_ptr() as *const __m128i;
        let blocks = n2 / 2;
        let k1k2 = _mm_set_epi64x(0x0001_c6e4_1596, 0x0001_5444_2bd4);
        let k3k4 = _mm_set_epi64x(0x0000_ccaa_009e, 0x0001_7519_97d0);

        let mut x1 = _mm_loadu_si128(p);
        let mut x2 = _mm_loadu_si128(p.add(1));
        let mut x3 = _mm_loadu_si128(p.add(2));
        let mut x4 = _mm_loadu_si128(p.add(3));
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(state as i32));

        let mut i = 4;
        while i + 4 <= blocks {
            x1 = fold(x1, _mm_loadu_si128(p.add(i)), k1k2);
            x2 = fold(x2, _mm_loadu_si128(p.add(i + 1)), k1k2);
            x3 = fold(x3, _mm_loadu_si128(p.add(i + 2)), k1k2);
            x4 = fold(x4, _mm_loadu_si128(p.add(i + 3)), k1k2);
            i += 4;
        }
        x1 = fold(x1, x2, k3k4);
        x1 = fold(x1, x3, k3k4);
        x1 = fold(x1, x4, k3k4);
        while i < blocks {
            x1 = fold(x1, _mm_loadu_si128(p.add(i)), k3k4);
            i += 1;
        }

        // 128 → 64 bits.
        let mask = _mm_set_epi32(0, -1, 0, -1);
        let t = _mm_clmulepi64_si128(x1, k3k4, 0x10);
        x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), t);

        let k5 = _mm_set_epi64x(0, 0x0001_63cd_6124);
        let t = _mm_srli_si128(x1, 4);
        x1 = _mm_and_si128(x1, mask);
        x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
        x1 = _mm_xor_si128(x1, t);

        // Barrett reduction 64 → 32 bits.
        let poly = _mm_set_epi64x(0x0001_f701_1641, 0x0001_db71_0641);
        let mut t = _mm_and_si128(x1, mask);
        t = _mm_clmulepi64_si128(t, poly, 0x10);
        t = _mm_and_si128(t, mask);
        t = _mm_clmulepi64_si128(t, poly, 0x00);
        x1 = _mm_xor_si128(x1, t);

        let folded = _mm_extract_epi32(x1, 1) as u32;
        crc::crc32_words_slice8(folded, &words[n2..])
    }

    #[target_feature(enable = "pclmulqdq")]
    unsafe fn fold(acc: __m128i, data: __m128i, k: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(acc, k, 0x00);
        let hi = _mm_clmulepi64_si128(acc, k, 0x11);
        _mm_xor_si128(_mm_xor_si128(lo, hi), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_backend_matches_the_obvious_loops() {
        let k = Kernels::portable();
        assert_eq!(k.name(), "portable");
        let src = [1u64, 2, 3];
        let mut dst = [0u64; 3];
        k.copy(&mut dst, &src);
        assert_eq!(dst, src);
        k.or_into(&mut dst, &[4, 4, 4]);
        assert_eq!(dst, [5, 6, 7]);
        assert_eq!(k.xor_popcount(&dst, &src), 3);
        assert_eq!(k.popcount(&dst), 2 + 2 + 3);
        k.fill_zero(&mut dst);
        assert_eq!(dst, [0; 3]);
    }

    #[test]
    fn detected_backend_is_bit_identical_on_a_smoke_buffer() {
        let det = Kernels::detected();
        let port = Kernels::portable();
        let a: Vec<u64> = (0..997u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 7))
            .collect();
        let b: Vec<u64> = a
            .iter()
            .map(|w| w.rotate_left(13) ^ 0x0f0f_f0f0_00ff_ff00)
            .collect();
        let mut d1 = vec![0u64; a.len()];
        let mut d2 = vec![0u64; a.len()];
        det.copy(&mut d1, &a);
        port.copy(&mut d2, &a);
        assert_eq!(d1, d2);
        det.or_into(&mut d1, &b);
        port.or_into(&mut d2, &b);
        assert_eq!(d1, d2);
        assert_eq!(det.xor_popcount(&a, &b), port.xor_popcount(&a, &b));
        assert_eq!(det.popcount(&a), port.popcount(&a));
        assert_eq!(det.crc32_words(!0, &a), port.crc32_words(!0, &a));
        det.fill_zero(&mut d1);
        port.fill_zero(&mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn active_selection_is_sticky() {
        let first = Kernels::active();
        assert!(std::ptr::eq(first, Kernels::active()));
    }
}
