//! The configuration-memory layer of a whole device.
//!
//! The paper describes the configuration memory as "a single memory layer"
//! spread over the circuit (Section I). [`ConfigMemory`] models that layer:
//! one frame per macro of the device, into which the run-time controller
//! writes decoded tasks at their final position.

use crate::error::BitstreamError;
use crate::frame::MacroFrame;
use crate::task::TaskBitstream;
use serde::{Deserialize, Serialize};
use vbs_arch::{Coord, Device, Rect};

/// The configuration memory of a full device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigMemory {
    width: u16,
    height: u16,
    frames: Vec<MacroFrame>,
}

impl ConfigMemory {
    /// Creates a blank configuration memory for `device`.
    pub fn new(device: &Device) -> Self {
        ConfigMemory {
            width: device.width(),
            height: device.height(),
            frames: vec![MacroFrame::empty(*device.spec()); device.macro_count() as usize],
        }
    }

    /// Device width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Device height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// The frame of the macro at device-absolute coordinates `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device.
    pub fn frame(&self, at: Coord) -> &MacroFrame {
        &self.frames[self.index(at)]
    }

    /// Mutable access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device.
    pub fn frame_mut(&mut self, at: Coord) -> &mut MacroFrame {
        let idx = self.index(at);
        &mut self.frames[idx]
    }

    /// Writes a task bit-stream into the memory with its lower-left corner at
    /// `origin`.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the task sticks out of the
    /// device, or [`BitstreamError::LayoutMismatch`] when the task targets a
    /// different architecture than this memory (frame writes reuse the
    /// in-place word buffers, so every frame must keep the device's layout).
    pub fn load_task(&mut self, task: &TaskBitstream, origin: Coord) -> Result<(), BitstreamError> {
        if task.spec() != self.frames[0].spec() {
            return Err(BitstreamError::LayoutMismatch);
        }
        if origin.x as u32 + task.width() as u32 > self.width as u32
            || origin.y as u32 + task.height() as u32 > self.height as u32
        {
            return Err(BitstreamError::DoesNotFit {
                origin,
                width: task.width(),
                height: task.height(),
            });
        }
        for (local, frame) in task.iter_frames() {
            let at = Coord::new(origin.x + local.x, origin.y + local.y);
            self.frame_mut(at).copy_from(frame);
        }
        Ok(())
    }

    /// Writes one frame at device-absolute coordinates `at`, overwriting
    /// whatever was configured there. This is the primitive the streaming
    /// load path uses to begin configuring a task before its whole stream is
    /// decoded; it performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device or `frame` belongs to a
    /// different architecture — streaming writers validate the whole target
    /// region (and share the device's architecture by construction) before
    /// the first frame is emitted.
    pub fn write_frame(&mut self, at: Coord, frame: &MacroFrame) {
        let slot = self.frame_mut(at);
        assert_eq!(
            slot.spec(),
            frame.spec(),
            "streamed frame targets a different architecture than this memory"
        );
        slot.copy_from(frame);
    }

    /// Clears every frame of a rectangular region (task removal).
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the region sticks out of
    /// the device.
    pub fn clear_region(&mut self, region: Rect) -> Result<(), BitstreamError> {
        if region.origin.x as u32 + region.width as u32 > self.width as u32
            || region.origin.y as u32 + region.height as u32 > self.height as u32
        {
            return Err(BitstreamError::DoesNotFit {
                origin: region.origin,
                width: region.width,
                height: region.height,
            });
        }
        for at in region.iter() {
            self.frame_mut(at).clear();
        }
        Ok(())
    }

    /// Extracts the frames of a region as a task bit-stream (read-back).
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the region sticks out of
    /// the device.
    pub fn read_region(&self, region: Rect) -> Result<TaskBitstream, BitstreamError> {
        if region.origin.x as u32 + region.width as u32 > self.width as u32
            || region.origin.y as u32 + region.height as u32 > self.height as u32
        {
            return Err(BitstreamError::DoesNotFit {
                origin: region.origin,
                width: region.width,
                height: region.height,
            });
        }
        let spec = *self.frames[0].spec();
        let mut task = TaskBitstream::empty(spec, region.width, region.height);
        for at in region.iter() {
            let local = Coord::new(at.x - region.origin.x, at.y - region.origin.y);
            *task.frame_mut(local) = self.frame(at).clone();
        }
        Ok(task)
    }

    /// Number of macros whose frame holds at least one set bit.
    pub fn occupied_macros(&self) -> usize {
        self.frames.iter().filter(|f| !f.is_empty()).count()
    }

    fn index(&self, at: Coord) -> usize {
        assert!(
            at.x < self.width && at.y < self.height,
            "coordinate {at} outside device {}x{}",
            self.width,
            self.height
        );
        at.y as usize * self.width as usize + at.x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, SbPair};

    fn memory() -> ConfigMemory {
        let device = Device::new(ArchSpec::paper_example(), 10, 10).unwrap();
        ConfigMemory::new(&device)
    }

    fn small_task() -> TaskBitstream {
        let mut t = TaskBitstream::empty(ArchSpec::paper_example(), 3, 2);
        t.frame_mut(Coord::new(1, 1))
            .set_sb(2, SbPair::EastWest, true);
        t.frame_mut(Coord::new(0, 0)).set_crossing(0, 0, true);
        t
    }

    #[test]
    fn load_read_roundtrip_at_offset() {
        let mut mem = memory();
        let task = small_task();
        mem.load_task(&task, Coord::new(4, 7)).unwrap();
        assert!(mem.frame(Coord::new(5, 8)).sb(2, SbPair::EastWest));
        let back = mem.read_region(Rect::new(Coord::new(4, 7), 3, 2)).unwrap();
        assert_eq!(back.diff_count(&task).unwrap(), 0);
        assert_eq!(mem.occupied_macros(), 2);
    }

    #[test]
    fn load_rejects_out_of_bounds() {
        let mut mem = memory();
        let task = small_task();
        assert!(matches!(
            mem.load_task(&task, Coord::new(9, 9)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn load_rejects_foreign_architectures() {
        // Frame writes reuse in-place buffers, so a stream for another
        // architecture must be refused up front (not silently adopted).
        let mut mem = memory();
        let foreign = TaskBitstream::empty(ArchSpec::paper_evaluation(), 2, 2);
        assert!(matches!(
            mem.load_task(&foreign, Coord::new(0, 0)),
            Err(BitstreamError::LayoutMismatch)
        ));
        assert_eq!(mem.occupied_macros(), 0);
    }

    #[test]
    fn clear_region_erases_frames() {
        let mut mem = memory();
        mem.load_task(&small_task(), Coord::new(0, 0)).unwrap();
        assert!(mem.occupied_macros() > 0);
        mem.clear_region(Rect::new(Coord::new(0, 0), 3, 2)).unwrap();
        assert_eq!(mem.occupied_macros(), 0);
        assert!(matches!(
            mem.clear_region(Rect::new(Coord::new(8, 8), 5, 5)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
    }
}
