//! The configuration-memory layer of a whole device.
//!
//! The paper describes the configuration memory as "a single memory layer"
//! spread over the circuit (Section I). [`ConfigMemory`] models that layer:
//! one frame per macro of the device — stored in a single flat
//! [`FrameStore`] word arena — into which the run-time controller writes
//! decoded tasks at their final position.
//!
//! Because frames are packed row-major with a fixed stride, every region
//! operation decomposes into one contiguous word run per fabric row:
//! [`ConfigMemory::load_task`] is a `copy_from_slice` per row,
//! [`ConfigMemory::clear_region`] a `fill(0)` per row, and
//! [`ConfigMemory::copy_region`] / [`ConfigMemory::move_region`] (run-time
//! relocation and compaction) are overlap-safe `copy_within` sweeps. Each
//! word-level operation keeps a scalar per-bit twin (`*_scalar`) as the
//! reference implementation the differential test suite checks against.

use crate::error::BitstreamError;
use crate::frame::{FrameMut, FrameRef};
use crate::store::FrameStore;
use crate::task::TaskBitstream;
use serde::{Deserialize, Serialize};
use vbs_arch::{Coord, Device, Rect};

/// The configuration memory of a full device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigMemory {
    width: u16,
    height: u16,
    store: FrameStore,
}

impl ConfigMemory {
    /// Creates a blank configuration memory for `device`.
    pub fn new(device: &Device) -> Self {
        ConfigMemory {
            width: device.width(),
            height: device.height(),
            store: FrameStore::new(*device.spec(), device.macro_count() as usize),
        }
    }

    /// Device width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Device height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// The flat word arena holding the device's frames (row-major).
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// The frame of the macro at device-absolute coordinates `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device.
    pub fn frame(&self, at: Coord) -> FrameRef<'_> {
        self.store.frame(self.index(at))
    }

    /// Mutable access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device.
    pub fn frame_mut(&mut self, at: Coord) -> FrameMut<'_> {
        let idx = self.index(at);
        self.store.frame_mut(idx)
    }

    /// Writes a task bit-stream into the memory with its lower-left corner at
    /// `origin` — one contiguous word copy per task row.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the task sticks out of the
    /// device, or [`BitstreamError::LayoutMismatch`] when the task targets a
    /// different architecture than this memory (word strides would disagree).
    pub fn load_task(&mut self, task: &TaskBitstream, origin: Coord) -> Result<(), BitstreamError> {
        self.check_load(task, origin)?;
        let (tw, th) = (task.width() as usize, task.height() as usize);
        let dev_w = self.width as usize;
        for row in 0..th {
            let dst = (origin.y as usize + row) * dev_w + origin.x as usize;
            self.store.copy_run_from(dst, task.store(), row * tw, tw)?;
        }
        Ok(())
    }

    /// Scalar reference twin of [`ConfigMemory::load_task`]: copies the task
    /// bit by bit through the frame views. Kept (and exercised by the
    /// differential suite) to pin the word-level fast path to a layout-blind
    /// implementation.
    ///
    /// # Errors
    ///
    /// As [`ConfigMemory::load_task`].
    pub fn load_task_scalar(
        &mut self,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), BitstreamError> {
        self.check_load(task, origin)?;
        for (local, frame) in task.iter_frames() {
            let at = Coord::new(origin.x + local.x, origin.y + local.y);
            let mut slot = self.frame_mut(at);
            for i in 0..frame.len() {
                slot.set_bit(i, frame.bit(i));
            }
        }
        Ok(())
    }

    /// Writes one frame at device-absolute coordinates `at`, overwriting
    /// whatever was configured there — a single stride-wide word copy. This
    /// is the primitive the streaming load path uses to begin configuring a
    /// task before its whole stream is decoded; it performs no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the device or `frame` belongs to a
    /// different architecture — streaming writers validate the whole target
    /// region (and share the device's architecture by construction) before
    /// the first frame is emitted.
    pub fn write_frame(&mut self, at: Coord, frame: FrameRef<'_>) {
        assert_eq!(
            self.store.spec(),
            frame.spec(),
            "streamed frame targets a different architecture than this memory"
        );
        let idx = self.index(at);
        self.store.frame_mut(idx).copy_from(frame);
    }

    /// Clears every frame of a rectangular region (task removal) — one
    /// `fill(0)` per fabric row.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the region sticks out of
    /// the device.
    pub fn clear_region(&mut self, region: Rect) -> Result<(), BitstreamError> {
        self.check_region(region)?;
        let dev_w = self.width as usize;
        let (rw, rh) = (region.width as usize, region.height as usize);
        for row in 0..rh {
            let start = (region.origin.y as usize + row) * dev_w + region.origin.x as usize;
            self.store.clear_run(start, rw)?;
        }
        Ok(())
    }

    /// Scalar reference twin of [`ConfigMemory::clear_region`] (per-bit
    /// clears through the frame views), kept for the differential suite.
    ///
    /// # Errors
    ///
    /// As [`ConfigMemory::clear_region`].
    pub fn clear_region_scalar(&mut self, region: Rect) -> Result<(), BitstreamError> {
        self.check_region(region)?;
        for at in region.iter() {
            let mut frame = self.frame_mut(at);
            for i in 0..frame.len() {
                frame.set_bit(i, false);
            }
        }
        Ok(())
    }

    /// Copies the frames of region `from` so their lower-left corner lands
    /// on `to`, as if staged through a buffer (the source may overlap the
    /// destination) — the bulk primitive behind run-time relocation and
    /// compaction sweeps. Word-level: one overlap-safe `copy_within` per
    /// row, with the row order chosen so no source row is overwritten
    /// before it is copied.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when either rectangle sticks
    /// out of the device.
    pub fn copy_region(&mut self, from: Rect, to: Coord) -> Result<(), BitstreamError> {
        self.check_region(from)?;
        self.check_region(Rect::new(to, from.width, from.height))?;
        let dev_w = self.width as usize;
        let (rw, rh) = (from.width as usize, from.height as usize);
        let row_run =
            |origin: Coord, row: usize| (origin.y as usize + row) * dev_w + origin.x as usize;
        // Rows are copied in an order that never clobbers a still-pending
        // source row: moving up processes top rows first, moving down
        // bottom rows first. Within one row `copy_within` is memmove-safe.
        let upward = to.y > from.origin.y;
        for r in 0..rh {
            let row = if upward { rh - 1 - r } else { r };
            let src = row_run(from.origin, row);
            let dst = row_run(to, row);
            self.store.copy_run_within(src, dst, rw);
        }
        Ok(())
    }

    /// Scalar reference twin of [`ConfigMemory::copy_region`]: stages the
    /// region through an allocated buffer and writes it back bit by bit.
    ///
    /// # Errors
    ///
    /// As [`ConfigMemory::copy_region`].
    pub fn copy_region_scalar(&mut self, from: Rect, to: Coord) -> Result<(), BitstreamError> {
        let staged = self.read_region(from)?;
        self.load_task_scalar(&staged, to)
    }

    /// Relocates region `from` to `to`: copies the frames
    /// ([`ConfigMemory::copy_region`]) and clears the part of `from` the
    /// destination does not cover, so the task ends up at `to` and nothing
    /// is left behind. Handles any overlap between the two rectangles.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when either rectangle sticks
    /// out of the device.
    pub fn move_region(&mut self, from: Rect, to: Coord) -> Result<(), BitstreamError> {
        self.check_region(from)?;
        self.check_region(Rect::new(to, from.width, from.height))?;
        if to == from.origin {
            return Ok(());
        }
        self.copy_region(from, to)?;
        // Clear the vacated cells: every row segment of `from` outside the
        // destination rectangle, as up to two word runs per row.
        let dest = Rect::new(to, from.width, from.height);
        let dev_w = self.width as usize;
        for row in 0..from.height {
            let y = from.origin.y + row;
            let (x0, x1) = (from.origin.x, from.origin.x + from.width); // [x0, x1)
            let covered = if y >= dest.origin.y && y < dest.origin.y + dest.height {
                let cx0 = x0.max(dest.origin.x);
                let cx1 = x1.min(dest.origin.x + dest.width);
                if cx0 < cx1 {
                    Some((cx0, cx1))
                } else {
                    None
                }
            } else {
                None
            };
            let mut clear_span = |a: u16, b: u16| -> Result<(), BitstreamError> {
                if a < b {
                    let start = y as usize * dev_w + a as usize;
                    self.store.clear_run(start, (b - a) as usize)?;
                }
                Ok(())
            };
            match covered {
                Some((cx0, cx1)) => {
                    clear_span(x0, cx0)?;
                    clear_span(cx1, x1)?;
                }
                None => clear_span(x0, x1)?,
            }
        }
        Ok(())
    }

    /// Scalar reference twin of [`ConfigMemory::move_region`]: stages the
    /// region, clears the source per bit, then writes the staged copy back
    /// per bit.
    ///
    /// # Errors
    ///
    /// As [`ConfigMemory::move_region`].
    pub fn move_region_scalar(&mut self, from: Rect, to: Coord) -> Result<(), BitstreamError> {
        self.check_region(Rect::new(to, from.width, from.height))?;
        let staged = self.read_region(from)?;
        self.clear_region_scalar(from)?;
        self.load_task_scalar(&staged, to)
    }

    /// Extracts the frames of a region as a task bit-stream (read-back) —
    /// one contiguous word copy per row.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::DoesNotFit`] when the region sticks out of
    /// the device.
    pub fn read_region(&self, region: Rect) -> Result<TaskBitstream, BitstreamError> {
        self.check_region(region)?;
        let mut task = TaskBitstream::empty(*self.store.spec(), region.width, region.height);
        let dev_w = self.width as usize;
        let rw = region.width as usize;
        for row in 0..region.height as usize {
            let src = (region.origin.y as usize + row) * dev_w + region.origin.x as usize;
            task.store_mut()
                .copy_run_from(row * rw, &self.store, src, rw)?;
        }
        Ok(task)
    }

    /// Number of macros whose frame holds at least one set bit.
    pub fn occupied_macros(&self) -> usize {
        self.store.iter().filter(|f| !f.is_empty()).count()
    }

    fn check_load(&self, task: &TaskBitstream, origin: Coord) -> Result<(), BitstreamError> {
        if task.spec() != self.store.spec() {
            return Err(BitstreamError::LayoutMismatch);
        }
        if origin.x as u32 + task.width() as u32 > self.width as u32
            || origin.y as u32 + task.height() as u32 > self.height as u32
        {
            return Err(BitstreamError::DoesNotFit {
                origin,
                width: task.width(),
                height: task.height(),
            });
        }
        Ok(())
    }

    fn check_region(&self, region: Rect) -> Result<(), BitstreamError> {
        if region.origin.x as u32 + region.width as u32 > self.width as u32
            || region.origin.y as u32 + region.height as u32 > self.height as u32
        {
            return Err(BitstreamError::DoesNotFit {
                origin: region.origin,
                width: region.width,
                height: region.height,
            });
        }
        Ok(())
    }

    fn index(&self, at: Coord) -> usize {
        assert!(
            at.x < self.width && at.y < self.height,
            "coordinate {at} outside device {}x{}",
            self.width,
            self.height
        );
        at.y as usize * self.width as usize + at.x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, SbPair};

    fn memory() -> ConfigMemory {
        let device = Device::new(ArchSpec::paper_example(), 10, 10).unwrap();
        ConfigMemory::new(&device)
    }

    fn small_task() -> TaskBitstream {
        let mut t = TaskBitstream::empty(ArchSpec::paper_example(), 3, 2);
        t.frame_mut(Coord::new(1, 1))
            .set_sb(2, SbPair::EastWest, true);
        t.frame_mut(Coord::new(0, 0)).set_crossing(0, 0, true);
        t
    }

    #[test]
    fn load_read_roundtrip_at_offset() {
        let mut mem = memory();
        let task = small_task();
        mem.load_task(&task, Coord::new(4, 7)).unwrap();
        assert!(mem.frame(Coord::new(5, 8)).sb(2, SbPair::EastWest));
        let back = mem.read_region(Rect::new(Coord::new(4, 7), 3, 2)).unwrap();
        assert_eq!(back.diff_count(&task).unwrap(), 0);
        assert_eq!(mem.occupied_macros(), 2);
    }

    #[test]
    fn load_rejects_out_of_bounds() {
        let mut mem = memory();
        let task = small_task();
        assert!(matches!(
            mem.load_task(&task, Coord::new(9, 9)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn load_rejects_foreign_architectures() {
        // Word-level writes share the device's stride, so a stream for
        // another architecture must be refused up front (not silently
        // adopted).
        let mut mem = memory();
        let foreign = TaskBitstream::empty(ArchSpec::paper_evaluation(), 2, 2);
        assert!(matches!(
            mem.load_task(&foreign, Coord::new(0, 0)),
            Err(BitstreamError::LayoutMismatch)
        ));
        assert_eq!(mem.occupied_macros(), 0);
    }

    #[test]
    fn clear_region_erases_frames() {
        let mut mem = memory();
        mem.load_task(&small_task(), Coord::new(0, 0)).unwrap();
        assert!(mem.occupied_macros() > 0);
        mem.clear_region(Rect::new(Coord::new(0, 0), 3, 2)).unwrap();
        assert_eq!(mem.occupied_macros(), 0);
        assert!(matches!(
            mem.clear_region(Rect::new(Coord::new(8, 8), 5, 5)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn copy_region_handles_overlap_like_a_staged_copy() {
        for (dx, dy) in [(1i32, 0i32), (-1, 0), (0, 1), (0, -1), (2, 1), (1, -1)] {
            let mut word = memory();
            word.load_task(&small_task(), Coord::new(3, 3)).unwrap();
            let mut scalar = word.clone();
            let from = Rect::new(Coord::new(3, 3), 3, 2);
            let to = Coord::new((3 + dx) as u16, (3 + dy) as u16);
            word.copy_region(from, to).unwrap();
            scalar.copy_region_scalar(from, to).unwrap();
            assert_eq!(word, scalar, "copy_region diverged at shift ({dx},{dy})");
        }
    }

    #[test]
    fn move_region_relocates_and_vacates() {
        for (dx, dy) in [(1i32, 0i32), (-1, 0), (0, 1), (0, -1), (4, 4), (1, 1)] {
            let mut word = memory();
            word.load_task(&small_task(), Coord::new(3, 3)).unwrap();
            let mut scalar = word.clone();
            let from = Rect::new(Coord::new(3, 3), 3, 2);
            let to = Coord::new((3 + dx) as u16, (3 + dy) as u16);
            word.move_region(from, to).unwrap();
            scalar.move_region_scalar(from, to).unwrap();
            assert_eq!(word, scalar, "move_region diverged at shift ({dx},{dy})");
            // The task content survived verbatim at the destination.
            let back = word.read_region(Rect::new(to, 3, 2)).unwrap();
            assert_eq!(back.diff_count(&small_task()).unwrap(), 0);
        }
    }

    #[test]
    fn move_region_rejects_out_of_bounds_destinations() {
        let mut mem = memory();
        mem.load_task(&small_task(), Coord::new(0, 0)).unwrap();
        assert!(matches!(
            mem.move_region(Rect::new(Coord::new(0, 0), 3, 2), Coord::new(8, 9)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
        // A zero-shift move still validates its rectangle (the no-op early
        // return must not bypass the error contract).
        assert!(matches!(
            mem.move_region(Rect::new(Coord::new(8, 8), 5, 5), Coord::new(8, 8)),
            Err(BitstreamError::DoesNotFit { .. })
        ));
        // The failed move touched nothing.
        let back = mem.read_region(Rect::new(Coord::new(0, 0), 3, 2)).unwrap();
        assert_eq!(back.diff_count(&small_task()).unwrap(), 0);
    }
}
