//! The flat word arena backing every frame container.
//!
//! A [`FrameStore`] packs the configuration frames of many macros into **one
//! contiguous `Vec<u64>`** with a fixed per-frame stride derived from the
//! architecture (`stride = ⌈N_raw / 64⌉` words). Frame `i` occupies the word
//! range `i·stride .. (i+1)·stride`; containers that arrange frames
//! row-major (a task rectangle, a whole device) therefore see every *row* of
//! frames as one contiguous word run, which is what turns region operations
//! — task loads, clears, relocation copies — into `copy_from_slice` /
//! `fill` / `copy_within` loops instead of per-frame pointer chasing.
//!
//! Individual frames are borrowed out of the arena as [`FrameRef`] /
//! [`FrameMut`] views; no frame ever owns its own allocation.
//!
//! # Padding invariant
//!
//! `N_raw` is not a multiple of 64 in general, so the last word of each
//! frame has unused high bits. The store keeps them **zero at all times**:
//! bit writes are bounds-checked against `N_raw`, and whole-frame copies
//! only ever copy padding that is itself zero. Word-level comparisons
//! (`popcount`, `diff_count`, `is_empty`) rely on this invariant.

use crate::error::BitstreamError;
use crate::frame::{FrameMut, FrameRef};
use crate::kernels::Kernels;
use serde::{Deserialize, Serialize};
use vbs_arch::ArchSpec;

/// A contiguous word arena holding `len` fixed-stride configuration frames.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameStore {
    spec: ArchSpec,
    stride: usize,
    len: usize,
    words: Vec<u64>,
}

/// Words per frame for `spec`: `⌈N_raw / 64⌉`.
pub(crate) const fn stride_of(spec: &ArchSpec) -> usize {
    spec.raw_bits_per_macro().div_ceil(64)
}

impl FrameStore {
    /// Creates an all-zero store of `len` frames of `spec`.
    pub fn new(spec: ArchSpec, len: usize) -> Self {
        let stride = stride_of(&spec);
        FrameStore {
            spec,
            stride,
            len,
            words: vec![0; len * stride],
        }
    }

    /// Reshapes the store to `len` all-zero frames of `spec` **in place**.
    ///
    /// The word vector is resized, never shrunk below its capacity, so a
    /// store cycled through arbitrary shapes allocates only while the
    /// largest word count seen so far keeps growing — the zero-allocation
    /// guarantee buffer pools rely on, regardless of how the task mix
    /// cycles shapes.
    pub fn reset(&mut self, spec: ArchSpec, len: usize) {
        let stride = stride_of(&spec);
        let words = len * stride;
        self.spec = spec;
        self.stride = stride;
        self.len = len;
        // fill + resize instead of clear + resize: both zero every retained
        // word, but this form keeps the buffer initialized when shrinking.
        let keep = self.words.len().min(words);
        self.words[..keep].fill(0);
        self.words.resize(words, 0);
    }

    /// The architecture every frame of this store belongs to.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Words per frame.
    pub const fn stride(&self) -> usize {
        self.stride
    }

    /// Number of frames.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no frames at all.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows frame `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn frame(&self, index: usize) -> FrameRef<'_> {
        FrameRef::new(
            self.spec,
            &self.words[index * self.stride..(index + 1) * self.stride],
        )
    }

    /// Mutably borrows frame `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn frame_mut(&mut self, index: usize) -> FrameMut<'_> {
        let range = index * self.stride..(index + 1) * self.stride;
        FrameMut::new(self.spec, &mut self.words[range])
    }

    /// Iterates over the frames in arena order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = FrameRef<'_>> {
        self.words
            .chunks_exact(self.stride.max(1))
            .map(move |chunk| FrameRef::new(self.spec, chunk))
    }

    /// The whole arena as words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the whole arena.
    ///
    /// Callers must uphold the padding invariant (bits past `N_raw` of each
    /// frame stay zero); the word-level region operations of this crate do.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The contiguous word run of `count` frames starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len()`.
    pub fn run(&self, start: usize, count: usize) -> &[u64] {
        &self.words[start * self.stride..(start + count) * self.stride]
    }

    /// Mutable word run of `count` frames starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len()`.
    pub fn run_mut(&mut self, start: usize, count: usize) -> &mut [u64] {
        &mut self.words[start * self.stride..(start + count) * self.stride]
    }

    /// Checks that the run `start..start + count` lies inside this store.
    fn check_run(&self, start: usize, count: usize) -> Result<(), BitstreamError> {
        match start.checked_add(count) {
            Some(end) if end <= self.len => Ok(()),
            _ => Err(BitstreamError::RunOutOfBounds {
                start,
                count,
                frames: self.len,
            }),
        }
    }

    /// Copies `count` frames from `src`'s run starting at `src_start` into
    /// this store starting at `dst_start` — one bulk kernel sweep no matter
    /// how many frames are covered.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::LayoutMismatch`] when the two stores have different
    /// architectures (a mismatched copy would silently clip or smear frame
    /// boundaries); [`BitstreamError::RunOutOfBounds`] when either run falls
    /// outside its store.
    pub fn copy_run_from(
        &mut self,
        dst_start: usize,
        src: &FrameStore,
        src_start: usize,
        count: usize,
    ) -> Result<(), BitstreamError> {
        if self.spec != src.spec {
            return Err(BitstreamError::LayoutMismatch);
        }
        debug_assert_eq!(
            self.stride, src.stride,
            "equal specs must derive equal strides"
        );
        self.check_run(dst_start, count)?;
        src.check_run(src_start, count)?;
        let words = count * self.stride;
        let dst = dst_start * self.stride;
        Kernels::active().copy(
            &mut self.words[dst..dst + words],
            &src.words[src_start * self.stride..src_start * self.stride + words],
        );
        Ok(())
    }

    /// Copies `count` frames from `src_start` to `dst_start` within this
    /// store, with `memmove` semantics (overlap-safe). Disjoint runs take
    /// the dispatched bulk-copy kernel; overlapping runs fall back to
    /// `copy_within`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range runs.
    pub fn copy_run_within(&mut self, src_start: usize, dst_start: usize, count: usize) {
        let words = count * self.stride;
        let src = src_start * self.stride;
        let dst = dst_start * self.stride;
        assert!(src + words <= self.words.len() && dst + words <= self.words.len());
        if src == dst || words == 0 {
            return;
        }
        if src + words <= dst {
            let (lo, hi) = self.words.split_at_mut(dst);
            Kernels::active().copy(&mut hi[..words], &lo[src..src + words]);
        } else if dst + words <= src {
            let (lo, hi) = self.words.split_at_mut(src);
            Kernels::active().copy(&mut lo[dst..dst + words], &hi[..words]);
        } else {
            self.words.copy_within(src..src + words, dst);
        }
    }

    /// Zeroes `count` frames starting at `start` — one bulk kernel sweep.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::RunOutOfBounds`] when the run falls outside the
    /// store.
    pub fn clear_run(&mut self, start: usize, count: usize) -> Result<(), BitstreamError> {
        self.check_run(start, count)?;
        Kernels::active().fill_zero(self.run_mut(start, count));
        Ok(())
    }

    /// Number of set bits over the whole store.
    pub fn popcount(&self) -> usize {
        Kernels::active().popcount(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn layout_is_contiguous_with_fixed_stride() {
        let store = FrameStore::new(spec(), 6);
        assert_eq!(store.stride(), 284usize.div_ceil(64));
        assert_eq!(store.len(), 6);
        assert_eq!(store.words().len(), 6 * store.stride());
        assert_eq!(store.run(2, 3).len(), 3 * store.stride());
    }

    #[test]
    fn reset_reuses_capacity_across_shape_cycles() {
        let mut store = FrameStore::new(spec(), 12);
        store.frame_mut(7).set_bit(3, true);
        let capacity = store.words().len();
        store.reset(spec(), 4);
        assert_eq!(store.len(), 4);
        assert_eq!(store.popcount(), 0);
        store.reset(spec(), 12);
        assert_eq!(store.words().len(), capacity);
        assert_eq!(store.popcount(), 0);
        // Architecture change recomputes the stride.
        let other = ArchSpec::paper_evaluation();
        store.reset(other, 2);
        assert_eq!(store.stride(), other.raw_bits_per_macro().div_ceil(64));
        assert_eq!(store.frame(0).len(), other.raw_bits_per_macro());
    }

    #[test]
    fn run_copies_move_whole_frames() {
        let mut a = FrameStore::new(spec(), 4);
        a.frame_mut(0).set_bit(1, true);
        a.frame_mut(1).set_bit(283, true);
        let mut b = FrameStore::new(spec(), 4);
        b.copy_run_from(2, &a, 0, 2).unwrap();
        assert!(b.frame(2).bit(1));
        assert!(b.frame(3).bit(283));
        b.copy_run_within(2, 0, 2);
        assert!(b.frame(0).bit(1));
        assert_eq!(b.popcount(), 4);
        b.clear_run(0, 4).unwrap();
        assert_eq!(b.popcount(), 0);
    }

    #[test]
    fn mismatched_or_out_of_range_runs_are_typed_errors() {
        let mut a = FrameStore::new(spec(), 4);
        let other = FrameStore::new(ArchSpec::paper_evaluation(), 4);
        assert_eq!(
            a.copy_run_from(0, &other, 0, 2),
            Err(BitstreamError::LayoutMismatch)
        );
        let same = FrameStore::new(spec(), 4);
        assert_eq!(
            a.copy_run_from(3, &same, 0, 2),
            Err(BitstreamError::RunOutOfBounds {
                start: 3,
                count: 2,
                frames: 4
            })
        );
        assert_eq!(
            a.copy_run_from(0, &same, 4, 1),
            Err(BitstreamError::RunOutOfBounds {
                start: 4,
                count: 1,
                frames: 4
            })
        );
        assert_eq!(
            a.clear_run(2, usize::MAX),
            Err(BitstreamError::RunOutOfBounds {
                start: 2,
                count: usize::MAX,
                frames: 4
            })
        );
        // A failed copy leaves the destination untouched.
        assert_eq!(a.popcount(), 0);
    }
}
