//! The raw configuration frame of one macro.

use serde::{Deserialize, Serialize};
use vbs_arch::{ArchSpec, FrameLayout, SbPair};
use vbs_netlist::TruthTable;

/// The `N_raw`-bit configuration frame of a single macro.
///
/// Bits are addressed through [`FrameLayout`]; helpers are provided for the
/// three sections (logic block, switch box, connection boxes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacroFrame {
    spec: ArchSpec,
    bits: Vec<u64>,
}

impl MacroFrame {
    /// Creates an all-zero (fully unprogrammed) frame.
    pub fn empty(spec: ArchSpec) -> Self {
        let len = spec.raw_bits_per_macro();
        MacroFrame {
            spec,
            bits: vec![0; len.div_ceil(64)],
        }
    }

    /// The architecture this frame belongs to.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// The frame layout used to address bits.
    pub const fn layout(&self) -> FrameLayout {
        FrameLayout::new(self.spec)
    }

    /// Number of bits in the frame (`N_raw`).
    pub const fn len(&self) -> usize {
        self.spec.raw_bits_per_macro()
    }

    /// Whether every bit is zero (the macro is unprogrammed).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.len(), "frame bit {index} out of range");
        (self.bits[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.len(), "frame bit {index} out of range");
        let mask = 1u64 << (index % 64);
        if value {
            self.bits[index / 64] |= mask;
        } else {
            self.bits[index / 64] &= !mask;
        }
    }

    /// Number of bits currently set.
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes every bit in place, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Reshapes this frame to `spec` in place, reusing the word buffer when
    /// it is large enough. The frame is zeroed either way.
    pub fn reset_to(&mut self, spec: ArchSpec) {
        let words = spec.raw_bits_per_macro().div_ceil(64);
        self.spec = spec;
        self.bits.clear();
        self.bits.resize(words, 0);
    }

    /// Copies the contents of `other` into this frame without allocating
    /// when the two frames share an architecture (the hot path of
    /// configuration-memory writes).
    pub fn copy_from(&mut self, other: &MacroFrame) {
        if self.spec == other.spec {
            self.bits.copy_from_slice(&other.bits);
        } else {
            self.spec = other.spec;
            self.bits.clear();
            self.bits.extend_from_slice(&other.bits);
        }
    }

    /// Writes the logic-block section: LUT truth table plus flip-flop bypass.
    pub fn set_logic(&mut self, truth: &TruthTable, registered: bool) {
        let layout = self.layout();
        let table = truth.widen(self.spec.lut_size());
        for (i, bit) in table.iter().enumerate() {
            self.set_bit(layout.lut_table_range().start + i, bit);
        }
        self.set_bit(layout.ff_bypass_bit(), registered);
    }

    /// Reads the logic-block section back as `(truth table, registered)`.
    pub fn logic(&self) -> (TruthTable, bool) {
        let layout = self.layout();
        let k = self.spec.lut_size();
        let truth = TruthTable::from_bits(k, layout.lut_table_range().map(|i| self.bit(i)));
        (truth, self.bit(layout.ff_bypass_bit()))
    }

    /// Iterates over the raw logic-data bits (`N_LB` bits) in frame order,
    /// as stored in a VBS macro record.
    pub fn logic_bits(&self) -> impl Iterator<Item = bool> + '_ {
        self.layout().lb_config_range().map(|i| self.bit(i))
    }

    /// Writes the raw logic-data bits from an iterator (missing bits are left
    /// unchanged).
    pub fn set_logic_bits(&mut self, bits: impl IntoIterator<Item = bool>) {
        let range = self.layout().lb_config_range();
        for (i, bit) in range.zip(bits) {
            self.set_bit(i, bit);
        }
    }

    /// Sets (or clears) the switch-box pass switch at `track` between the two
    /// sides of `pair`.
    pub fn set_sb(&mut self, track: u16, pair: SbPair, value: bool) {
        let bit = self.layout().sb_bit(track, pair);
        self.set_bit(bit, value);
    }

    /// Reads a switch-box pass switch.
    pub fn sb(&self, track: u16, pair: SbPair) -> bool {
        self.bit(self.layout().sb_bit(track, pair))
    }

    /// Sets (or clears) the connection-box switch linking `pin` to `track` of
    /// its channel.
    pub fn set_crossing(&mut self, pin: u8, track: u16, value: bool) {
        let bit = self.layout().crossing_bit(pin, track);
        self.set_bit(bit, value);
    }

    /// Reads a connection-box switch.
    pub fn crossing(&self, pin: u8, track: u16) -> bool {
        self.bit(self.layout().crossing_bit(pin, track))
    }

    /// The bits of the routing sections only (switch box + connection boxes),
    /// used to compare decoded routing against the original.
    pub fn routing_bits(&self) -> Vec<bool> {
        let start = self.layout().lb_config_range().end;
        (start..self.len()).map(|i| self.bit(i)).collect()
    }

    /// Number of differing bits between two frames.
    ///
    /// # Panics
    ///
    /// Panics if the two frames have different architectures.
    pub fn diff_count(&self, other: &MacroFrame) -> usize {
        assert_eq!(
            self.spec, other.spec,
            "comparing frames of different layouts"
        );
        (0..self.len())
            .filter(|&i| self.bit(i) != other.bit(i))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn empty_frame_has_equation_1_bits_and_is_zero() {
        let f = MacroFrame::empty(spec());
        assert_eq!(f.len(), 284);
        assert!(f.is_empty());
        assert_eq!(f.popcount(), 0);
    }

    #[test]
    fn logic_roundtrip() {
        let mut f = MacroFrame::empty(spec());
        let t = TruthTable::from_fn(6, |i| i % 5 == 0);
        f.set_logic(&t, true);
        let (back, registered) = f.logic();
        assert_eq!(back, t);
        assert!(registered);
        assert!(!f.is_empty());
    }

    #[test]
    fn sb_and_crossing_bits_are_independent() {
        let mut f = MacroFrame::empty(spec());
        f.set_sb(2, SbPair::EastWest, true);
        f.set_crossing(6, 2, true);
        assert!(f.sb(2, SbPair::EastWest));
        assert!(f.crossing(6, 2));
        assert!(!f.sb(2, SbPair::NorthSouth));
        assert!(!f.crossing(6, 3));
        assert_eq!(f.popcount(), 2);
        f.set_sb(2, SbPair::EastWest, false);
        assert_eq!(f.popcount(), 1);
    }

    #[test]
    fn logic_bits_roundtrip_raw() {
        let mut a = MacroFrame::empty(spec());
        let t = TruthTable::from_fn(6, |i| i & 3 == 1);
        a.set_logic(&t, false);
        let mut b = MacroFrame::empty(spec());
        b.set_logic_bits(a.logic_bits());
        assert_eq!(a.logic(), b.logic());
        assert_eq!(a.diff_count(&b), 0);
    }

    #[test]
    fn diff_count_spots_changes() {
        let mut a = MacroFrame::empty(spec());
        let b = MacroFrame::empty(spec());
        a.set_crossing(0, 0, true);
        a.set_sb(4, SbPair::NorthEast, true);
        assert_eq!(a.diff_count(&b), 2);
    }

    #[test]
    fn clear_and_copy_from_reuse_the_allocation() {
        let mut a = MacroFrame::empty(spec());
        a.set_sb(1, SbPair::EastWest, true);
        a.set_crossing(2, 3, true);
        let mut b = MacroFrame::empty(spec());
        b.copy_from(&a);
        assert_eq!(a.diff_count(&b), 0);
        b.clear();
        assert!(b.is_empty());
        // Reshaping to another architecture still round-trips content.
        let other = ArchSpec::paper_evaluation();
        let mut c = MacroFrame::empty(other);
        c.set_bit(0, true);
        b.copy_from(&c);
        assert_eq!(b.spec(), &other);
        assert_eq!(b.diff_count(&c), 0);
        b.reset_to(spec());
        assert_eq!(b.len(), 284);
        assert!(b.is_empty());
    }

    #[test]
    fn routing_bits_exclude_logic() {
        let mut f = MacroFrame::empty(spec());
        f.set_logic(&TruthTable::from_fn(6, |_| true), true);
        assert!(f.routing_bits().iter().all(|&b| !b));
        f.set_sb(0, SbPair::NorthSouth, true);
        assert_eq!(f.routing_bits().iter().filter(|&&b| b).count(), 1);
    }
}
