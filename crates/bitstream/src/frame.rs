//! Borrowed frame views over a [`crate::FrameStore`] word arena.
//!
//! Historically every macro frame owned its own `Vec<u64>` (a `MacroFrame`
//! struct); the flat-arena refactor reduced frames to *views*: a
//! [`FrameRef`] / [`FrameMut`] borrows the `⌈N_raw / 64⌉`-word slice of one
//! macro inside a store and addresses its bits through the bit-exact
//! [`FrameLayout`]. Helpers are provided for the three frame sections
//! (logic block, switch box, connection boxes).

use vbs_arch::{ArchSpec, FrameLayout, SbPair};
use vbs_netlist::TruthTable;

/// A shared view of the `N_raw`-bit configuration frame of a single macro.
///
/// Cheap to copy (an architecture tag plus a word slice); all read accessors
/// live here. Obtain one from a frame container
/// ([`crate::TaskBitstream::frame`], [`crate::ConfigMemory::frame`],
/// [`crate::FrameStore::frame`]).
#[derive(Debug, Clone, Copy)]
pub struct FrameRef<'a> {
    spec: ArchSpec,
    words: &'a [u64],
}

impl<'a> FrameRef<'a> {
    /// Wraps the word slice of one frame. `words` must span exactly
    /// `⌈N_raw / 64⌉` words with zero padding bits past `N_raw`.
    pub(crate) fn new(spec: ArchSpec, words: &'a [u64]) -> Self {
        debug_assert_eq!(words.len(), crate::store::stride_of(&spec));
        FrameRef { spec, words }
    }

    /// The architecture this frame belongs to.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// The frame layout used to address bits.
    pub const fn layout(&self) -> FrameLayout {
        FrameLayout::new(self.spec)
    }

    /// Number of bits in the frame (`N_raw`).
    pub const fn len(&self) -> usize {
        self.spec.raw_bits_per_macro()
    }

    /// Whether every bit is zero (the macro is unprogrammed).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The frame's backing words (LSB-first, zero-padded past `N_raw`).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.len(), "frame bit {index} out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Number of bits currently set.
    pub fn popcount(&self) -> usize {
        crate::Kernels::active().popcount(self.words)
    }

    /// Reads the logic-block section back as `(truth table, registered)`.
    pub fn logic(&self) -> (TruthTable, bool) {
        let layout = self.layout();
        let k = self.spec.lut_size();
        let truth = TruthTable::from_bits(k, layout.lut_table_range().map(|i| self.bit(i)));
        (truth, self.bit(layout.ff_bypass_bit()))
    }

    /// Iterates over the raw logic-data bits (`N_LB` bits) in frame order,
    /// as stored in a VBS macro record.
    pub fn logic_bits(&self) -> impl Iterator<Item = bool> + 'a {
        let copy = *self;
        copy.layout().lb_config_range().map(move |i| copy.bit(i))
    }

    /// Reads a switch-box pass switch.
    pub fn sb(&self, track: u16, pair: SbPair) -> bool {
        self.bit(self.layout().sb_bit(track, pair))
    }

    /// Reads a connection-box switch.
    pub fn crossing(&self, pin: u8, track: u16) -> bool {
        self.bit(self.layout().crossing_bit(pin, track))
    }

    /// Iterates over the bits of the routing sections only (switch box +
    /// connection boxes), used to compare decoded routing against the
    /// original. Allocation-free: yields bits straight off the words.
    pub fn routing_bits(&self) -> impl Iterator<Item = bool> + 'a {
        let copy = *self;
        (copy.layout().lb_config_range().end..copy.len()).map(move |i| copy.bit(i))
    }

    /// CRC-32 of the frame's words (little-endian byte order). Padding bits
    /// past `N_raw` are zero by invariant, so equal frames always digest
    /// equal — this is the per-frame checksum the runtime's integrity
    /// sidecar records and the readback verify recomputes.
    pub fn crc32(&self) -> u32 {
        crate::crc::crc32_words(self.words)
    }

    /// Number of differing bits between two frames — a word-level XOR
    /// popcount (padding bits are zero on both sides by invariant).
    ///
    /// # Panics
    ///
    /// Panics if the two frames have different architectures.
    pub fn diff_count(&self, other: FrameRef<'_>) -> usize {
        assert_eq!(
            self.spec, other.spec,
            "comparing frames of different layouts"
        );
        crate::Kernels::active().xor_popcount(self.words, other.words)
    }
}

/// An exclusive view of one macro frame inside a [`crate::FrameStore`].
///
/// Adds the write accessors on top of everything [`FrameRef`] can read
/// (reads delegate through [`FrameMut::as_ref`]).
#[derive(Debug)]
pub struct FrameMut<'a> {
    spec: ArchSpec,
    words: &'a mut [u64],
}

impl<'a> FrameMut<'a> {
    /// Wraps the word slice of one frame (see [`FrameRef::new`]).
    pub(crate) fn new(spec: ArchSpec, words: &'a mut [u64]) -> Self {
        debug_assert_eq!(words.len(), crate::store::stride_of(&spec));
        FrameMut { spec, words }
    }

    /// Reborrows as a shared view.
    pub fn as_ref(&self) -> FrameRef<'_> {
        FrameRef {
            spec: self.spec,
            words: self.words,
        }
    }

    /// The architecture this frame belongs to.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// The frame layout used to address bits.
    pub const fn layout(&self) -> FrameLayout {
        FrameLayout::new(self.spec)
    }

    /// Number of bits in the frame (`N_raw`).
    pub const fn len(&self) -> usize {
        self.spec.raw_bits_per_macro()
    }

    /// Whether every bit is zero.
    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }

    /// Reads one bit (see [`FrameRef::bit`]).
    pub fn bit(&self, index: usize) -> bool {
        self.as_ref().bit(index)
    }

    /// Number of bits currently set.
    pub fn popcount(&self) -> usize {
        self.as_ref().popcount()
    }

    /// Reads a switch-box pass switch.
    pub fn sb(&self, track: u16, pair: SbPair) -> bool {
        self.as_ref().sb(track, pair)
    }

    /// Reads a connection-box switch.
    pub fn crossing(&self, pin: u8, track: u16) -> bool {
        self.as_ref().crossing(pin, track)
    }

    /// Reads the logic-block section back as `(truth table, registered)`.
    pub fn logic(&self) -> (TruthTable, bool) {
        self.as_ref().logic()
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` — which is also what keeps the padding
    /// bits of the last word permanently zero.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.len(), "frame bit {index} out of range");
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Zeroes every bit of the frame.
    pub fn clear(&mut self) {
        crate::Kernels::active().fill_zero(self.words);
    }

    /// Copies the contents of `other` into this frame — one word-level
    /// `copy_from_slice`, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the two frames belong to different architectures (their
    /// strides would disagree).
    pub fn copy_from(&mut self, other: FrameRef<'_>) {
        assert_eq!(
            self.spec,
            *other.spec(),
            "copying between frames of different layouts"
        );
        crate::Kernels::active().copy(self.words, other.words());
    }

    /// Writes the logic-block section: LUT truth table plus flip-flop bypass.
    pub fn set_logic(&mut self, truth: &TruthTable, registered: bool) {
        let layout = self.layout();
        let table = truth.widen(self.spec.lut_size());
        for (i, bit) in table.iter().enumerate() {
            self.set_bit(layout.lut_table_range().start + i, bit);
        }
        self.set_bit(layout.ff_bypass_bit(), registered);
    }

    /// Writes the raw logic-data bits from an iterator (missing bits are left
    /// unchanged).
    pub fn set_logic_bits(&mut self, bits: impl IntoIterator<Item = bool>) {
        let range = self.layout().lb_config_range();
        for (i, bit) in range.zip(bits) {
            self.set_bit(i, bit);
        }
    }

    /// Sets (or clears) the switch-box pass switch at `track` between the two
    /// sides of `pair`.
    pub fn set_sb(&mut self, track: u16, pair: SbPair, value: bool) {
        let bit = self.layout().sb_bit(track, pair);
        self.set_bit(bit, value);
    }

    /// Sets (or clears) the connection-box switch linking `pin` to `track` of
    /// its channel.
    pub fn set_crossing(&mut self, pin: u8, track: u16, value: bool) {
        let bit = self.layout().crossing_bit(pin, track);
        self.set_bit(bit, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FrameStore;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    fn store(frames: usize) -> FrameStore {
        FrameStore::new(spec(), frames)
    }

    #[test]
    fn empty_frame_has_equation_1_bits_and_is_zero() {
        let s = store(1);
        let f = s.frame(0);
        assert_eq!(f.len(), 284);
        assert!(f.is_empty());
        assert_eq!(f.popcount(), 0);
    }

    #[test]
    fn logic_roundtrip() {
        let mut s = store(1);
        let t = TruthTable::from_fn(6, |i| i % 5 == 0);
        s.frame_mut(0).set_logic(&t, true);
        let (back, registered) = s.frame(0).logic();
        assert_eq!(back, t);
        assert!(registered);
        assert!(!s.frame(0).is_empty());
    }

    #[test]
    fn sb_and_crossing_bits_are_independent() {
        let mut s = store(1);
        let mut f = s.frame_mut(0);
        f.set_sb(2, SbPair::EastWest, true);
        f.set_crossing(6, 2, true);
        assert!(f.sb(2, SbPair::EastWest));
        assert!(f.crossing(6, 2));
        assert!(!f.sb(2, SbPair::NorthSouth));
        assert!(!f.crossing(6, 3));
        assert_eq!(f.popcount(), 2);
        f.set_sb(2, SbPair::EastWest, false);
        assert_eq!(f.popcount(), 1);
    }

    #[test]
    fn logic_bits_roundtrip_raw() {
        let mut s = store(2);
        let t = TruthTable::from_fn(6, |i| i & 3 == 1);
        s.frame_mut(0).set_logic(&t, false);
        let bits: Vec<bool> = s.frame(0).logic_bits().collect();
        s.frame_mut(1).set_logic_bits(bits);
        assert_eq!(s.frame(0).logic(), s.frame(1).logic());
        assert_eq!(s.frame(0).diff_count(s.frame(1)), 0);
    }

    #[test]
    fn diff_count_spots_changes() {
        let mut s = store(2);
        let mut a = s.frame_mut(0);
        a.set_crossing(0, 0, true);
        a.set_sb(4, SbPair::NorthEast, true);
        assert_eq!(s.frame(0).diff_count(s.frame(1)), 2);
    }

    #[test]
    fn clear_and_copy_from_reuse_the_arena() {
        let mut s = store(2);
        let mut a = s.frame_mut(0);
        a.set_sb(1, SbPair::EastWest, true);
        a.set_crossing(2, 3, true);
        let sp = *s.spec();
        let src: Vec<u64> = s.frame(0).words().to_vec();
        s.frame_mut(1).copy_from(FrameRef::new(sp, &src));
        assert_eq!(s.frame(0).diff_count(s.frame(1)), 0);
        let mut b = s.frame_mut(1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn routing_bits_exclude_logic() {
        let mut s = store(1);
        s.frame_mut(0)
            .set_logic(&TruthTable::from_fn(6, |_| true), true);
        assert!(s.frame(0).routing_bits().all(|b| !b));
        s.frame_mut(0).set_sb(0, SbPair::NorthSouth, true);
        assert_eq!(s.frame(0).routing_bits().filter(|&b| b).count(), 1);
    }
}
