//! CRC-32 (IEEE 802.3) over bytes and frame words.
//!
//! One checksum primitive shared by the whole stack: the VBS binary format
//! appends it as a stream footer (format version 2), and the runtime's
//! integrity sidecar keeps one per configuration-memory frame so a readback
//! verify can detect corrupted writes. Verify moved onto the scrub path, so
//! throughput now matters: byte folding runs slice-by-8 (eight table
//! lookups per 64-bit chunk instead of one per byte), and word folding
//! dispatches through [`crate::Kernels`] — slice-by-8 portably, PCLMULQDQ
//! folding where the host has carry-less multiply. The original
//! byte-at-a-time loop is retained as [`crc32_scalar`] /
//! [`crc32_words_scalar`], the differential oracle every faster path is
//! pinned against.

use crate::kernels::Kernels;

/// Slice-by-8 lookup tables for the reflected IEEE polynomial
/// (`0xEDB88320`), generated at compile time. `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[k]` advances a byte `k` extra positions.
const TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// Folds one little-endian 64-bit chunk into the raw CRC state with eight
/// parallel table lookups.
#[inline]
fn fold_chunk(crc: u32, chunk: u64) -> u32 {
    let x = chunk ^ crc as u64;
    TABLES[7][(x & 0xff) as usize]
        ^ TABLES[6][((x >> 8) & 0xff) as usize]
        ^ TABLES[5][((x >> 16) & 0xff) as usize]
        ^ TABLES[4][((x >> 24) & 0xff) as usize]
        ^ TABLES[3][((x >> 32) & 0xff) as usize]
        ^ TABLES[2][((x >> 40) & 0xff) as usize]
        ^ TABLES[1][((x >> 48) & 0xff) as usize]
        ^ TABLES[0][((x >> 56) & 0xff) as usize]
}

#[inline]
fn fold_byte(crc: u32, byte: u8) -> u32 {
    (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xff) as usize]
}

/// Slice-by-8 fold of a byte slice into a raw (inverted) CRC state.
pub(crate) fn crc32_bytes_slice8(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // The try_into cannot fail on an exact 8-byte chunk.
        crc = fold_chunk(crc, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    for &byte in chunks.remainder() {
        crc = fold_byte(crc, byte);
    }
    crc
}

/// Slice-by-8 fold of a word slice (little-endian byte order) into a raw
/// (inverted) CRC state. This is the portable word kernel; the SIMD CRC
/// paths also use it for short inputs and ragged tails.
pub(crate) fn crc32_words_slice8(mut crc: u32, words: &[u64]) -> u32 {
    for &word in words {
        crc = fold_chunk(crc, word);
    }
    crc
}

/// A streaming CRC-32 accumulator (IEEE polynomial, reflected).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub const fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds a byte slice into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = crc32_bytes_slice8(self.state, bytes);
    }

    /// Folds a word slice in (little-endian byte order, so the digest is
    /// platform independent).
    pub fn update_words(&mut self, words: &[u64]) {
        self.state = Kernels::active().crc32_words(self.state, words);
    }

    /// The final checksum value.
    pub const fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// CRC-32 of a word slice (little-endian bytes) in one call.
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut crc = Crc32::new();
    crc.update_words(words);
    crc.finish()
}

/// CRC-32 of a byte slice by the original byte-at-a-time loop — the
/// differential oracle for the slice-by-8 and SIMD paths.
pub fn crc32_scalar(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = fold_byte(crc, byte);
    }
    !crc
}

/// CRC-32 of a word slice by the byte-at-a-time oracle.
pub fn crc32_words_scalar(words: &[u64]) -> u32 {
    let mut crc = !0u32;
    for &word in words {
        for byte in word.to_le_bytes() {
            crc = fold_byte(crc, byte);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(&[]), 0);
        assert_eq!(crc32_scalar(&[]), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut streaming = Crc32::new();
        streaming.update(&data[..100]);
        streaming.update(&data[100..]);
        assert_eq!(streaming.finish(), crc32(&data));
    }

    #[test]
    fn slice8_matches_the_byte_oracle_at_every_length() {
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(167).wrapping_add(13) & 0xff) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_scalar(&data[..len]),
                "slice-by-8 diverged at byte length {len}"
            );
        }
    }

    #[test]
    fn word_fold_matches_the_byte_oracle_at_every_length() {
        let words: Vec<u64> = (0..48u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 23))
            .collect();
        for len in 0..words.len() {
            assert_eq!(
                crc32_words(&words[..len]),
                crc32_words_scalar(&words[..len]),
                "word fold diverged at word length {len}"
            );
        }
    }

    #[test]
    fn words_digest_is_byte_order_defined() {
        let words = [0x0123_4567_89ab_cdefu64, 0xfeed_face_dead_beef];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = crc32(b"virtual bit-stream");
        for i in 0..8 {
            let mut mutated = b"virtual bit-stream".to_vec();
            mutated[3] ^= 1 << i;
            assert_ne!(crc32(&mutated), base, "bit {i} flip went undetected");
        }
    }
}
