//! CRC-32 (IEEE 802.3) over bytes and frame words.
//!
//! One checksum primitive shared by the whole stack: the VBS binary format
//! appends it as a stream footer (format version 2), and the runtime's
//! integrity sidecar keeps one per configuration-memory frame so a readback
//! verify can detect corrupted writes. The table is built at compile time;
//! checksumming is a plain byte loop — integrity checks are off the hot
//! path (verify is opt-in), so portability beats throughput here.

/// The 256-entry lookup table for the reflected IEEE polynomial
/// (`0xEDB88320`), generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 accumulator (IEEE polynomial, reflected).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub const fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds a byte slice into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &byte in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Folds a word slice in (little-endian byte order, so the digest is
    /// platform independent).
    pub fn update_words(&mut self, words: &[u64]) {
        for &word in words {
            self.update(&word.to_le_bytes());
        }
    }

    /// The final checksum value.
    pub const fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// CRC-32 of a word slice (little-endian bytes) in one call.
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut crc = Crc32::new();
    crc.update_words(words);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut streaming = Crc32::new();
        streaming.update(&data[..100]);
        streaming.update(&data[100..]);
        assert_eq!(streaming.finish(), crc32(&data));
    }

    #[test]
    fn words_digest_is_byte_order_defined() {
        let words = [0x0123_4567_89ab_cdefu64, 0xfeed_face_dead_beef];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = crc32(b"virtual bit-stream");
        for i in 0..8 {
            let mut mutated = b"virtual bit-stream".to_vec();
            mutated[3] ^= 1 << i;
            assert_ne!(crc32(&mutated), base, "bit {i} flip went undetected");
        }
    }
}
