//! Raw bit-stream generation from a placed-and-routed task.
//!
//! Every edge of every route tree is mapped to the programmable switch it
//! turns on:
//!
//! * a **pin ↔ wire** edge programs the connection-box crossing of that pin
//!   over the wire's track, in the macro owning the wire;
//! * a **wire ↔ wire** edge programs the pass switch of the switch box the
//!   two wires share, between the two sides they occupy there.
//!
//! The logic-block section of each frame is filled from the netlist block
//! placed at that site (LUT truth table + flip-flop bypass, pads left blank).

use crate::error::BitstreamError;
use crate::task::TaskBitstream;
use vbs_arch::{Coord, Device, SbPair};
use vbs_netlist::{BlockKind, Netlist};
use vbs_place::Placement;
use vbs_route::check::check_routing;
use vbs_route::{Routing, RrNode};

/// One programmable switch turned on by a routing edge, located in the frame
/// of the macro at `site` (device-absolute coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchSetting {
    /// Connection-box crossing of `pin` over `track`.
    Crossing {
        /// The macro whose frame holds the switch.
        site: Coord,
        /// The logic-block pin.
        pin: u8,
        /// The channel track.
        track: u16,
    },
    /// Switch-box pass switch at `track` between two sides.
    SwitchBox {
        /// The macro whose frame holds the switch.
        site: Coord,
        /// The channel track.
        track: u16,
        /// The pass-switch position.
        pair: SbPair,
    },
}

impl SwitchSetting {
    /// The macro whose frame holds this switch.
    pub fn site(&self) -> Coord {
        match self {
            SwitchSetting::Crossing { site, .. } | SwitchSetting::SwitchBox { site, .. } => *site,
        }
    }
}

/// Maps one routing edge to the switch it programs.
///
/// # Errors
///
/// Returns [`BitstreamError::UnmappableEdge`] when the two nodes are not
/// connected by any switch of the architecture (which indicates a corrupted
/// route tree).
pub fn edge_to_switch(
    device: &Device,
    a: RrNode,
    b: RrNode,
) -> Result<SwitchSetting, BitstreamError> {
    use vbs_route::RrNode::{Pin, Wire};
    match (a, b) {
        (Pin { site, pin }, Wire(w)) | (Wire(w), Pin { site, pin }) => {
            if w.reachable_from_pin(site, pin) {
                Ok(SwitchSetting::Crossing {
                    site,
                    pin,
                    track: w.track,
                })
            } else {
                Err(BitstreamError::UnmappableEdge {
                    edge: format!("{a} <-> {b}"),
                })
            }
        }
        (Wire(wa), Wire(wb)) => {
            use vbs_route::SwitchBoxView as _;
            match device.shared_switch_box(wa, wb) {
                Some((sb, side_a, side_b)) => {
                    let pair = SbPair::between(side_a, side_b).ok_or_else(|| {
                        BitstreamError::UnmappableEdge {
                            edge: format!("{a} <-> {b}"),
                        }
                    })?;
                    Ok(SwitchSetting::SwitchBox {
                        site: sb,
                        track: wa.track,
                        pair,
                    })
                }
                None => Err(BitstreamError::UnmappableEdge {
                    edge: format!("{a} <-> {b}"),
                }),
            }
        }
        _ => Err(BitstreamError::UnmappableEdge {
            edge: format!("{a} <-> {b}"),
        }),
    }
}

/// Enumerates every switch programmed by a routing, net by net.
///
/// # Errors
///
/// Propagates [`BitstreamError::UnmappableEdge`] for corrupted route trees.
pub fn configured_switches(
    device: &Device,
    routing: &Routing,
) -> Result<Vec<SwitchSetting>, BitstreamError> {
    let mut switches = Vec::new();
    for (_, tree) in routing.iter_trees() {
        for (parent, child) in tree.iter_edges() {
            switches.push(edge_to_switch(device, parent, child)?);
        }
    }
    Ok(switches)
}

/// Generates the raw bit-stream of a placed-and-routed hardware task.
///
/// The task rectangle is the placement's region; frames are indexed by
/// task-relative coordinates (the region origin maps to frame `(0, 0)`),
/// which is what makes the raw bit-stream comparable with the relocatable
/// Virtual Bit-Stream.
///
/// The routing is first re-validated with [`check_routing`] in debug builds.
///
/// # Errors
///
/// Returns [`BitstreamError::UnmappableEdge`] if a route tree contains an
/// edge the fabric cannot realize, or [`BitstreamError::OutOfTask`] if the
/// routing escapes the placement region.
pub fn generate_bitstream(
    netlist: &Netlist,
    device: &Device,
    placement: &Placement,
    routing: &Routing,
) -> Result<TaskBitstream, BitstreamError> {
    debug_assert!(
        check_routing(netlist, device, placement, routing).is_ok(),
        "generate_bitstream called with an illegal routing"
    );
    let region = placement.region();
    let origin = region.origin;
    let mut task = TaskBitstream::empty(*device.spec(), region.width, region.height);

    // Logic sections.
    for (block_id, block) in netlist.iter_blocks() {
        let site = placement.site(block_id);
        let local = Coord::new(site.x - origin.x, site.y - origin.y);
        let mut frame = task.frame_mut(local);
        match &block.kind {
            BlockKind::Lut { truth, registered } => frame.set_logic(truth, *registered),
            // Pads keep an all-zero logic section; their identity lives in the
            // netlist, not in the fabric configuration.
            BlockKind::InputPad | BlockKind::OutputPad => {}
        }
    }

    // Routing sections.
    for switch in configured_switches(device, routing)? {
        let site = switch.site();
        if !region.contains(site) {
            return Err(BitstreamError::OutOfTask { at: site });
        }
        let local = Coord::new(site.x - origin.x, site.y - origin.y);
        let mut frame = task.frame_mut(local);
        match switch {
            SwitchSetting::Crossing { pin, track, .. } => frame.set_crossing(pin, track, true),
            SwitchSetting::SwitchBox { track, pair, .. } => frame.set_sb(track, pair, true),
        }
    }

    Ok(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};
    use vbs_route::{route, RouterConfig};

    fn flow() -> (Netlist, Device, Placement, Routing) {
        let netlist = SyntheticSpec::new("bits", 24, 5, 5)
            .with_seed(8)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(8, 6).unwrap(), 7, 7).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(8)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        (netlist, device, placement, routing)
    }

    #[test]
    fn generated_bitstream_has_logic_and_routing_bits() {
        let (netlist, device, placement, routing) = flow();
        let task = generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
        assert_eq!(task.width(), 7);
        assert_eq!(task.height(), 7);
        // Every configured switch appears exactly once, so the popcount is at
        // least the number of route edges plus some logic bits.
        let switches = configured_switches(&device, &routing).unwrap();
        assert!(task.popcount() >= switches.len());
        assert!(task.occupied_macros() > 0);
    }

    #[test]
    fn switch_count_matches_route_edges() {
        let (_netlist, device, _placement, routing) = flow();
        let edges: usize = routing
            .iter_trees()
            .map(|(_, t)| t.iter_edges().count())
            .sum();
        let switches = configured_switches(&device, &routing).unwrap();
        assert_eq!(switches.len(), edges);
    }

    #[test]
    fn frame_of_a_lut_site_holds_its_truth_table() {
        let (netlist, device, placement, routing) = flow();
        let task = generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
        let (block_id, block) = netlist
            .iter_blocks()
            .find(|(_, b)| b.kind.is_lut())
            .unwrap();
        let site = placement.site(block_id);
        let (truth, registered) = task.frame(site).logic();
        if let BlockKind::Lut {
            truth: expected,
            registered: expected_reg,
        } = &block.kind
        {
            assert_eq!(&truth, &expected.widen(device.spec().lut_size()));
            assert_eq!(registered, *expected_reg);
        }
    }

    #[test]
    fn unmappable_edges_are_rejected() {
        let device = Device::new(ArchSpec::new(6, 6).unwrap(), 5, 5).unwrap();
        // Two wires on different tracks never share a switch.
        let a = RrNode::Wire(vbs_arch::WireRef::horizontal(1, 1, 0));
        let b = RrNode::Wire(vbs_arch::WireRef::horizontal(2, 1, 1));
        assert!(matches!(
            edge_to_switch(&device, a, b),
            Err(BitstreamError::UnmappableEdge { .. })
        ));
        // A pin and a wire of the wrong parity cannot be crossed either.
        let pin = RrNode::Pin {
            site: Coord::new(1, 1),
            pin: 1,
        };
        let h = RrNode::Wire(vbs_arch::WireRef::horizontal(1, 1, 0));
        assert!(edge_to_switch(&device, pin, h).is_err());
    }

    #[test]
    fn pin_wire_edges_map_to_crossings_in_the_owner_macro() {
        let device = Device::new(ArchSpec::new(6, 6).unwrap(), 5, 5).unwrap();
        let pin = RrNode::Pin {
            site: Coord::new(2, 3),
            pin: 6,
        };
        let wire = RrNode::Wire(vbs_arch::WireRef::horizontal(2, 3, 4));
        let s = edge_to_switch(&device, pin, wire).unwrap();
        assert_eq!(
            s,
            SwitchSetting::Crossing {
                site: Coord::new(2, 3),
                pin: 6,
                track: 4
            }
        );
    }
}
