//! Raw configuration bit-stream generation.
//!
//! The conventional ("raw") bit-stream of a hardware task stores the state of
//! *every* programmable switch of every macro of the task's rectangle,
//! whether the switch is used or not — `N_raw` bits per macro (Equation (1)
//! of the paper). This crate provides:
//!
//! * [`FrameStore`] — the flat word arena every frame container is built
//!   on: one contiguous `Vec<u64>` with a fixed per-frame stride;
//! * [`FrameRef`] / [`FrameMut`] — borrowed views of one macro's `N_raw`-bit
//!   frame inside an arena, addressed through the bit-exact
//!   [`vbs_arch::FrameLayout`];
//! * [`TaskBitstream`] — the raw bit-stream of a placed-and-routed hardware
//!   task (one frame per macro of the task rectangle), plus byte
//!   serialization;
//! * [`generate_bitstream`] — the backend that turns a netlist + placement +
//!   routing into the raw bit-stream, mapping every route-tree edge to the
//!   switch it programs;
//! * [`ConfigMemory`] — the configuration-memory layer of a whole device, on
//!   which the run-time controller loads decoded tasks.
//!
//! # Example
//!
//! ```
//! use vbs_arch::{ArchSpec, Device};
//! use vbs_netlist::generate::SyntheticSpec;
//! use vbs_place::{place, PlacerConfig};
//! use vbs_route::{route, RouterConfig};
//! use vbs_bitstream::generate_bitstream;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("demo", 20, 4, 4).with_seed(1).build()?;
//! let device = Device::new(ArchSpec::new(8, 6)?, 7, 7)?;
//! let placement = place(&netlist, &device, &PlacerConfig::fast(1))?;
//! let routing = route(&netlist, &device, &placement, &RouterConfig::fast())?;
//! let bitstream = generate_bitstream(&netlist, &device, &placement, &routing)?;
//! // Raw size only depends on the task rectangle, not on its content.
//! assert_eq!(bitstream.size_bits(), 49 * device.spec().raw_bits_per_macro() as u64);
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place: the
// `kernels` module, whose `#[target_feature]` SIMD bodies need it (each is
// guarded by runtime feature detection and pinned bit-identical to a safe
// scalar twin).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod error;
mod frame;
mod generate;
mod kernels;
mod memory;
mod store;
mod task;

pub use crc::{crc32, crc32_scalar, crc32_words, crc32_words_scalar, Crc32};
pub use error::BitstreamError;
pub use frame::{FrameMut, FrameRef};
pub use generate::{configured_switches, edge_to_switch, generate_bitstream, SwitchSetting};
pub use kernels::Kernels;
pub use memory::ConfigMemory;
pub use store::FrameStore;
pub use task::TaskBitstream;
