use std::fmt;
use vbs_arch::Coord;

/// Errors produced while generating or manipulating raw bit-streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitstreamError {
    /// A routing edge could not be mapped to any programmable switch.
    UnmappableEdge {
        /// Human-readable description of the edge.
        edge: String,
    },
    /// A macro coordinate lies outside the task rectangle.
    OutOfTask {
        /// The offending coordinate (device-absolute).
        at: Coord,
    },
    /// Two frames of different layouts were combined.
    LayoutMismatch,
    /// A task does not fit the device at the requested origin.
    DoesNotFit {
        /// Requested origin.
        origin: Coord,
        /// Task width.
        width: u16,
        /// Task height.
        height: u16,
    },
    /// A serialized bit-stream was truncated or has the wrong length.
    Truncated {
        /// Number of bytes expected.
        expected: usize,
        /// Number of bytes found.
        found: usize,
    },
    /// A readback verify found a frame whose contents do not match the
    /// checksum recorded when it was written.
    CrcMismatch {
        /// The corrupted frame's coordinate (device-absolute).
        at: Coord,
    },
    /// A frame run does not fit inside its store.
    RunOutOfBounds {
        /// First frame of the run.
        start: usize,
        /// Number of frames in the run.
        count: usize,
        /// Number of frames the store holds.
        frames: usize,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::UnmappableEdge { edge } => {
                write!(f, "routing edge cannot be mapped to a switch: {edge}")
            }
            BitstreamError::OutOfTask { at } => {
                write!(f, "macro {at} is outside the task rectangle")
            }
            BitstreamError::LayoutMismatch => write!(f, "frame layouts do not match"),
            BitstreamError::DoesNotFit {
                origin,
                width,
                height,
            } => write!(
                f,
                "task of {width}x{height} macros does not fit the device at origin {origin}"
            ),
            BitstreamError::Truncated { expected, found } => {
                write!(
                    f,
                    "serialized bit-stream truncated: expected {expected} bytes, found {found}"
                )
            }
            BitstreamError::CrcMismatch { at } => {
                write!(f, "frame {at} failed its readback checksum")
            }
            BitstreamError::RunOutOfBounds {
                start,
                count,
                frames,
            } => write!(
                f,
                "frame run {start}..{start}+{count} exceeds a store of {frames} frames"
            ),
        }
    }
}

impl std::error::Error for BitstreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitstreamError>();
        let e = BitstreamError::Truncated {
            expected: 10,
            found: 3,
        };
        assert!(e.to_string().contains("expected 10"));
    }
}
