//! Integration tests for the telemetry substrate: histogram bucket math
//! and merging, event-ring wraparound under concurrent writers, and span
//! arithmetic on a deterministic clock.

use std::sync::Arc;
use std::thread;
use vbs_telemetry::{
    Clock, Event, EventKind, EventRing, LatencyHistogram, Stage, Telemetry, TestClock,
};

// --- Histograms -----------------------------------------------------------

#[test]
fn histogram_percentiles_bound_true_values() {
    let hist = LatencyHistogram::new();
    // 1..=1000 µs uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990.
    for v in 1..=1000u64 {
        hist.record(v);
    }
    assert_eq!(hist.count(), 1000);
    assert_eq!(hist.min(), 1);
    assert_eq!(hist.max(), 1000);
    let p50 = hist.value_at_quantile(0.50);
    let p95 = hist.value_at_quantile(0.95);
    let p99 = hist.value_at_quantile(0.99);
    // Reported quantiles never under-state and overshoot by ≤ 1/16.
    assert!((500..=540).contains(&p50), "p50 = {p50}");
    assert!((950..=1010).contains(&p95), "p95 = {p95}");
    assert!((990..=1055).contains(&p99), "p99 = {p99}");
    assert!(p50 <= p95 && p95 <= p99);
    assert!(hist.value_at_quantile(1.0) >= 1000);
}

#[test]
fn histogram_exact_below_sixteen() {
    let hist = LatencyHistogram::new();
    for v in 0..16u64 {
        hist.record(v);
    }
    // With exact unit buckets below 16 the quantile report is exact.
    assert_eq!(hist.value_at_quantile(0.5), 7);
    assert_eq!(hist.value_at_quantile(1.0), 15);
    assert_eq!(hist.sum(), (0..16).sum::<u64>());
}

#[test]
fn histogram_extreme_values_do_not_wrap() {
    let hist = LatencyHistogram::new();
    hist.record(u64::MAX);
    hist.record(u64::MAX);
    hist.record(0);
    assert_eq!(hist.count(), 3);
    assert_eq!(hist.sum(), u64::MAX, "sum must saturate, not wrap");
    assert_eq!(hist.min(), 0);
    assert_eq!(hist.max(), u64::MAX);
    assert_eq!(hist.value_at_quantile(1.0), u64::MAX);
}

#[test]
fn histogram_merge_matches_recording_into_one() {
    let left = LatencyHistogram::new();
    let right = LatencyHistogram::new();
    let combined = LatencyHistogram::new();
    for v in [3u64, 17, 900, 4096, 70_000] {
        left.record(v);
        combined.record(v);
    }
    for v in [1u64, 250, 1_000_000] {
        right.record(v);
        combined.record(v);
    }
    left.merge(&right);
    assert_eq!(left.count(), combined.count());
    assert_eq!(left.sum(), combined.sum());
    assert_eq!(left.min(), combined.min());
    assert_eq!(left.max(), combined.max());
    for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
        assert_eq!(
            left.value_at_quantile(q),
            combined.value_at_quantile(q),
            "quantile {q} diverged after merge"
        );
    }
}

#[test]
fn histogram_clear_resets_everything() {
    let hist = LatencyHistogram::new();
    hist.record(42);
    hist.clear();
    assert_eq!(hist.count(), 0);
    assert_eq!(hist.min(), 0);
    assert_eq!(hist.max(), 0);
    assert_eq!(hist.value_at_quantile(0.99), 0);
}

#[test]
fn histogram_concurrent_recording_loses_nothing() {
    let hist = Arc::new(LatencyHistogram::new());
    let threads = 8;
    let per_thread = 10_000u64;
    thread::scope(|scope| {
        for t in 0..threads {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..per_thread {
                    hist.record(t * per_thread + i);
                }
            });
        }
    });
    assert_eq!(hist.count(), threads * per_thread);
    assert_eq!(hist.min(), 0);
    assert_eq!(hist.max(), threads * per_thread - 1);
}

// --- Event ring -----------------------------------------------------------

fn instant(kind: EventKind, a: u64) -> Event {
    Event {
        seq: 0,
        at_micros: 0,
        kind,
        fabric: 0,
        lane: 0,
        a,
        b: 0,
        duration_micros: 0,
    }
}

#[test]
fn ring_wraps_and_keeps_the_most_recent_events() {
    let ring = EventRing::new(8);
    for i in 0..20u64 {
        ring.record(instant(EventKind::Enqueue, i));
    }
    let stats = ring.stats();
    assert_eq!(stats.recorded, 20);
    assert_eq!(stats.retained, 8);
    let snapshot = ring.snapshot();
    assert_eq!(snapshot.len(), 8);
    // Oldest-first: the 8 most recent sequence numbers, in order.
    let seqs: Vec<u64> = snapshot.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    // Payloads rode along with their sequence numbers.
    assert!(snapshot.iter().all(|e| e.a == e.seq));
}

#[test]
fn ring_wraparound_under_concurrent_writers() {
    let ring = Arc::new(EventRing::new(64));
    let writers = 8u64;
    let per_writer = 1_000u64;
    thread::scope(|scope| {
        for w in 0..writers {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..per_writer {
                    ring.record(instant(EventKind::FrameWrite, w * per_writer + i));
                }
            });
        }
    });
    let stats = ring.stats();
    assert_eq!(stats.recorded, writers * per_writer, "no event lost a seq");
    assert_eq!(stats.retained, 64);
    let snapshot = ring.snapshot();
    // Retained events are the highest 64 sequence numbers, strictly
    // ordered and gap-free — seq assignment and slot publish share a lock.
    let expect_first = writers * per_writer - 64;
    for (offset, event) in snapshot.iter().enumerate() {
        assert_eq!(event.seq, expect_first + offset as u64);
    }
}

#[test]
fn zero_capacity_ring_counts_without_retaining() {
    let ring = EventRing::new(0);
    for i in 0..5u64 {
        ring.record(instant(EventKind::Admit, i));
    }
    assert_eq!(ring.stats().recorded, 5);
    assert_eq!(ring.stats().retained, 0);
    assert!(ring.snapshot().is_empty());
}

// --- Spans on a deterministic clock --------------------------------------

#[test]
fn nested_spans_record_exact_deterministic_durations() {
    let clock = TestClock::new();
    let telemetry = Telemetry::with(Arc::new(clock.clone()), 16);

    // Outer span covers a whole load; inner spans cover its stages.
    let load = telemetry.span(Stage::Load);
    clock.advance(5); // queueing before placement
    {
        let placement = telemetry.span(Stage::Placement);
        clock.advance(30);
        assert_eq!(placement.finish(), 30);
    }
    {
        let decode = telemetry.span(Stage::Decode);
        clock.advance(200);
        drop(decode); // implicit finish via Drop
    }
    clock.advance(15); // write tail outside any inner span
    assert_eq!(load.finish(), 250);

    assert_eq!(telemetry.histogram(Stage::Placement).max(), 30);
    assert_eq!(telemetry.histogram(Stage::Decode).max(), 200);
    assert_eq!(telemetry.histogram(Stage::Load).max(), 250);
    assert_eq!(telemetry.histogram(Stage::QueueWait).count(), 0);
}

#[test]
fn manual_span_twin_matches_guard_spans() {
    let clock = TestClock::new();
    let telemetry = Telemetry::with(Arc::new(clock.clone()), 16);
    let start = telemetry.now();
    clock.advance(77);
    let elapsed = telemetry.record_span(Stage::Write, start);
    assert_eq!(elapsed, 77);
    assert_eq!(telemetry.histogram(Stage::Write).count(), 1);
    assert_eq!(telemetry.histogram(Stage::Write).max(), 77);
}

#[test]
fn disabled_telemetry_records_nothing_but_counts() {
    let telemetry = Telemetry::disabled();
    telemetry.record_micros(Stage::Load, 99);
    telemetry.event(EventKind::Enqueue, 0, 0, 1, 0);
    let _span = telemetry.span(Stage::Decode);
    drop(_span);
    assert_eq!(telemetry.histogram(Stage::Load).count(), 0);
    assert_eq!(telemetry.histogram(Stage::Decode).count(), 0);
    assert_eq!(telemetry.ring_stats().recorded, 0);
    // Counter slots stay live: they back SchedMetrics views.
    telemetry.counter_add(3, 2);
    telemetry.counter_add(3, u64::MAX);
    assert_eq!(telemetry.counter(3), u64::MAX, "counter adds saturate");
    telemetry.float_add(7, 0.5);
    telemetry.float_add(7, 0.25);
    assert!((telemetry.float_total(7) - 0.75).abs() < 1e-12);
}

#[test]
fn event_span_stamps_start_and_duration() {
    let clock = TestClock::new();
    let telemetry = Telemetry::with(Arc::new(clock.clone()), 16);
    clock.set(1_000);
    let start = telemetry.now();
    clock.advance(250);
    telemetry.event_span(EventKind::DecodeEnd, 2, 3, 64, 0, start);
    let events = telemetry.events();
    assert_eq!(events.len(), 1);
    let event = events[0];
    assert_eq!(event.at_micros, 1_000);
    assert_eq!(event.duration_micros, 250);
    assert_eq!(event.fabric, 2);
    assert_eq!(event.lane, 3);
    assert_eq!(event.a, 64);
}

#[test]
fn clock_trait_object_is_shareable() {
    let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
    let telemetry = Telemetry::with(Arc::clone(&clock), 4);
    assert_eq!(telemetry.now(), 0);
    let second = telemetry.clone();
    assert!(telemetry.same_registry(&second));
    assert!(!telemetry.same_registry(&Telemetry::disabled()));
}
