//! Time sources: a monotonic wall clock and a deterministic test twin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
///
/// Everything in this crate timestamps through a `Clock` instead of calling
/// [`Instant::now`] directly, so span and histogram arithmetic can be driven
/// by a deterministic [`TestClock`] in tests while production code runs on
/// the [`MonotonicClock`] default. Implementations must be monotonic
/// (time never goes backwards) and cheap — `now_micros` sits on the decode
/// hot path.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since this clock's origin.
    fn now_micros(&self) -> u64;
}

/// The production clock: microseconds since the clock was created, read
/// from the OS monotonic clock. Allocation-free to query.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: time only moves when the test advances
/// it. Cloning shares the underlying counter, so a clone handed to a
/// [`crate::Telemetry`] registry stays controllable from the test body.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    micros: Arc<AtomicU64>,
}

impl TestClock {
    /// Creates a clock frozen at 0 µs.
    pub fn new() -> Self {
        TestClock::default()
    }

    /// Advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute microsecond value (monotonicity is the
    /// test's responsibility).
    pub fn set(&self, micros: u64) {
        self.micros.store(micros, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_is_fully_deterministic() {
        let clock = TestClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.advance(7);
        let shared = clock.clone();
        shared.advance(3);
        assert_eq!(clock.now_micros(), 10);
        clock.set(100);
        assert_eq!(shared.now_micros(), 100);
    }
}
