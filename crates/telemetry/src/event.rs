//! Structured pipeline events and span stages.

use std::fmt;

/// A pipeline stage whose latency is tracked in its own
/// [`crate::LatencyHistogram`]. The scheduler records the request stages,
/// the decode worker pool the lane stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Submit → processing start of a request.
    QueueWait,
    /// Finding (or making, via eviction/compaction) a free region.
    Placement,
    /// De-virtualizing a stream (cache misses only).
    Decode,
    /// Writing decoded frames into configuration memory.
    Write,
    /// A compaction pass blocking the request pipeline.
    CompactionPause,
    /// End-to-end processing of one load request.
    Load,
    /// One decode lane's busy time within a parallel decode.
    LaneBusy,
    /// Re-expanding a warm (compressed-only) cache entry through the pooled
    /// decode lanes. Also recorded under [`Stage::Decode`] so aggregate
    /// decode latency keeps covering every de-virtualization.
    Redecode,
}

impl Stage {
    /// Number of stages (the registry preallocates one histogram each).
    pub const COUNT: usize = 8;

    /// All stages, in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::Placement,
        Stage::Decode,
        Stage::Write,
        Stage::CompactionPause,
        Stage::Load,
        Stage::LaneBusy,
        Stage::Redecode,
    ];

    /// The stage's histogram slot.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// A short stable name (snake_case, used as JSON keys).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Placement => "placement",
            Stage::Decode => "decode",
            Stage::Write => "write",
            Stage::CompactionPause => "compaction_pause",
            Stage::Load => "load",
            Stage::LaneBusy => "lane_busy",
            Stage::Redecode => "redecode",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened at one point of the pipeline. Kinds carrying a duration
/// (`duration_micros > 0` spans like [`EventKind::DecodeEnd`]) export as
/// complete slices on the Perfetto timeline; the rest are instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A request entered a scheduler queue (`a` = job id).
    Enqueue,
    /// A load was admitted and configured (`a` = job, `b` = packed origin).
    Admit,
    /// A load was rejected (`a` = job).
    Reject,
    /// A resident was evicted on behalf of a load (`a` = victim job).
    Evict,
    /// A resident departed (`a` = job).
    Unload,
    /// A resident was relocated (`a` = job, `b` = packed destination).
    Relocate,
    /// A decode lane started its share of a de-virtualization (`a` = lane).
    DecodeStart,
    /// A decode lane finished (`a` = records decoded, duration attached).
    DecodeEnd,
    /// Decoded frames were written into configuration memory
    /// (`a` = job, `b` = frames, duration attached).
    FrameWrite,
    /// A compaction pass ran (`a` = moves, `b` = frames moved, duration
    /// attached).
    CompactPass,
    /// A capacity-rejected load was re-dispatched to another fabric
    /// (`a` = global job, `b` = target fabric).
    Migrate,
    /// The shard policy routed a load (`a` = global job, `b` = fabric).
    ShardDecision,
    /// A pool checkout was served by recycled state (`a` = 0 buffer,
    /// 1 scratch).
    CheckoutHit,
    /// A pool checkout had to create fresh state (`a` = 0 buffer,
    /// 1 scratch).
    CheckoutMiss,
    /// A fabric utilization sample (`a` = occupied per-mille, `b` =
    /// fragmentation per-mille).
    Utilization,
    /// The fault plane injected a fault (`a` = kind: 0 transient write,
    /// 1 persistent write, 2 corruption, 3 outage; `b` = payload).
    FaultInjected,
    /// A refused configuration write is being retried (`a` = job,
    /// `b` = attempt number).
    WriteRetry,
    /// A readback verify found a frame disagreeing with its recorded
    /// checksum (`a` = job, `b` = packed frame coordinate).
    CrcMismatch,
    /// A fabric was quarantined after going offline (`a` = fabric,
    /// `b` = residents evacuated).
    Quarantine,
    /// A quarantined fabric recovered and rejoined the fleet
    /// (`a` = fabric).
    Recover,
    /// A cache lookup hit the warm tier and re-decoded the compressed
    /// stream (`a` = job, `b` = compressed bytes, duration attached).
    WarmHit,
    /// Hot cache entries fell back to their compressed bytes under byte
    /// pressure (`a` = entries demoted by the insert, `b` = hot-tier
    /// bytes after).
    Demote,
    /// A warm entry earned a decoded arena back (`a` = 1, `b` = hot-tier
    /// bytes after).
    Promote,
}

impl EventKind {
    /// A short stable name (used in exports).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Evict => "evict",
            EventKind::Unload => "unload",
            EventKind::Relocate => "relocate",
            EventKind::DecodeStart => "decode_start",
            EventKind::DecodeEnd => "decode",
            EventKind::FrameWrite => "frame_write",
            EventKind::CompactPass => "compact_pass",
            EventKind::Migrate => "migrate",
            EventKind::ShardDecision => "shard_decision",
            EventKind::CheckoutHit => "checkout_hit",
            EventKind::CheckoutMiss => "checkout_miss",
            EventKind::Utilization => "utilization",
            EventKind::FaultInjected => "fault_injected",
            EventKind::WriteRetry => "write_retry",
            EventKind::CrcMismatch => "crc_mismatch",
            EventKind::Quarantine => "quarantine",
            EventKind::Recover => "recover",
            EventKind::WarmHit => "warm_hit",
            EventKind::Demote => "demote",
            EventKind::Promote => "promote",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One timeline entry: fixed-size and `Copy`, so recording never allocates
/// and a bounded ring holds the most recent N without boxing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total recorded so far, including entries the
    /// ring has since overwritten).
    pub seq: u64,
    /// Timestamp in clock microseconds. For duration-carrying kinds this is
    /// the span **start** (`at_micros + duration_micros` = end).
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// The fabric the event belongs to (dispatcher events use the fleet
    /// tag `u16::MAX`).
    pub fabric: u16,
    /// The decode lane (0 = the scheduler/writer thread itself).
    pub lane: u16,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
    /// Span length in microseconds; 0 for instant events.
    pub duration_micros: u64,
}

/// The fabric tag of fleet-scope events (dispatcher decisions, shared-pool
/// checkouts): they belong to no single fabric and render as their own
/// process track in trace exports.
pub const FLEET_FABRIC: u16 = u16::MAX;
