//! A bounded ring buffer of pipeline [`Event`]s.
//!
//! The ring holds the most recent `capacity` events; older entries are
//! overwritten in place, so steady-state recording never allocates (the
//! slot array is preallocated and events are `Copy`). Sequence numbers are
//! assigned under the same short lock that publishes the slot, making the
//! total event count exact and snapshots globally ordered even with many
//! concurrent writers (scheduler thread, decode lanes, fabric writers).

use crate::event::Event;
use std::sync::Mutex;

/// Counters describing a ring's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Events recorded since creation (sequence numbers are `0..recorded`).
    pub recorded: u64,
    /// Events currently retained (`min(recorded, capacity)`).
    pub retained: usize,
    /// Retention bound.
    pub capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    /// Slot array, preallocated to `capacity` (grows only during the first
    /// lap, via pushes into reserved capacity — never reallocates).
    slots: Vec<Event>,
    /// Index the next event lands in once the ring has wrapped.
    head: usize,
    /// Total events recorded; doubles as the next sequence number.
    seq: u64,
}

/// A bounded, thread-safe event ring (see the module docs).
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring retaining the most recent `capacity` events
    /// (0 disables retention: events still count, nothing is kept).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingInner {
                slots: Vec::with_capacity(capacity),
                head: 0,
                seq: 0,
            }),
            capacity,
        }
    }

    /// Records one event, stamping its sequence number. Returns the
    /// sequence assigned. Allocation-free.
    pub fn record(&self, mut event: Event) -> u64 {
        let mut inner = self.inner.lock().expect("event ring never poisoned");
        let seq = inner.seq;
        event.seq = seq;
        inner.seq += 1;
        if self.capacity > 0 {
            if inner.slots.len() < self.capacity {
                inner.slots.push(event);
            } else {
                let head = inner.head;
                inner.slots[head] = event;
                inner.head = (head + 1) % self.capacity;
            }
        }
        seq
    }

    /// The retained events in sequence order (oldest first). Allocates the
    /// returned vector — an export-time operation, not a hot-path one.
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = self.inner.lock().expect("event ring never poisoned");
        let mut out = Vec::with_capacity(inner.slots.len());
        out.extend_from_slice(&inner.slots[inner.head..]);
        out.extend_from_slice(&inner.slots[..inner.head]);
        out
    }

    /// Current counters.
    pub fn stats(&self) -> RingStats {
        let inner = self.inner.lock().expect("event ring never poisoned");
        RingStats {
            recorded: inner.seq,
            retained: inner.slots.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every retained event and resets the sequence counter.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("event ring never poisoned");
        inner.slots.clear();
        inner.head = 0;
        inner.seq = 0;
    }
}
