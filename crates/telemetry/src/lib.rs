//! Observability substrate for the VBS runtime stack: tracing spans,
//! latency histograms and a structured event timeline, all recordable from
//! the decode hot path without a single heap allocation.
//!
//! The run-time manager of the paper is judged on reconfiguration latency
//! and pause behavior; flat counters and means cannot answer *where* a slow
//! load spent its time (queue wait vs decode vs configuration write vs
//! compaction pause) or what its tail looks like. This crate provides the
//! three primitives the scheduler, the decode worker pool and the
//! multi-fabric dispatcher record into, plus the exporters that turn a
//! replay into numbers and pictures:
//!
//! * [`Clock`] — a monotonic microsecond time source with a deterministic
//!   [`TestClock`] twin, so span math is unit-testable tick by tick;
//! * [`LatencyHistogram`] — fixed-size, log-bucketed (HDR-style) latency
//!   histograms over preallocated atomic buckets: recording is lock-free
//!   and allocation-free, percentiles (p50/p95/p99/max) come out at read
//!   time;
//! * [`EventRing`] — a bounded ring of structured [`Event`]s (enqueue,
//!   admit, evict, decode start/end per lane, frame writes, compaction
//!   passes, migrations) with global sequence numbers and timestamps;
//! * [`Telemetry`] — the shared registry handle tying the three together:
//!   one histogram per pipeline [`Stage`], one event ring, one clock, and a
//!   bank of saturating counter slots that [`SchedMetrics`]-style views are
//!   built over;
//! * exporters — [`metrics_json`] (machine-readable snapshot),
//!   [`summary_table`] (human-readable), and [`chrome_trace`]
//!   (`chrome://tracing` / Perfetto trace-event JSON with one track per
//!   decode lane and one process per fabric).
//!
//! [`SchedMetrics`]: https://docs.rs/vbs-sched
//! [`metrics_json`]: export::metrics_json
//! [`summary_table`]: export::summary_table
//! [`chrome_trace`]: export::chrome_trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
pub mod export;
mod hist;
mod registry;
mod ring;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use event::{Event, EventKind, Stage, FLEET_FABRIC};
pub use hist::{HistogramSummary, LatencyHistogram};
pub use registry::{CounterBank, Span, Telemetry, COUNTER_SLOTS};
pub use ring::{EventRing, RingStats};
