//! Fixed-size, log-bucketed latency histograms (HDR-style).
//!
//! A [`LatencyHistogram`] covers the whole `u64` value range with
//! preallocated buckets: exact buckets below 2^4 and 16 linear sub-buckets
//! per power of two above it, bounding the relative quantization error at
//! 1/16 (6.25%). Every bucket is an [`AtomicU64`], so recording is one
//! relaxed `fetch_add` plus min/max/sum updates — **lock-free and
//! allocation-free**, cheap enough for the zero-alloc decode hot path.
//! Percentiles are computed at read time by scanning the bucket array.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Exact buckets `[0, 16)`, then 16 sub-buckets for each of the 60
/// remaining octaves `[2^4, 2^64)`.
const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Maps a value to its bucket index (total order preserving).
const fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = ((value >> shift) as usize) & (SUB_COUNT - 1);
    SUB_COUNT + (shift as usize) * SUB_COUNT + sub
}

/// The largest value a bucket holds — percentile reads report this upper
/// bound, so a reported quantile never under-states the true latency.
const fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let shift = ((index - SUB_COUNT) / SUB_COUNT) as u32;
    let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
    let base = 1u64 << (shift + SUB_BITS);
    let low = base + (sub << shift);
    low + ((1u64 << shift) - 1)
}

/// A lock-free log-bucketed latency histogram (see the module docs).
/// Values are unit-agnostic; the stack records microseconds or nanoseconds
/// depending on the stage's dynamic range.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram — the one allocation of its lifetime.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: one relaxed `fetch_add` per statistic, no lock,
    /// no allocation. The running sum saturates instead of wrapping.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_update loop only retries under contention; saturation keeps
        // a pathological accumulation from wrapping the mean negative.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX && self.count() == 0 {
            0
        } else {
            min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// The value at quantile `q` in `[0, 1]` — the upper bound of the
    /// bucket holding the rank-`ceil(q · count)` value, so the report never
    /// under-states the true latency (relative error ≤ 1/16). Clamped to
    /// the exact recorded max: when the rank lands in the topmost occupied
    /// bucket the max still bounds everything in it, and lower buckets'
    /// bounds are below the max by construction — so reported quantiles
    /// stay monotone up to and including the max. Returns 0 when the
    /// histogram is empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max());
            }
        }
        // Counters raced ahead of bucket stores; the max is the honest
        // answer for "highest quantile".
        self.max()
    }

    /// Folds another histogram into this one (bucket-wise addition;
    /// min/max/sum follow).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(other.sum.load(Ordering::Relaxed)))
            });
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every statistic to empty.
    pub fn clear(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.value_at_quantile(0.50),
            p95: self.value_at_quantile(0.95),
            p99: self.value_at_quantile(0.99),
            max: self.max(),
        }
    }
}

/// A snapshot of one histogram's distribution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Smallest value.
    pub min: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest value (exact).
    pub max: u64,
}

impl HistogramSummary {
    /// The summary as a JSON object (hand-rolled; the workspace builds
    /// offline without serde).
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.1}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            self.count, self.mean, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_use_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent_and_ordered() {
        // Every value maps into a bucket whose upper bound is >= the value,
        // and bucket upper bounds grow monotonically with the index.
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "value {v} → out-of-range bucket {index}");
            let upper = bucket_upper_bound(index);
            assert!(upper >= v, "value {v} above its bucket bound {upper}");
            // Quantization error bounded by 1/16 of the value.
            assert!(
                upper - v <= v / 16 + 1,
                "value {v}: bound {upper} overshoots by more than 1/16"
            );
        }
        let mut previous = 0u64;
        for index in 0..BUCKETS {
            let upper = bucket_upper_bound(index);
            assert!(upper >= previous, "bucket {index} not monotonic");
            previous = upper;
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }
}
