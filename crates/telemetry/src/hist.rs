//! Fixed-size, log-bucketed latency histograms (HDR-style).
//!
//! A [`LatencyHistogram`] covers the whole `u64` value range with
//! preallocated buckets: exact buckets below 2^6 and 64 linear sub-buckets
//! per power of two above it, bounding the relative quantization error at
//! 1/64 (~1.6%). Every bucket is an [`AtomicU64`], so recording is one
//! relaxed `fetch_add` plus min/max/sum updates — **lock-free and
//! allocation-free**, cheap enough for the zero-alloc decode hot path.
//! Percentiles are computed at read time by scanning the bucket array and
//! interpolating linearly inside the bucket the rank lands in, so quantiles
//! move with the distribution instead of clamping to bucket bounds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave.
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Exact buckets `[0, 64)`, then 64 sub-buckets for each of the 58
/// remaining octaves `[2^6, 2^64)`.
const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Maps a value to its bucket index (total order preserving).
const fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = ((value >> shift) as usize) & (SUB_COUNT - 1);
    SUB_COUNT + (shift as usize) * SUB_COUNT + sub
}

/// The largest value a bucket holds — percentile reads report this upper
/// bound, so a reported quantile never under-states the true latency.
const fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let shift = ((index - SUB_COUNT) / SUB_COUNT) as u32;
    let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
    let base = 1u64 << (shift + SUB_BITS);
    let low = base + (sub << shift);
    low + ((1u64 << shift) - 1)
}

/// A lock-free log-bucketed latency histogram (see the module docs).
/// Values are unit-agnostic; the stack records microseconds or nanoseconds
/// depending on the stage's dynamic range.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram — the one allocation of its lifetime.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: one relaxed `fetch_add` per statistic, no lock,
    /// no allocation. The running sum saturates instead of wrapping.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_update loop only retries under contention; saturation keeps
        // a pathological accumulation from wrapping the mean negative.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX && self.count() == 0 {
            0
        } else {
            min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// The value at quantile `q` in `[0, 1]`: the rank-`ceil(q · count)`
    /// value, interpolated linearly within the bucket it lands in (rank k
    /// of n bucket occupants maps to `lower + span·k/n`). Interpolated
    /// values stay inside the bucket (relative error ≤ 1/64) and are exact
    /// when occupants fill the bucket uniformly; distinct ranks in one
    /// bucket report distinct values instead of all clamping to the bucket
    /// bound. Clamped to the exact recorded max, and monotone in `q` by
    /// construction (each bucket's interpolation starts above the previous
    /// bucket's upper bound). Returns 0 when the histogram is empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let occupants = bucket.load(Ordering::Relaxed);
            if occupants == 0 {
                continue;
            }
            seen += occupants;
            if seen >= rank {
                let upper = bucket_upper_bound(index);
                let lower = if index == 0 {
                    0
                } else {
                    bucket_upper_bound(index - 1) + 1
                };
                // The rank is the k-th (1-based) of this bucket's occupants.
                let k = rank - (seen - occupants);
                let span = (upper - lower) as u128;
                let step = (span * k as u128 / occupants as u128) as u64;
                return (lower + step).min(self.max());
            }
        }
        // Counters raced ahead of bucket stores; the max is the honest
        // answer for "highest quantile".
        self.max()
    }

    /// Folds another histogram into this one (bucket-wise addition;
    /// min/max/sum follow).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(other.sum.load(Ordering::Relaxed)))
            });
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every statistic to empty.
    pub fn clear(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.value_at_quantile(0.50),
            p95: self.value_at_quantile(0.95),
            p99: self.value_at_quantile(0.99),
            max: self.max(),
        }
    }
}

/// A snapshot of one histogram's distribution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Smallest value.
    pub min: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest value (exact).
    pub max: u64,
}

impl HistogramSummary {
    /// The summary as a JSON object (hand-rolled; the workspace builds
    /// offline without serde).
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.1}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            self.count, self.mean, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_use_exact_buckets() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // 2976..3008 fills one 32-wide sub-bucket of the [2048, 4096)
        // octave exactly; uniform occupancy makes interpolation exact.
        let h = LatencyHistogram::new();
        for v in 2976..3008u64 {
            assert_eq!(bucket_index(v), bucket_index(2976), "value {v}");
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.25), 2983); // 8th of 32
        assert_eq!(h.value_at_quantile(0.50), 2991); // 16th of 32
        assert_eq!(h.value_at_quantile(0.75), 2999); // 24th of 32
        assert_eq!(h.value_at_quantile(1.0), 3007);
        // The pre-interpolation failure mode: every quantile clamped to the
        // same bucket bound. Distinct ranks must now report distinct values.
        assert!(h.value_at_quantile(0.25) < h.value_at_quantile(0.50));
        assert!(h.value_at_quantile(0.50) < h.value_at_quantile(0.75));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let h = LatencyHistogram::new();
        for v in [1u64, 7, 90, 91, 1_500, 122_879, 122_880, 9_000_000] {
            h.record(v);
        }
        let mut previous = 0u64;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let value = h.value_at_quantile(q);
            assert!(value >= previous, "quantile {q} regressed");
            assert!(value <= h.max(), "quantile {q} above max");
            previous = value;
        }
        assert_eq!(h.value_at_quantile(1.0), h.max());
    }

    #[test]
    fn bucket_bounds_are_consistent_and_ordered() {
        // Every value maps into a bucket whose upper bound is >= the value,
        // and bucket upper bounds grow monotonically with the index.
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "value {v} → out-of-range bucket {index}");
            let upper = bucket_upper_bound(index);
            assert!(upper >= v, "value {v} above its bucket bound {upper}");
            // Quantization error bounded by 1/64 of the value.
            assert!(
                upper - v <= v / 64 + 1,
                "value {v}: bound {upper} overshoots by more than 1/64"
            );
        }
        let mut previous = 0u64;
        for index in 0..BUCKETS {
            let upper = bucket_upper_bound(index);
            assert!(upper >= previous, "bucket {index} not monotonic");
            previous = upper;
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }
}
