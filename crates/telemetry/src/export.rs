//! Exporters: JSON metrics snapshots, human-readable summary tables, and
//! `chrome://tracing`-compatible trace-event JSON (openable in Perfetto).
//!
//! All JSON is hand-rolled — the workspace builds offline without serde.
//! Exports allocate freely; they run at report time, never on the hot path.

use crate::event::{Event, EventKind, FLEET_FABRIC};
use crate::registry::Telemetry;
use crate::Stage;
use std::fmt::Write as _;

/// A JSON object with one per-stage latency summary (`count`, `mean`,
/// `min`, `p50`, `p95`, `p99`, `max`) under `"stages"` plus the event-ring
/// counters under `"events"`. Embedders splice this into larger reports.
pub fn metrics_json(telemetry: &Telemetry) -> String {
    let mut out = String::from("{\n  \"stages\": {\n");
    let mut first = true;
    for stage in Stage::ALL {
        let hist = telemetry.histogram(stage);
        if hist.count() == 0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "    \"{}\": {}", stage.name(), hist.summary().json());
    }
    let stats = telemetry.ring_stats();
    let _ = write!(
        out,
        "\n  }},\n  \"events\": {{\"recorded\": {}, \"retained\": {}, \"capacity\": {}}}\n}}",
        stats.recorded, stats.retained, stats.capacity
    );
    out
}

/// A fixed-width table of the per-stage latency distributions, one row per
/// stage that recorded at least one value. Units are whatever the stage
/// recorded (microseconds throughout this stack).
pub fn summary_table(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "stage", "count", "mean", "min", "p50", "p95", "p99", "max"
    );
    for stage in Stage::ALL {
        let hist = telemetry.histogram(stage);
        if hist.count() == 0 {
            continue;
        }
        let s = hist.summary();
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>11.1} {:>9} {:>9} {:>9} {:>9} {:>9}",
            stage.name(),
            s.count,
            s.mean,
            s.min,
            s.p50,
            s.p95,
            s.p99,
            s.max
        );
    }
    let stats = telemetry.ring_stats();
    let _ = writeln!(
        out,
        "events: {} recorded, {} retained (ring capacity {})",
        stats.recorded, stats.retained, stats.capacity
    );
    out
}

fn process_label(fabric: u16) -> String {
    if fabric == FLEET_FABRIC {
        "fleet dispatcher".to_string()
    } else {
        format!("fabric {fabric}")
    }
}

fn thread_label(lane: u16) -> String {
    if lane == 0 {
        "scheduler".to_string()
    } else {
        format!("decode lane {lane}")
    }
}

fn push_trace_event(out: &mut String, event: &Event) {
    let name = event.kind.name();
    let pid = event.fabric;
    let tid = event.lane;
    if event.duration_micros > 0 || matches!(event.kind, EventKind::DecodeEnd) {
        let _ = write!(
            out,
            "{{\"name\": \"{name}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"seq\": {}, \"a\": {}, \"b\": {}}}}}",
            event.at_micros, event.duration_micros, event.seq, event.a, event.b
        );
    } else {
        let _ = write!(
            out,
            "{{\"name\": \"{name}\", \"ph\": \"i\", \"ts\": {}, \"s\": \"t\", \
             \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"seq\": {}, \"a\": {}, \"b\": {}}}}}",
            event.at_micros, event.seq, event.a, event.b
        );
    }
}

/// The retained event timeline in Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form). Open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>: each fabric renders as
/// a process track (the fleet dispatcher as its own), each decode lane as
/// a thread track, duration-carrying events as slices and the rest as
/// instants.
pub fn chrome_trace(telemetry: &Telemetry) -> String {
    let events = telemetry.events();
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;

    // Metadata first: name the process/thread tracks that appear.
    let mut seen_fabrics: Vec<u16> = Vec::new();
    let mut seen_lanes: Vec<(u16, u16)> = Vec::new();
    for event in &events {
        if !seen_fabrics.contains(&event.fabric) {
            seen_fabrics.push(event.fabric);
        }
        let key = (event.fabric, event.lane);
        if !seen_lanes.contains(&key) {
            seen_lanes.push(key);
        }
    }
    for fabric in &seen_fabrics {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {fabric}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            process_label(*fabric)
        );
    }
    for (fabric, lane) in &seen_lanes {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {fabric}, \"tid\": {lane}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            thread_label(*lane)
        );
    }

    for event in &events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_trace_event(&mut out, event);
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Stage, Telemetry, TestClock};
    use std::sync::Arc;

    fn sample() -> Telemetry {
        let clock = TestClock::new();
        let telemetry = Telemetry::with(Arc::new(clock.clone()), 64);
        telemetry.record_micros(Stage::Decode, 120);
        telemetry.record_micros(Stage::Decode, 480);
        clock.set(10);
        telemetry.event(EventKind::Enqueue, 0, 0, 7, 0);
        let start = telemetry.now();
        clock.advance(40);
        telemetry.event_span(EventKind::DecodeEnd, 0, 2, 31, 0, start);
        telemetry
    }

    #[test]
    fn metrics_json_contains_recorded_stages_only() {
        let json = metrics_json(&sample());
        assert!(json.contains("\"decode\""));
        assert!(!json.contains("\"queue_wait\""));
        assert!(json.contains("\"recorded\": 2"));
    }

    #[test]
    fn chrome_trace_names_tracks_and_emits_slices() {
        let trace = chrome_trace(&sample());
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("process_name"));
        assert!(trace.contains("\"fabric 0\""));
        assert!(trace.contains("\"decode lane 2\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"dur\": 40"));
        assert!(trace.contains("\"ph\": \"i\""));
    }

    #[test]
    fn summary_table_lists_stage_rows() {
        let table = summary_table(&sample());
        assert!(table.contains("decode"));
        assert!(table.contains("events: 2 recorded"));
    }
}
