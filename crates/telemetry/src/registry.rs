//! The telemetry registry: one clock, one histogram per stage, one event
//! ring, and a bank of saturating counter slots, behind one cloneable
//! thread-safe handle.

use crate::clock::{Clock, MonotonicClock};
use crate::event::{Event, EventKind, Stage};
use crate::hist::LatencyHistogram;
use crate::ring::{EventRing, RingStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of generic counter slots a bank carries. Embedding crates define
/// their own slot constants over these indices (e.g. `vbs-sched` maps its
/// `SchedMetrics` fields here), so counter bumps share the bank's
/// thread-safety without a per-crate registry type.
pub const COUNTER_SLOTS: usize = 32;

/// A standalone bank of [`COUNTER_SLOTS`] lock-free counter slots.
///
/// Integer slots accumulate with saturating adds; a slot may instead hold
/// an `f64` accumulator via [`CounterBank::float_add`] (the embedder
/// decides which slot is which — the two interpretations never mix on one
/// slot). Metrics views like `vbs-sched`'s `SchedMetrics` are snapshots of
/// a bank. Components that must keep *separate* totals (one per fabric)
/// while sharing one span/event registry hold their own bank next to the
/// shared [`Telemetry`] handle.
#[derive(Debug, Default)]
pub struct CounterBank {
    slots: [AtomicU64; COUNTER_SLOTS],
}

impl CounterBank {
    /// A bank with every slot at zero.
    pub fn new() -> Self {
        CounterBank::default()
    }

    /// Adds to a counter slot, saturating at `u64::MAX`.
    pub fn add(&self, slot: usize, delta: u64) {
        let _ = self.slots[slot].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_add(delta))
        });
    }

    /// Reads a counter slot.
    pub fn get(&self, slot: usize) -> u64 {
        self.slots[slot].load(Ordering::Relaxed)
    }

    /// Accumulates into an `f64` slot (the slot must only ever be used
    /// through the float API). Lock-free CAS on the bit pattern; additions
    /// from one thread fold in submission order, so single-threaded
    /// accumulation is bit-identical to `+=`.
    pub fn float_add(&self, slot: usize, delta: f64) {
        let _ = self.slots[slot].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + delta).to_bits())
        });
    }

    /// Reads an `f64` slot.
    pub fn float_total(&self, slot: usize) -> f64 {
        f64::from_bits(self.slots[slot].load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    histograms: [LatencyHistogram; Stage::COUNT],
    ring: EventRing,
    /// The registry's own counter bank (see [`CounterBank`]).
    counters: CounterBank,
    /// When false, span/histogram/event recording is skipped entirely
    /// (counters stay live — they are the metrics source of truth).
    enabled: bool,
}

/// The shared telemetry handle (see the module docs). Cloning shares the
/// registry; all recording is `&self` and thread-safe, so one handle can be
/// held by a scheduler, its decode lanes and a fleet dispatcher at once.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Default ring retention: enough for a full bench replay's pipeline
    /// events without unbounded growth.
    pub const DEFAULT_RING_CAPACITY: usize = 16_384;

    /// A registry on the monotonic clock with the default ring capacity.
    pub fn new() -> Self {
        Telemetry::with(Arc::new(MonotonicClock::new()), Self::DEFAULT_RING_CAPACITY)
    }

    /// A registry with an explicit clock and event-ring retention — tests
    /// install a [`crate::TestClock`] here.
    pub fn with(clock: Arc<dyn Clock>, ring_capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                clock,
                histograms: std::array::from_fn(|_| LatencyHistogram::new()),
                ring: EventRing::new(ring_capacity),
                counters: CounterBank::new(),
                enabled: true,
            }),
        }
    }

    /// A registry whose span and event recording is a no-op (counters stay
    /// live). Components hold this by default until a real registry is
    /// installed, so uninstrumented deployments pay one branch per record.
    pub fn disabled() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                clock: Arc::new(MonotonicClock::new()),
                histograms: std::array::from_fn(|_| LatencyHistogram::new()),
                ring: EventRing::new(0),
                counters: CounterBank::new(),
                enabled: false,
            }),
        }
    }

    /// Whether span/event recording is live.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Whether two handles share one registry.
    pub fn same_registry(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Microseconds on the registry clock.
    pub fn now(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// The registry clock (shared handle).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    // --- Spans & histograms ------------------------------------------------

    /// Starts a span over `stage`; the span records its elapsed time into
    /// the stage histogram when finished (or dropped).
    pub fn span(&self, stage: Stage) -> Span {
        Span {
            telemetry: self.clone(),
            stage,
            start: self.now(),
            done: false,
        }
    }

    /// Records `now - start_micros` into the stage histogram and returns
    /// the elapsed microseconds — the manual twin of [`Telemetry::span`]
    /// for callers that cannot hold a guard across a `&mut self` region.
    pub fn record_span(&self, stage: Stage, start_micros: u64) -> u64 {
        let elapsed = self.now().saturating_sub(start_micros);
        self.record_micros(stage, elapsed);
        elapsed
    }

    /// Records a measured duration into the stage histogram.
    pub fn record_micros(&self, stage: Stage, micros: u64) {
        if self.inner.enabled {
            self.inner.histograms[stage.index()].record(micros);
        }
    }

    /// The stage's histogram (always present; empty when disabled).
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.inner.histograms[stage.index()]
    }

    // --- Events ------------------------------------------------------------

    /// Records an instant event stamped "now".
    pub fn event(&self, kind: EventKind, fabric: u16, lane: u16, a: u64, b: u64) {
        if !self.inner.enabled {
            return;
        }
        self.inner.ring.record(Event {
            seq: 0,
            at_micros: self.now(),
            kind,
            fabric,
            lane,
            a,
            b,
            duration_micros: 0,
        });
    }

    /// Records a span event: timestamped at `start_micros`, lasting until
    /// "now".
    pub fn event_span(
        &self,
        kind: EventKind,
        fabric: u16,
        lane: u16,
        a: u64,
        b: u64,
        start_micros: u64,
    ) {
        if !self.inner.enabled {
            return;
        }
        self.inner.ring.record(Event {
            seq: 0,
            at_micros: start_micros,
            kind,
            fabric,
            lane,
            a,
            b,
            duration_micros: self.now().saturating_sub(start_micros),
        });
    }

    /// The retained timeline in sequence order (export-time; allocates).
    pub fn events(&self) -> Vec<Event> {
        self.inner.ring.snapshot()
    }

    /// Ring counters (total recorded vs retained).
    pub fn ring_stats(&self) -> RingStats {
        self.inner.ring.stats()
    }

    // --- Counters ----------------------------------------------------------

    /// The registry's counter bank.
    pub fn counters(&self) -> &CounterBank {
        &self.inner.counters
    }

    /// Adds to a registry counter slot, saturating at `u64::MAX`.
    pub fn counter_add(&self, slot: usize, delta: u64) {
        self.inner.counters.add(slot, delta);
    }

    /// Reads a registry counter slot.
    pub fn counter(&self, slot: usize) -> u64 {
        self.inner.counters.get(slot)
    }

    /// Accumulates into an `f64` registry slot (see
    /// [`CounterBank::float_add`]).
    pub fn float_add(&self, slot: usize, delta: f64) {
        self.inner.counters.float_add(slot, delta);
    }

    /// Reads an `f64` registry slot.
    pub fn float_total(&self, slot: usize) -> f64 {
        self.inner.counters.float_total(slot)
    }
}

/// A live span over one [`Stage`]; records its elapsed time into the stage
/// histogram when [`Span::finish`]ed or dropped.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    stage: Stage,
    start: u64,
    done: bool,
}

impl Span {
    /// The span's start timestamp (clock microseconds).
    pub fn start_micros(&self) -> u64 {
        self.start
    }

    /// Ends the span, records it, and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        self.done = true;
        self.telemetry.record_span(self.stage, self.start)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.telemetry.record_span(self.stage, self.start);
        }
    }
}
