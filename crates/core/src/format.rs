//! The Virtual Bit-Stream binary format (Table I of the paper).
//!
//! A VBS is a header followed by one record per *occupied* cluster (a cluster
//! with at least one route or one configured logic block); empty clusters are
//! simply absent, which is where most of the compression of sparse regions
//! comes from. Every field is bit-packed:
//!
//! | field | width |
//! |---|---|
//! | preamble (version, `k`, `K`, `W`, task width/height, record count) | 69 bits, fixed |
//! | per record: position X, Y (cluster units) | `⌈log2(max(cols, rows))⌉` each |
//! | per record: coding mode | 1 bit (`0` = connection list, `1` = raw fallback) |
//! | per record: logic data | `k² · N_LB` bits |
//! | coded records: route count | `⌈log2(2·W·k²)⌉` bits |
//! | coded records: connections | `2 · M_k` bits each |
//! | raw records: routing sections of the `k²` frames | `k² · (N_raw − N_LB)` bits |
//!
//! Differences with the literal Table I are limited to the fixed preamble
//! (the paper leaves the architecture parameters implicit) and the explicit
//! mode bit for the raw-macro fallback the paper describes in Section III-B;
//! both are documented in `DESIGN.md` and amount to a handful of bits per
//! task.

use crate::bitio::{BitReader, BitWriter};
use crate::cluster::{ClusterGrid, ClusterIo};
use crate::error::VbsError;
use serde::{Deserialize, Serialize};
use vbs_arch::{ArchSpec, Coord};

/// Format version written in the preamble.
pub const FORMAT_VERSION: u8 = 1;

/// Format version of the checksummed framing ([`Vbs::to_bytes_checked`]):
/// the version-1 body followed by a CRC-32 footer over every preceding
/// byte. [`Vbs::from_bytes`] accepts both versions.
pub const FORMAT_VERSION_CHECKED: u8 = 2;

/// One coded connection: the signal enters the cluster at `input` and must
/// reach `output`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Connection {
    /// Where the signal enters (a boundary crossing or a driving pin).
    pub input: ClusterIo,
    /// Where the signal must be delivered.
    pub output: ClusterIo,
}

impl std::fmt::Display for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.input, self.output)
    }
}

/// The routing part of a cluster record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterRoutes {
    /// The abstract connection list (the normal, compressed case).
    Coded(Vec<Connection>),
    /// Raw fallback: the routing sections of the cluster's frames, verbatim
    /// (`k² · (N_raw − N_LB)` bits). Used when the feedback loop cannot find
    /// a decodable connection list or when the list would be larger than the
    /// raw coding.
    Raw(Vec<bool>),
}

impl ClusterRoutes {
    /// Number of coded connections (zero for raw records).
    pub fn route_count(&self) -> usize {
        match self {
            ClusterRoutes::Coded(c) => c.len(),
            ClusterRoutes::Raw(_) => 0,
        }
    }

    /// Whether this record uses the raw fallback.
    pub fn is_raw(&self) -> bool {
        matches!(self, ClusterRoutes::Raw(_))
    }
}

/// One record of the VBS: the configuration of one occupied cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterRecord {
    /// Cluster position within the task, in cluster units.
    pub position: Coord,
    /// Logic data of the `k²` macros (row-major local order), `N_LB` bits
    /// each.
    pub logic: Vec<bool>,
    /// Routing description.
    pub routes: ClusterRoutes,
}

/// A complete Virtual Bit-Stream: the relocatable, compressed configuration
/// of one hardware task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vbs {
    spec: ArchSpec,
    cluster_size: u16,
    width: u16,
    height: u16,
    records: Vec<ClusterRecord>,
}

impl Vbs {
    /// Assembles a VBS from its parts. Intended for the encoder; most users
    /// obtain a [`Vbs`] from [`crate::VbsEncoder::encode`] or
    /// [`Vbs::from_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::InvalidClusterSize`] or
    /// [`VbsError::RecordOutOfTask`] when the parts are inconsistent.
    pub fn new(
        spec: ArchSpec,
        cluster_size: u16,
        width: u16,
        height: u16,
        records: Vec<ClusterRecord>,
    ) -> Result<Self, VbsError> {
        let grid = ClusterGrid::new(spec, cluster_size, width, height)?;
        for record in &records {
            if record.position.x >= grid.cluster_cols() || record.position.y >= grid.cluster_rows()
            {
                return Err(VbsError::RecordOutOfTask {
                    cluster: record.position,
                });
            }
        }
        Ok(Vbs {
            spec,
            cluster_size,
            width,
            height,
            records,
        })
    }

    /// The architecture the stream targets.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Cluster size `k` used by the coding.
    pub const fn cluster_size(&self) -> u16 {
        self.cluster_size
    }

    /// Task width in macros (Table I's "task width").
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Task height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// The records, one per occupied cluster.
    pub fn records(&self) -> &[ClusterRecord] {
        &self.records
    }

    /// The cluster tiling of the task.
    pub fn grid(&self) -> ClusterGrid {
        ClusterGrid::new(self.spec, self.cluster_size, self.width, self.height)
            .expect("validated at construction")
    }

    /// Width of the position fields: `⌈log2(max(cols, rows))⌉`, at least 1.
    pub fn coord_bits(&self) -> u32 {
        let grid = self.grid();
        let m = grid.cluster_cols().max(grid.cluster_rows()) as u32;
        (u32::BITS - m.saturating_sub(1).leading_zeros()).max(1)
    }

    /// Width of the route-count field: `⌈log2(2·W·k²)⌉`, the generalization
    /// of Table I's `⌈log2(2W)⌉` to clusters.
    pub fn route_count_bits(&self) -> u32 {
        let k = self.cluster_size as u32;
        let m = 2 * self.spec.channel_width() as u32 * k * k;
        (u32::BITS - m.saturating_sub(1).leading_zeros()).max(1)
    }

    /// Maximum number of connections a coded record can hold.
    pub fn max_routes_per_record(&self) -> usize {
        (1usize << self.route_count_bits()) - 1
    }

    /// Width of one I/O identifier (`M` for `k = 1`).
    pub fn io_bits(&self) -> u32 {
        ClusterIo::io_bits(&self.spec, self.cluster_size)
    }

    /// Number of logic-data bits per record (`k² · N_LB`).
    pub fn logic_bits_per_record(&self) -> usize {
        let k = self.cluster_size as usize;
        k * k * self.spec.lb_config_bits()
    }

    /// Number of raw routing bits per record (`k² · (N_raw − N_LB)`).
    pub fn raw_routing_bits_per_record(&self) -> usize {
        let k = self.cluster_size as usize;
        k * k * (self.spec.raw_bits_per_macro() - self.spec.lb_config_bits())
    }

    /// Size of the fixed preamble in bits.
    pub const fn preamble_bits() -> usize {
        4 + 8 + 4 + 9 + 12 + 12 + 20
    }

    /// Total size of the serialized stream, in bits.
    pub fn size_bits(&self) -> u64 {
        let mut bits = Self::preamble_bits() as u64;
        let coord = self.coord_bits() as u64;
        let io = self.io_bits() as u64;
        let rc = self.route_count_bits() as u64;
        for record in &self.records {
            bits += 2 * coord + 1 + self.logic_bits_per_record() as u64;
            bits += match &record.routes {
                ClusterRoutes::Coded(connections) => rc + 2 * io * connections.len() as u64,
                ClusterRoutes::Raw(raw) => raw.len() as u64,
            };
        }
        bits
    }

    /// Total size of the serialized stream, in whole bytes (rounded up).
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }

    /// Compression ratio against a raw bit-stream of `raw_bits` bits
    /// (`VBS size / raw size`, the percentage plotted in Figures 4 and 5).
    pub fn compression_ratio(&self, raw_bits: u64) -> f64 {
        self.size_bits() as f64 / raw_bits as f64
    }

    /// Serializes the stream to bytes (format version 1, no checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.body_bytes(FORMAT_VERSION)
    }

    /// Serializes the stream with the checksummed framing (format version
    /// 2): the same bit-packed body, followed by a little-endian CRC-32
    /// footer over every preceding byte. [`Vbs::from_bytes`] verifies the
    /// footer before parsing, so any corruption of a checked stream is
    /// rejected instead of decoding into a different task.
    pub fn to_bytes_checked(&self) -> Vec<u8> {
        let mut bytes = self.body_bytes(FORMAT_VERSION_CHECKED);
        let crc = vbs_bitstream::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    fn body_bytes(&self, version: u8) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(version as u64, 4);
        w.write_bits(self.cluster_size as u64, 8);
        w.write_bits(self.spec.lut_size() as u64, 4);
        w.write_bits(self.spec.channel_width() as u64, 9);
        w.write_bits(self.width as u64, 12);
        w.write_bits(self.height as u64, 12);
        w.write_bits(self.records.len() as u64, 20);

        let coord = self.coord_bits();
        let io = self.io_bits();
        let rc = self.route_count_bits();
        for record in &self.records {
            w.write_bits(record.position.x as u64, coord);
            w.write_bits(record.position.y as u64, coord);
            w.write_bool(record.routes.is_raw());
            debug_assert_eq!(record.logic.len(), self.logic_bits_per_record());
            w.write_bools(record.logic.iter().copied());
            match &record.routes {
                ClusterRoutes::Coded(connections) => {
                    w.write_bits(connections.len() as u64, rc);
                    for c in connections {
                        w.write_bits(c.input.index(&self.spec, self.cluster_size) as u64, io);
                        w.write_bits(c.output.index(&self.spec, self.cluster_size) as u64, io);
                    }
                }
                ClusterRoutes::Raw(raw) => {
                    debug_assert_eq!(raw.len(), self.raw_routing_bits_per_record());
                    w.write_bools(raw.iter().copied());
                }
            }
        }
        w.into_bytes()
    }

    /// Parses a stream serialized by [`Vbs::to_bytes`] or
    /// [`Vbs::to_bytes_checked`] (the version nibble selects the framing;
    /// checked streams have their CRC-32 footer verified before any field
    /// is interpreted).
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Malformed`] on truncated, corrupted or
    /// inconsistent input. Never panics, whatever the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, VbsError> {
        let mut r = BitReader::new(bytes);
        let version = r.read_bits(4)? as u8;
        match version {
            FORMAT_VERSION => Self::parse_body(bytes),
            FORMAT_VERSION_CHECKED => {
                if bytes.len() < 5 {
                    return Err(VbsError::Malformed {
                        reason: "checked stream shorter than its crc footer".to_string(),
                    });
                }
                let (body, footer) = bytes.split_at(bytes.len() - 4);
                let expected = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
                let actual = vbs_bitstream::crc32(body);
                if actual != expected {
                    return Err(VbsError::Malformed {
                        reason: format!(
                            "stream checksum mismatch: footer {expected:#010x}, \
                             contents digest {actual:#010x}"
                        ),
                    });
                }
                Self::parse_body(body)
            }
            _ => Err(VbsError::Malformed {
                reason: format!("unsupported format version {version}"),
            }),
        }
    }

    /// Parses the bit-packed body shared by both framings (the version
    /// nibble has already been validated by [`Vbs::from_bytes`]).
    fn parse_body(bytes: &[u8]) -> Result<Self, VbsError> {
        let mut r = BitReader::new(bytes);
        let _version = r.read_bits(4)?;
        let cluster_size = r.read_bits(8)? as u16;
        let lut_size = r.read_bits(4)? as u8;
        let channel_width = r.read_bits(9)? as u16;
        let width = r.read_bits(12)? as u16;
        let height = r.read_bits(12)? as u16;
        let record_count = r.read_bits(20)? as usize;
        let spec = ArchSpec::new(channel_width, lut_size).map_err(|e| VbsError::Malformed {
            reason: format!("invalid architecture in preamble: {e}"),
        })?;

        let template = Vbs::new(spec, cluster_size, width, height, Vec::new())?;
        let coord = template.coord_bits();
        let io = template.io_bits();
        let rc = template.route_count_bits();
        let logic_bits = template.logic_bits_per_record();
        let raw_bits = template.raw_routing_bits_per_record();

        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let x = r.read_bits(coord)? as u16;
            let y = r.read_bits(coord)? as u16;
            let is_raw = r.read_bool()?;
            let logic = r.read_bools(logic_bits)?;
            let routes = if is_raw {
                ClusterRoutes::Raw(r.read_bools(raw_bits)?)
            } else {
                let count = r.read_bits(rc)? as usize;
                let mut connections = Vec::with_capacity(count);
                for _ in 0..count {
                    let input =
                        ClusterIo::from_index(&spec, cluster_size, r.read_bits(io)? as u32)?;
                    let output =
                        ClusterIo::from_index(&spec, cluster_size, r.read_bits(io)? as u32)?;
                    connections.push(Connection { input, output });
                }
                ClusterRoutes::Coded(connections)
            };
            records.push(ClusterRecord {
                position: Coord::new(x, y),
                logic,
                routes,
            });
        }

        Vbs::new(spec, cluster_size, width, height, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Side;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    fn sample_vbs() -> Vbs {
        let s = spec();
        let logic_bits = s.lb_config_bits();
        let records = vec![
            ClusterRecord {
                position: Coord::new(0, 0),
                logic: vec![false; logic_bits],
                routes: ClusterRoutes::Coded(vec![
                    Connection {
                        input: ClusterIo::Pin { local: 0, pin: 6 },
                        output: ClusterIo::Boundary {
                            side: Side::East,
                            offset: 2,
                        },
                    },
                    Connection {
                        input: ClusterIo::Boundary {
                            side: Side::West,
                            offset: 1,
                        },
                        output: ClusterIo::Pin { local: 0, pin: 0 },
                    },
                ]),
            },
            ClusterRecord {
                position: Coord::new(2, 3),
                logic: (0..logic_bits).map(|i| i % 7 == 0).collect(),
                routes: ClusterRoutes::Raw(vec![true; s.raw_bits_per_macro() - logic_bits]),
            },
        ];
        Vbs::new(s, 1, 4, 4, records).unwrap()
    }

    #[test]
    fn field_widths_match_table_1() {
        let v = sample_vbs();
        // W = 5, L = 7: M = 5 bits, route count on ceil(log2(10)) = 4 bits.
        assert_eq!(v.io_bits(), 5);
        assert_eq!(v.route_count_bits(), 4);
        assert_eq!(v.coord_bits(), 2);
        assert_eq!(v.logic_bits_per_record(), 65);
        assert_eq!(v.raw_routing_bits_per_record(), 284 - 65);
    }

    #[test]
    fn size_accounting_matches_serialized_length() {
        let v = sample_vbs();
        let bytes = v.to_bytes();
        let bits = v.size_bits();
        assert_eq!(bytes.len(), (bits as usize).div_ceil(8));
    }

    #[test]
    fn byte_roundtrip_preserves_everything() {
        let v = sample_vbs();
        let bytes = v.to_bytes();
        let back = Vbs::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let v = sample_vbs();
        let bytes = v.to_bytes();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Vbs::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn corrupted_version_is_rejected() {
        let v = sample_vbs();
        let mut bytes = v.to_bytes();
        bytes[0] ^= 0x0f;
        assert!(matches!(
            Vbs::from_bytes(&bytes),
            Err(VbsError::Malformed { .. })
        ));
    }

    #[test]
    fn checked_roundtrip_preserves_everything() {
        let v = sample_vbs();
        let bytes = v.to_bytes_checked();
        // 4 bits of version difference inside the body, 4 footer bytes.
        assert_eq!(bytes.len(), v.to_bytes().len() + 4);
        assert_eq!(Vbs::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn checked_streams_reject_any_bit_flip() {
        let v = sample_vbs();
        let bytes = v.to_bytes_checked();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                match Vbs::from_bytes(&mutated) {
                    Err(_) => {}
                    // The only acceptable Ok is a bit-identical image.
                    Ok(back) => assert_eq!(back, v, "byte {i} bit {bit} decoded differently"),
                }
            }
        }
    }

    #[test]
    fn checked_streams_reject_truncation() {
        let v = sample_vbs();
        let bytes = v.to_bytes_checked();
        for cut in 0..bytes.len() {
            assert!(
                Vbs::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn records_outside_the_task_are_rejected() {
        let s = spec();
        let record = ClusterRecord {
            position: Coord::new(9, 0),
            logic: vec![false; s.lb_config_bits()],
            routes: ClusterRoutes::Coded(Vec::new()),
        };
        assert!(matches!(
            Vbs::new(s, 1, 4, 4, vec![record]),
            Err(VbsError::RecordOutOfTask { .. })
        ));
    }

    #[test]
    fn compression_ratio_is_size_over_raw() {
        let v = sample_vbs();
        let raw = 16 * spec().raw_bits_per_macro() as u64;
        let ratio = v.compression_ratio(raw);
        assert!(ratio > 0.0 && ratio < 1.0);
        assert!((ratio - v.size_bits() as f64 / raw as f64).abs() < 1e-12);
    }
}
