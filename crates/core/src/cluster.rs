//! Cluster geometry and cluster-level I/O numbering.
//!
//! Section IV-B of the paper aggregates square groups of `k × k` macros into
//! one coding unit, pooling their routing resources: wires that stay inside
//! the cluster disappear from the connection lists, only crossings of the
//! cluster boundary and logic-block pins remain. `k = 1` is the finest grain
//! (one macro per record), whose I/O numbering coincides with
//! [`vbs_arch::MacroIo`].

use crate::error::VbsError;
use serde::{Deserialize, Serialize};
use std::fmt;
use vbs_arch::{ArchSpec, Coord, Side, WireKind, WireRef};

/// A black-box I/O of a `k × k` cluster of macros.
///
/// Index layout (for channel width `W`, `L` pins per macro and cluster size
/// `k`): `0` is the reserved null identifier, `1 ..= 4kW` are boundary
/// crossings (north, east, south, west, each side holding `kW` crossings
/// ordered by position along the side then track), and the remaining `k²·L`
/// identifiers are logic-block pins ordered by local macro (row-major) then
/// pin number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClusterIo {
    /// The reserved "unconnected" identifier.
    Null,
    /// A wire crossing the given boundary of the cluster.
    Boundary {
        /// Which cluster boundary is crossed.
        side: Side,
        /// Position along the side: `macro_offset · W + track`, in `0 .. kW`.
        offset: u16,
    },
    /// A logic-block pin of one of the cluster's macros.
    Pin {
        /// Local macro index within the cluster (row-major), `0 .. k²`.
        local: u16,
        /// Pin number, `0 .. L`.
        pin: u8,
    },
}

impl ClusterIo {
    /// Number of distinct identifiers for a cluster of size `k`:
    /// `4kW + k²L + 1`.
    pub fn io_count(spec: &ArchSpec, cluster_size: u16) -> u32 {
        let k = cluster_size as u32;
        4 * k * spec.channel_width() as u32 + k * k * spec.lb_pins() as u32 + 1
    }

    /// Width in bits of one identifier, `⌈log2(4kW + k²L + 1)⌉`
    /// (the generalization of Table I's `M` to clusters).
    pub fn io_bits(spec: &ArchSpec, cluster_size: u16) -> u32 {
        let count = Self::io_count(spec, cluster_size);
        u32::BITS - (count - 1).leading_zeros()
    }

    /// Encodes this I/O as its index.
    ///
    /// # Panics
    ///
    /// Panics if the offset, local index or pin is out of range.
    pub fn index(&self, spec: &ArchSpec, cluster_size: u16) -> u32 {
        let k = cluster_size as u32;
        let kw = k * spec.channel_width() as u32;
        match *self {
            ClusterIo::Null => 0,
            ClusterIo::Boundary { side, offset } => {
                assert!((offset as u32) < kw, "boundary offset out of range");
                1 + side.index() as u32 * kw + offset as u32
            }
            ClusterIo::Pin { local, pin } => {
                assert!((local as u32) < k * k, "local macro index out of range");
                assert!(pin < spec.lb_pins(), "pin out of range");
                1 + 4 * kw + local as u32 * spec.lb_pins() as u32 + pin as u32
            }
        }
    }

    /// Decodes an index.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::InvalidIo`] when the index is out of range.
    pub fn from_index(spec: &ArchSpec, cluster_size: u16, index: u32) -> Result<Self, VbsError> {
        let count = Self::io_count(spec, cluster_size);
        if index >= count {
            return Err(VbsError::InvalidIo {
                index,
                io_count: count,
            });
        }
        if index == 0 {
            return Ok(ClusterIo::Null);
        }
        let k = cluster_size as u32;
        let kw = k * spec.channel_width() as u32;
        let i = index - 1;
        if i < 4 * kw {
            Ok(ClusterIo::Boundary {
                side: Side::ALL[(i / kw) as usize],
                offset: (i % kw) as u16,
            })
        } else {
            let p = i - 4 * kw;
            Ok(ClusterIo::Pin {
                local: (p / spec.lb_pins() as u32) as u16,
                pin: (p % spec.lb_pins() as u32) as u8,
            })
        }
    }
}

impl fmt::Display for ClusterIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterIo::Null => write!(f, "null"),
            ClusterIo::Boundary { side, offset } => write!(f, "{side}[{offset}]"),
            ClusterIo::Pin { local, pin } => write!(f, "m{local}.pin{pin}"),
        }
    }
}

/// The cluster tiling of a task rectangle.
///
/// All coordinates handled here are **task-relative** (the task's lower-left
/// macro is `(0, 0)`), which is what keeps the Virtual Bit-Stream independent
/// of its final position on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterGrid {
    spec: ArchSpec,
    cluster_size: u16,
    width: u16,
    height: u16,
}

impl ClusterGrid {
    /// Creates the cluster tiling of a `width` × `height` task.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::InvalidClusterSize`] if `cluster_size` is zero or
    /// larger than the task's largest dimension.
    pub fn new(
        spec: ArchSpec,
        cluster_size: u16,
        width: u16,
        height: u16,
    ) -> Result<Self, VbsError> {
        if cluster_size == 0 || cluster_size > width.max(height).max(1) {
            return Err(VbsError::InvalidClusterSize { cluster_size });
        }
        Ok(ClusterGrid {
            spec,
            cluster_size,
            width,
            height,
        })
    }

    /// The architecture parameters.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Cluster edge length `k`, in macros.
    pub const fn cluster_size(&self) -> u16 {
        self.cluster_size
    }

    /// Task width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Task height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Number of cluster columns (`⌈width / k⌉`).
    pub fn cluster_cols(&self) -> u16 {
        self.width.div_ceil(self.cluster_size)
    }

    /// Number of cluster rows (`⌈height / k⌉`).
    pub fn cluster_rows(&self) -> u16 {
        self.height.div_ceil(self.cluster_size)
    }

    /// The cluster containing the macro at task-relative `at`.
    pub fn cluster_of(&self, at: Coord) -> Coord {
        Coord::new(at.x / self.cluster_size, at.y / self.cluster_size)
    }

    /// The local macro index (row-major within the cluster) of `at`.
    pub fn local_index(&self, at: Coord) -> u16 {
        let lx = at.x % self.cluster_size;
        let ly = at.y % self.cluster_size;
        ly * self.cluster_size + lx
    }

    /// The task-relative macro coordinate of local index `local` within
    /// `cluster`, or `None` if that macro falls outside the task (edge
    /// clusters may be partial).
    pub fn macro_at(&self, cluster: Coord, local: u16) -> Option<Coord> {
        let k = self.cluster_size;
        let lx = local % k;
        let ly = local / k;
        let x = cluster.x * k + lx;
        let y = cluster.y * k + ly;
        (x < self.width && y < self.height).then_some(Coord::new(x, y))
    }

    /// Classifies a wire (task-relative) as seen from `cluster`:
    /// `Some(Boundary { .. })` if it crosses that cluster's boundary,
    /// `None` if it is interior to the cluster or does not touch it.
    pub fn wire_io(&self, cluster: Coord, wire: WireRef) -> Option<ClusterIo> {
        let [owner, fwd] = wire.touching_macros();
        let owner_cluster = self.cluster_of(owner);
        // `fwd` may lie outside the task; its cluster is still well defined
        // for the comparison (it just never equals `cluster` in that case
        // unless it is genuinely inside).
        let fwd_in_task = fwd.x < self.width && fwd.y < self.height;
        let fwd_cluster = self.cluster_of(fwd);
        let k = self.cluster_size;
        if owner_cluster == cluster && (!fwd_in_task || fwd_cluster != cluster) {
            // The wire leaves the cluster through its east/north boundary.
            let (side, offset) = match wire.kind {
                WireKind::Horizontal => (
                    Side::East,
                    (owner.y % k) * self.spec.channel_width() + wire.track,
                ),
                WireKind::Vertical => (
                    Side::North,
                    (owner.x % k) * self.spec.channel_width() + wire.track,
                ),
            };
            Some(ClusterIo::Boundary { side, offset })
        } else if fwd_in_task && fwd_cluster == cluster && owner_cluster != cluster {
            let (side, offset) = match wire.kind {
                WireKind::Horizontal => (
                    Side::West,
                    (fwd.y % k) * self.spec.channel_width() + wire.track,
                ),
                WireKind::Vertical => (
                    Side::South,
                    (fwd.x % k) * self.spec.channel_width() + wire.track,
                ),
            };
            Some(ClusterIo::Boundary { side, offset })
        } else {
            None
        }
    }

    /// Whether a wire (task-relative) touches `cluster` at all, either as an
    /// interior wire or as a boundary crossing.
    pub fn wire_touches(&self, cluster: Coord, wire: WireRef) -> bool {
        let [owner, fwd] = wire.touching_macros();
        let fwd_in_task = fwd.x < self.width && fwd.y < self.height;
        self.cluster_of(owner) == cluster || (fwd_in_task && self.cluster_of(fwd) == cluster)
    }

    /// The task-relative wire corresponding to a boundary I/O of `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::DanglingBoundary`] when the wire would lie outside
    /// the task (e.g. the west boundary of the leftmost cluster column).
    pub fn boundary_wire(
        &self,
        cluster: Coord,
        side: Side,
        offset: u16,
    ) -> Result<WireRef, VbsError> {
        let k = self.cluster_size;
        let w = self.spec.channel_width();
        let along = offset / w;
        let track = offset % w;
        let dangling = || VbsError::DanglingBoundary {
            cluster,
            io: format!("{side}[{offset}]"),
        };
        if along >= k {
            return Err(dangling());
        }
        let wire = match side {
            Side::East => {
                let x = cluster.x * k + (k - 1).min(self.width - 1 - cluster.x * k);
                let y = cluster.y * k + along;
                WireRef::horizontal(x, y, track)
            }
            Side::North => {
                let x = cluster.x * k + along;
                let y = cluster.y * k + (k - 1).min(self.height - 1 - cluster.y * k);
                WireRef::vertical(x, y, track)
            }
            Side::West => {
                let x = (cluster.x * k).checked_sub(1).ok_or_else(dangling)?;
                let y = cluster.y * k + along;
                WireRef::horizontal(x, y, track)
            }
            Side::South => {
                let x = cluster.x * k + along;
                let y = (cluster.y * k).checked_sub(1).ok_or_else(dangling)?;
                WireRef::vertical(x, y, track)
            }
        };
        if wire.owner.x >= self.width || wire.owner.y >= self.height {
            return Err(dangling());
        }
        Ok(wire)
    }

    /// The pin I/O of the macro at task-relative `at`, pin `pin`, as seen
    /// from its own cluster.
    pub fn pin_io(&self, at: Coord, pin: u8) -> ClusterIo {
        ClusterIo::Pin {
            local: self.local_index(at),
            pin,
        }
    }

    /// Iterates over the cluster coordinates of the tiling, row-major.
    pub fn iter_clusters(&self) -> impl Iterator<Item = Coord> + '_ {
        let cols = self.cluster_cols();
        (0..self.cluster_rows()).flat_map(move |cy| (0..cols).map(move |cx| Coord::new(cx, cy)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example() // W = 5, L = 7
    }

    #[test]
    fn io_count_matches_macroio_for_k1() {
        let s = spec();
        assert_eq!(ClusterIo::io_count(&s, 1), s.macro_io_count());
        assert_eq!(ClusterIo::io_bits(&s, 1), s.io_index_bits());
    }

    #[test]
    fn io_index_roundtrip_for_various_cluster_sizes() {
        let s = spec();
        for k in [1u16, 2, 3, 4] {
            for idx in 0..ClusterIo::io_count(&s, k) {
                let io = ClusterIo::from_index(&s, k, idx).unwrap();
                assert_eq!(io.index(&s, k), idx, "k={k} idx={idx}");
            }
            assert!(ClusterIo::from_index(&s, k, ClusterIo::io_count(&s, k)).is_err());
        }
    }

    #[test]
    fn cluster_of_and_local_index() {
        let g = ClusterGrid::new(spec(), 3, 10, 10).unwrap();
        assert_eq!(g.cluster_of(Coord::new(7, 4)), Coord::new(2, 1));
        assert_eq!(g.local_index(Coord::new(7, 4)), 3 + 1);
        assert_eq!(g.macro_at(Coord::new(2, 1), 4), Some(Coord::new(7, 4)));
        assert_eq!(g.cluster_cols(), 4);
        assert_eq!(g.cluster_rows(), 4);
        // Partial edge cluster: local index 8 of cluster (3, 3) is (11, 11),
        // outside a 10x10 task.
        assert_eq!(g.macro_at(Coord::new(3, 3), 8), None);
    }

    #[test]
    fn invalid_cluster_sizes_are_rejected() {
        assert!(ClusterGrid::new(spec(), 0, 8, 8).is_err());
        assert!(ClusterGrid::new(spec(), 9, 8, 8).is_err());
        assert!(ClusterGrid::new(spec(), 8, 8, 8).is_ok());
    }

    #[test]
    fn wire_io_distinguishes_interior_and_boundary() {
        let g = ClusterGrid::new(spec(), 2, 6, 6).unwrap();
        let c = Coord::new(0, 0); // macros (0..2, 0..2)
                                  // Horizontal wire from (0,0) to (1,0): interior.
        assert_eq!(g.wire_io(c, WireRef::horizontal(0, 0, 1)), None);
        assert!(g.wire_touches(c, WireRef::horizontal(0, 0, 1)));
        // Horizontal wire from (1,1) to (2,1): east boundary, offset = 1*5+3.
        assert_eq!(
            g.wire_io(c, WireRef::horizontal(1, 1, 3)),
            Some(ClusterIo::Boundary {
                side: Side::East,
                offset: 8
            })
        );
        // Same wire seen from cluster (1, 0): west boundary.
        assert_eq!(
            g.wire_io(Coord::new(1, 0), WireRef::horizontal(1, 1, 3)),
            Some(ClusterIo::Boundary {
                side: Side::West,
                offset: 8
            })
        );
        // A wire that does not touch the cluster.
        assert_eq!(g.wire_io(c, WireRef::vertical(4, 4, 0)), None);
        assert!(!g.wire_touches(c, WireRef::vertical(4, 4, 0)));
    }

    #[test]
    fn boundary_wire_roundtrips_with_wire_io() {
        let g = ClusterGrid::new(spec(), 2, 6, 6).unwrap();
        for cluster in g.iter_clusters() {
            for side in Side::ALL {
                for offset in 0..(2 * 5) {
                    match g.boundary_wire(cluster, side, offset) {
                        Ok(wire) => {
                            assert_eq!(
                                g.wire_io(cluster, wire),
                                Some(ClusterIo::Boundary { side, offset }),
                                "cluster {cluster} {side}[{offset}] -> {wire}"
                            );
                        }
                        Err(VbsError::DanglingBoundary { .. }) => {
                            // Only allowed on the task edge.
                            let on_edge = (side == Side::West && cluster.x == 0)
                                || (side == Side::South && cluster.y == 0)
                                || (side == Side::East && cluster.x == g.cluster_cols() - 1)
                                || (side == Side::North && cluster.y == g.cluster_rows() - 1);
                            assert!(on_edge, "unexpected dangling boundary inside the task");
                        }
                        Err(other) => panic!("unexpected error {other}"),
                    }
                }
            }
        }
    }

    #[test]
    fn k1_boundary_wires_match_macro_level_view() {
        let g = ClusterGrid::new(spec(), 1, 4, 4).unwrap();
        let at = Coord::new(2, 1);
        let east = g.boundary_wire(at, Side::East, 3).unwrap();
        assert_eq!(east, WireRef::horizontal(2, 1, 3));
        let west = g.boundary_wire(at, Side::West, 3).unwrap();
        assert_eq!(west, WireRef::horizontal(1, 1, 3));
        let south = g.boundary_wire(at, Side::South, 0).unwrap();
        assert_eq!(south, WireRef::vertical(2, 0, 0));
    }
}
