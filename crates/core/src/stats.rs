//! Size and composition statistics of a Virtual Bit-Stream.

use crate::format::{ClusterRoutes, Vbs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a Virtual Bit-Stream's composition, used by the experiment
/// harnesses to report the Figure 4 / Figure 5 numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VbsStats {
    /// Cluster size `k` of the coding.
    pub cluster_size: u16,
    /// Number of records (occupied clusters).
    pub records: usize,
    /// Number of records using the connection-list coding.
    pub coded_records: usize,
    /// Number of records that fell back to raw coding.
    pub raw_records: usize,
    /// Total number of coded connections.
    pub connections: usize,
    /// Serialized VBS size in bits.
    pub vbs_bits: u64,
    /// Raw bit-stream size of the same task in bits.
    pub raw_bits: u64,
}

impl VbsStats {
    /// Computes the statistics of `vbs` against the raw size of the same task
    /// (`width · height · N_raw` bits).
    pub fn of(vbs: &Vbs) -> Self {
        let raw_bits =
            vbs.width() as u64 * vbs.height() as u64 * vbs.spec().raw_bits_per_macro() as u64;
        let mut coded_records = 0;
        let mut raw_records = 0;
        let mut connections = 0;
        for record in vbs.records() {
            match &record.routes {
                ClusterRoutes::Coded(c) => {
                    coded_records += 1;
                    connections += c.len();
                }
                ClusterRoutes::Raw(_) => raw_records += 1,
            }
        }
        VbsStats {
            cluster_size: vbs.cluster_size(),
            records: vbs.records().len(),
            coded_records,
            raw_records,
            connections,
            vbs_bits: vbs.size_bits(),
            raw_bits,
        }
    }

    /// Compression ratio `VBS size / raw size` (the percentage of Figures 4
    /// and 5; smaller is better).
    pub fn ratio(&self) -> f64 {
        self.vbs_bits as f64 / self.raw_bits as f64
    }

    /// Compression factor `raw size / VBS size` (the "2.5×" / "10×" numbers
    /// quoted in the paper's abstract and conclusion).
    pub fn factor(&self) -> f64 {
        self.raw_bits as f64 / self.vbs_bits as f64
    }

    /// Average number of coded connections per coded record.
    pub fn connections_per_record(&self) -> f64 {
        if self.coded_records == 0 {
            0.0
        } else {
            self.connections as f64 / self.coded_records as f64
        }
    }
}

impl fmt::Display for VbsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={}: {} records ({} coded, {} raw), {} connections, {} bits ({:.1}% of raw, {:.2}x)",
            self.cluster_size,
            self.records,
            self.coded_records,
            self.raw_records,
            self.connections,
            self.vbs_bits,
            100.0 * self.ratio(),
            self.factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterIo;
    use crate::format::{ClusterRecord, Connection};
    use vbs_arch::{ArchSpec, Coord, Side};

    #[test]
    fn stats_count_records_and_connections() {
        let spec = ArchSpec::paper_example();
        let records = vec![
            ClusterRecord {
                position: Coord::new(0, 0),
                logic: vec![false; spec.lb_config_bits()],
                routes: ClusterRoutes::Coded(vec![Connection {
                    input: ClusterIo::Boundary {
                        side: Side::West,
                        offset: 0,
                    },
                    output: ClusterIo::Boundary {
                        side: Side::East,
                        offset: 0,
                    },
                }]),
            },
            ClusterRecord {
                position: Coord::new(1, 0),
                logic: vec![false; spec.lb_config_bits()],
                routes: ClusterRoutes::Raw(vec![
                    false;
                    spec.raw_bits_per_macro() - spec.lb_config_bits()
                ]),
            },
        ];
        let vbs = Vbs::new(spec, 1, 3, 3, records).unwrap();
        let stats = VbsStats::of(&vbs);
        assert_eq!(stats.records, 2);
        assert_eq!(stats.coded_records, 1);
        assert_eq!(stats.raw_records, 1);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.raw_bits, 9 * 284);
        assert!(stats.ratio() < 1.0);
        assert!(stats.factor() > 1.0);
        assert!(stats.to_string().contains("k=1"));
    }
}
