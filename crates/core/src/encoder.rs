//! The `vbsgen` backend: encoding a placed-and-routed task into a Virtual
//! Bit-Stream.
//!
//! The encoder walks every route tree, assigns each programmed switch to the
//! cluster that owns it, and abstracts the per-cluster routing into a
//! connection list: for every connected piece of a net inside a cluster it
//! emits one connection from the piece's entry I/O to every other black-box
//! I/O the piece touches (boundary-crossing wires and logic-block pins).
//! Wires that stay strictly inside a cluster never appear in the list — that
//! is the clustering gain of Section IV-B.
//!
//! Following Section III-B, every coded record goes through the offline
//! **feedback loop**: it is decoded with the same de-virtualization algorithm
//! the run-time controller uses, and is only kept if the expansion succeeds
//! and stays within the wires the original routing allocated to the cluster.
//! Otherwise the connection list is re-ordered and re-tried, and as a last
//! resort the record falls back to the raw coding of the cluster (which also
//! happens when the list would be larger than the raw frames).

use crate::cluster::{ClusterGrid, ClusterIo};
use crate::decoder::{DecodeScratch, Devirtualizer};
use crate::error::VbsError;
use crate::format::{ClusterRecord, ClusterRoutes, Connection, Vbs};
use std::collections::{HashMap, HashSet};
use vbs_arch::{ArchSpec, Coord, WireRef};
use vbs_bitstream::{edge_to_switch, TaskBitstream};
use vbs_route::{Routing, RrNode};

/// The Virtual Bit-Stream encoder (the paper's `vbsgen`).
#[derive(Debug, Clone)]
pub struct VbsEncoder {
    spec: ArchSpec,
    cluster_size: u16,
}

impl VbsEncoder {
    /// Creates an encoder for the given architecture and cluster size
    /// (`cluster_size = 1` is the finest grain, one macro per record).
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::InvalidClusterSize`] when `cluster_size` is zero.
    pub fn new(spec: ArchSpec, cluster_size: u16) -> Result<Self, VbsError> {
        if cluster_size == 0 {
            return Err(VbsError::InvalidClusterSize { cluster_size });
        }
        Ok(VbsEncoder { spec, cluster_size })
    }

    /// The cluster size this encoder produces.
    pub const fn cluster_size(&self) -> u16 {
        self.cluster_size
    }

    /// Encodes a task whose placement region starts at the device origin
    /// (the common case when the whole device is the task).
    ///
    /// # Errors
    ///
    /// See [`VbsEncoder::encode_with_origin`].
    pub fn encode(&self, raw: &TaskBitstream, routing: &Routing) -> Result<Vbs, VbsError> {
        self.encode_with_origin(raw, routing, Coord::new(0, 0))
    }

    /// Encodes a task whose raw bit-stream is `raw` and whose routing was
    /// computed at device-absolute coordinates; `origin` is the lower-left
    /// corner of the task on that device, used to translate the routing into
    /// task-relative coordinates.
    ///
    /// # Errors
    ///
    /// * [`VbsError::EncoderInputMismatch`] if the raw bit-stream and the
    ///   routing target different architectures;
    /// * [`VbsError::InvalidClusterSize`] if the cluster does not fit the
    ///   task;
    /// * any decoding error that survives the feedback loop (which indicates
    ///   a bug rather than an input problem, since raw fallback always
    ///   succeeds).
    pub fn encode_with_origin(
        &self,
        raw: &TaskBitstream,
        routing: &Routing,
        origin: Coord,
    ) -> Result<Vbs, VbsError> {
        if raw.spec() != &self.spec {
            return Err(VbsError::EncoderInputMismatch {
                reason: "raw bit-stream architecture differs from the encoder's".into(),
            });
        }
        if routing.spec() != &self.spec {
            return Err(VbsError::EncoderInputMismatch {
                reason: "routing channel width differs from the encoder's architecture".into(),
            });
        }
        let width = raw.width();
        let height = raw.height();
        let grid = ClusterGrid::new(self.spec, self.cluster_size, width, height)?;

        // 1. Group the programmed switches and the wires they touch by
        //    cluster, net by net.
        let geometry = vbs_arch::Device::new(self.spec, width.max(1), height.max(1))?;
        let mut per_cluster: HashMap<Coord, ClusterNets> = HashMap::new();
        for (net_id, tree) in routing.iter_trees() {
            // Parent relation in task-relative coordinates.
            let edges: Vec<(RrNode, RrNode)> = tree
                .iter_edges()
                .map(|(p, c)| (rel_node(p, origin), rel_node(c, origin)))
                .collect();
            if edges.is_empty() {
                continue;
            }
            let mut parent: HashMap<RrNode, RrNode> = HashMap::new();
            for (p, c) in &edges {
                parent.insert(*c, *p);
            }
            // Assign each edge to the cluster owning its switch.
            let mut cluster_edges: HashMap<Coord, Vec<(RrNode, RrNode)>> = HashMap::new();
            for (p, c) in &edges {
                let switch = edge_to_switch(&geometry, *p, *c).map_err(VbsError::Bitstream)?;
                let cluster = grid.cluster_of(switch.site());
                cluster_edges.entry(cluster).or_default().push((*p, *c));
            }
            for (cluster, edges) in cluster_edges {
                let entry = per_cluster.entry(cluster).or_default();
                entry.add_component_connections(&grid, cluster, &edges, &parent, net_id.index());
                for (p, c) in &edges {
                    for node in [p, c] {
                        if let RrNode::Wire(w) = node {
                            if grid.wire_touches(cluster, *w) {
                                entry.used_wires.insert(*w);
                            }
                        }
                    }
                }
            }
        }

        // 2. Build one record per occupied cluster, applying the size bound
        //    and the decode feedback loop.
        let template = Vbs::new(self.spec, self.cluster_size, width, height, Vec::new())?;
        let devirt_scratch = Vbs::new(self.spec, self.cluster_size, width, height, Vec::new())?;
        let devirtualizer = Devirtualizer::new(&devirt_scratch)?;
        let mut scratch = TaskBitstream::empty(self.spec, width.max(1), height.max(1));
        // One decode arena shared by every feedback-loop check of this
        // encode, so candidate verification stays allocation-free.
        let mut decode_scratch = DecodeScratch::new();

        let mut records: Vec<ClusterRecord> = Vec::new();
        for cluster in grid.iter_clusters() {
            let nets = per_cluster.remove(&cluster);
            let logic = self.logic_bits(&grid, raw, cluster);
            let has_logic = logic.iter().any(|&b| b);
            let connections = nets
                .as_ref()
                .map(|n| n.connections.clone())
                .unwrap_or_default();
            if connections.is_empty() && !has_logic {
                // Empty cluster: no record at all (this is where sparse
                // regions gain the most).
                continue;
            }

            let coded_bits = template.route_count_bits() as usize
                + 2 * template.io_bits() as usize * connections.len();
            let raw_bits = template.raw_routing_bits_per_record();
            let mut routes = if connections.is_empty() {
                ClusterRoutes::Coded(Vec::new())
            } else if connections.len() > template.max_routes_per_record() || coded_bits >= raw_bits
            {
                self.raw_routes(&grid, raw, cluster)
            } else {
                // Feedback loop: decode the candidate record and verify it
                // stays within the wires the original routing used here.
                let allowed = nets.as_ref().map(|n| &n.used_wires);
                let ordered = order_connections(connections.clone());
                let candidates = [connections.clone(), ordered];
                let mut accepted = None;
                for candidate in candidates {
                    let record = ClusterRecord {
                        position: cluster,
                        logic: logic.clone(),
                        routes: ClusterRoutes::Coded(candidate.clone()),
                    };
                    match devirtualizer.decode_record_with(
                        &record,
                        &mut scratch,
                        &mut decode_scratch,
                    ) {
                        Ok(()) => {
                            let claimed = decode_scratch.claimed_wires();
                            let safe = match allowed {
                                Some(allowed) => claimed.iter().all(|w| {
                                    grid.wire_io(cluster, *w).is_none() || allowed.contains(w)
                                }),
                                None => claimed.is_empty(),
                            };
                            if safe {
                                accepted = Some(candidate);
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                match accepted {
                    Some(connections) => ClusterRoutes::Coded(connections),
                    None => self.raw_routes(&grid, raw, cluster),
                }
            };

            // Final guard: never let a coded record be larger than raw.
            if let ClusterRoutes::Coded(c) = &routes {
                let bits = template.route_count_bits() as usize
                    + 2 * template.io_bits() as usize * c.len();
                if bits >= raw_bits && !c.is_empty() {
                    routes = self.raw_routes(&grid, raw, cluster);
                }
            }

            records.push(ClusterRecord {
                position: cluster,
                logic,
                routes,
            });
        }

        Vbs::new(self.spec, self.cluster_size, width, height, records)
    }

    /// Collects the logic bits of a cluster from the raw frames.
    fn logic_bits(&self, grid: &ClusterGrid, raw: &TaskBitstream, cluster: Coord) -> Vec<bool> {
        let k = self.cluster_size as usize;
        let lb = self.spec.lb_config_bits();
        let mut bits = vec![false; k * k * lb];
        for local in 0..(k * k) {
            if let Some(site) = grid.macro_at(cluster, local as u16) {
                for (i, b) in raw.frame(site).logic_bits().enumerate() {
                    bits[local * lb + i] = b;
                }
            }
        }
        bits
    }

    /// The raw fallback payload of a cluster: the routing sections of its
    /// frames, verbatim.
    fn raw_routes(&self, grid: &ClusterGrid, raw: &TaskBitstream, cluster: Coord) -> ClusterRoutes {
        let k = self.cluster_size as usize;
        let lb = self.spec.lb_config_bits();
        let per_macro = self.spec.raw_bits_per_macro() - lb;
        let mut bits = vec![false; k * k * per_macro];
        for local in 0..(k * k) {
            if let Some(site) = grid.macro_at(cluster, local as u16) {
                let frame = raw.frame(site);
                for i in 0..per_macro {
                    bits[local * per_macro + i] = frame.bit(lb + i);
                }
            }
        }
        ClusterRoutes::Raw(bits)
    }
}

/// Accumulated routing information of one cluster during encoding.
#[derive(Debug, Default)]
struct ClusterNets {
    connections: Vec<Connection>,
    used_wires: HashSet<WireRef>,
}

impl ClusterNets {
    /// Adds the connections of one net's presence inside `cluster`:
    /// one connection from each connected component's entry I/O to every
    /// other black-box I/O the component touches.
    fn add_component_connections(
        &mut self,
        grid: &ClusterGrid,
        cluster: Coord,
        edges: &[(RrNode, RrNode)],
        parent: &HashMap<RrNode, RrNode>,
        _net: usize,
    ) {
        // Adjacency restricted to this cluster's edges.
        let mut adjacency: HashMap<RrNode, Vec<RrNode>> = HashMap::new();
        for (p, c) in edges {
            adjacency.entry(*p).or_default().push(*c);
            adjacency.entry(*c).or_default().push(*p);
        }
        let mut nodes: Vec<RrNode> = adjacency.keys().copied().collect();
        nodes.sort_unstable();

        let edge_set: HashSet<(RrNode, RrNode)> = edges.iter().copied().collect();
        let mut visited: HashSet<RrNode> = HashSet::new();
        for &start in &nodes {
            if visited.contains(&start) {
                continue;
            }
            // Flood the component.
            let mut component = vec![start];
            visited.insert(start);
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                for &next in adjacency.get(&n).into_iter().flatten() {
                    if visited.insert(next) {
                        component.push(next);
                        stack.push(next);
                    }
                }
            }
            component.sort_unstable();

            // The entry of the component: the node whose tree parent is not
            // reached through an edge of this cluster (or the net source).
            let root = component
                .iter()
                .copied()
                .find(|n| match parent.get(n) {
                    Some(p) => !edge_set.contains(&(*p, *n)) && !edge_set.contains(&(*n, *p)),
                    None => true,
                })
                .unwrap_or(component[0]);

            // Every component node that is a black-box I/O gets one
            // connection from its nearest I/O ancestor within the component
            // (often the entry itself). Interior wires never appear, which is
            // the clustering gain; preserving the ancestor relation keeps the
            // branching structure of the original tree, so the
            // de-virtualization reproduces it faithfully.
            let in_component: HashSet<RrNode> = component.iter().copied().collect();
            let nearest_io_ancestor = |mut node: RrNode| -> Option<ClusterIo> {
                loop {
                    let p = *parent.get(&node)?;
                    if !in_component.contains(&p) {
                        return None;
                    }
                    if let Some(io) = node_io(grid, cluster, p) {
                        return Some(io);
                    }
                    node = p;
                }
            };
            let root_io = node_io(grid, cluster, root);
            let mut outputs: Vec<Connection> = Vec::new();
            for &node in &component {
                if node == root {
                    continue;
                }
                let Some(io) = node_io(grid, cluster, node) else {
                    continue;
                };
                let input = nearest_io_ancestor(node).or(root_io);
                if let Some(input) = input {
                    outputs.push(Connection { input, output: io });
                }
            }
            // Boundary outputs first so the decoder allocates the shared
            // wires before hooking pins through them.
            self.connections.extend(order_connections(outputs));
        }
    }
}

/// Maps a task-relative routing node to the black-box I/O of `cluster` it
/// represents, or `None` for wires interior to the cluster.
fn node_io(grid: &ClusterGrid, cluster: Coord, node: RrNode) -> Option<ClusterIo> {
    match node {
        RrNode::Pin { site, pin } => {
            (grid.cluster_of(site) == cluster).then(|| grid.pin_io(site, pin))
        }
        RrNode::Wire(w) => grid.wire_io(cluster, w),
    }
}

/// Canonical connection order: boundary-to-boundary first, then boundary
/// destinations, then pins; ties broken by index so the order (and hence the
/// stream) is deterministic.
fn order_connections(mut connections: Vec<Connection>) -> Vec<Connection> {
    fn rank(c: &Connection) -> u8 {
        match (&c.input, &c.output) {
            (ClusterIo::Boundary { .. }, ClusterIo::Boundary { .. }) => 0,
            (_, ClusterIo::Boundary { .. }) => 1,
            (ClusterIo::Boundary { .. }, _) => 2,
            _ => 3,
        }
    }
    connections.sort_by(|a, b| {
        rank(a)
            .cmp(&rank(b))
            .then_with(|| format!("{a}").cmp(&format!("{b}")))
    });
    connections
}

/// Translates a device-absolute routing node into task-relative coordinates.
fn rel_node(node: RrNode, origin: Coord) -> RrNode {
    match node {
        RrNode::Pin { site, pin } => RrNode::Pin {
            site: Coord::new(site.x - origin.x, site.y - origin.y),
            pin,
        },
        RrNode::Wire(w) => RrNode::Wire(WireRef {
            kind: w.kind,
            owner: Coord::new(w.owner.x - origin.x, w.owner.y - origin.y),
            track: w.track,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decode;
    use vbs_arch::{ArchSpec, Device};
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};
    use vbs_route::{route, RouterConfig};

    fn flow(luts: usize, grid: u16, w: u16, seed: u64) -> (Device, TaskBitstream, Routing) {
        let netlist = SyntheticSpec::new("enc", luts, 5, 5)
            .with_seed(seed)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(w, 6).unwrap(), grid, grid).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(seed)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        let raw =
            vbs_bitstream::generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
        (device, raw, routing)
    }

    #[test]
    fn encoding_compresses_and_decodes_to_consistent_bits() {
        let (device, raw, routing) = flow(30, 8, 10, 1);
        let encoder = VbsEncoder::new(*device.spec(), 1).unwrap();
        let vbs = encoder.encode(&raw, &routing).unwrap();
        assert!(
            vbs.size_bits() < raw.size_bits(),
            "VBS ({}) should be smaller than raw ({})",
            vbs.size_bits(),
            raw.size_bits()
        );
        let decoded = decode(&vbs).unwrap();
        assert_eq!(decoded.width(), raw.width());
        assert_eq!(decoded.height(), raw.height());
        // The finest grain decode is fully forced, so the frames match the
        // original raw bit-stream exactly.
        assert_eq!(decoded.diff_count(&raw).unwrap(), 0);
    }

    #[test]
    fn cluster_sizes_reduce_connection_counts() {
        let (device, raw, routing) = flow(40, 9, 10, 2);
        let fine = VbsEncoder::new(*device.spec(), 1)
            .unwrap()
            .encode(&raw, &routing)
            .unwrap();
        let coarse = VbsEncoder::new(*device.spec(), 3)
            .unwrap()
            .encode(&raw, &routing)
            .unwrap();
        let count = |v: &Vbs| -> usize { v.records().iter().map(|r| r.routes.route_count()).sum() };
        assert!(
            count(&coarse) < count(&fine),
            "clustering must internalize connections ({} !< {})",
            count(&coarse),
            count(&fine)
        );
        // Clustered streams must still decode.
        decode(&coarse).unwrap();
    }

    #[test]
    fn encoded_stream_roundtrips_through_bytes() {
        let (device, raw, routing) = flow(25, 8, 10, 3);
        let vbs = VbsEncoder::new(*device.spec(), 2)
            .unwrap()
            .encode(&raw, &routing)
            .unwrap();
        let back = Vbs::from_bytes(&vbs.to_bytes()).unwrap();
        assert_eq!(vbs, back);
    }

    #[test]
    fn mismatched_architectures_are_rejected() {
        let (device, raw, routing) = flow(20, 8, 10, 4);
        let other = ArchSpec::new(12, 6).unwrap();
        let encoder = VbsEncoder::new(other, 1).unwrap();
        assert!(matches!(
            encoder.encode(&raw, &routing),
            Err(VbsError::EncoderInputMismatch { .. })
        ));
        assert!(VbsEncoder::new(*device.spec(), 0).is_err());
    }

    #[test]
    fn empty_clusters_produce_no_records() {
        let (device, raw, routing) = flow(12, 9, 10, 5);
        let vbs = VbsEncoder::new(*device.spec(), 1)
            .unwrap()
            .encode(&raw, &routing)
            .unwrap();
        assert!(
            vbs.records().len() < 81,
            "an almost-empty task must skip empty macros"
        );
        assert!(!vbs.records().is_empty());
    }

    #[test]
    fn order_connections_prefers_boundary_destinations() {
        use vbs_arch::Side;
        let pin = ClusterIo::Pin { local: 0, pin: 0 };
        let east = ClusterIo::Boundary {
            side: Side::East,
            offset: 0,
        };
        let west = ClusterIo::Boundary {
            side: Side::West,
            offset: 0,
        };
        let ordered = order_connections(vec![
            Connection {
                input: west,
                output: pin,
            },
            Connection {
                input: west,
                output: east,
            },
        ]);
        assert_eq!(ordered[0].output, east);
        assert_eq!(ordered[1].output, pin);
    }
}
