//! Bit-granular serialization used by the VBS binary format.
//!
//! The VBS packs fields of arbitrary widths back to back (Table I of the
//! paper); these helpers write and read such fields LSB-first into a byte
//! vector.

use crate::error::VbsError;

/// Writes variable-width bit fields into a growing byte buffer, LSB-first.
///
/// ```
/// use vbs_core::bitio::{BitReader, BitWriter};
/// # fn main() -> Result<(), vbs_core::VbsError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0x2a, 7);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(7)?, 0x2a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends the `width` low-order bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} too large");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        for i in 0..width {
            let bit = (value >> i) & 1 == 1;
            self.write_bool(bit);
        }
    }

    /// Appends a single bit.
    pub fn write_bool(&mut self, bit: bool) {
        if self.bit_len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let idx = self.bit_len / 8;
            self.bytes[idx] |= 1 << (self.bit_len % 8);
        }
        self.bit_len += 1;
    }

    /// Appends a sequence of bits.
    pub fn write_bools(&mut self, bits: impl IntoIterator<Item = bool>) {
        for b in bits {
            self.write_bool(b);
        }
    }

    /// Finishes writing and returns the packed bytes (the last byte is
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads variable-width bit fields from a byte slice, LSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.cursor
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.cursor
    }

    /// Reads a `width`-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Malformed`] when fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, VbsError> {
        if width as usize > self.remaining() {
            return Err(VbsError::Malformed {
                reason: format!(
                    "unexpected end of stream: wanted {width} bits, {} remain",
                    self.remaining()
                ),
            });
        }
        let mut value = 0u64;
        for i in 0..width {
            if self.read_bool_unchecked() {
                value |= 1 << i;
            }
        }
        Ok(value)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Malformed`] at end of stream.
    pub fn read_bool(&mut self) -> Result<bool, VbsError> {
        if self.remaining() == 0 {
            return Err(VbsError::Malformed {
                reason: "unexpected end of stream".into(),
            });
        }
        Ok(self.read_bool_unchecked())
    }

    /// Reads `count` bits into a vector of booleans.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Malformed`] when fewer than `count` bits remain.
    pub fn read_bools(&mut self, count: usize) -> Result<Vec<bool>, VbsError> {
        if count > self.remaining() {
            return Err(VbsError::Malformed {
                reason: format!(
                    "unexpected end of stream: wanted {count} bits, {} remain",
                    self.remaining()
                ),
            });
        }
        Ok((0..count).map(|_| self.read_bool_unchecked()).collect())
    }

    fn read_bool_unchecked(&mut self) -> bool {
        let bit = (self.bytes[self.cursor / 8] >> (self.cursor % 8)) & 1 == 1;
        self.cursor += 1;
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 6] = [(5, 3), (0, 1), (1023, 10), (1, 1), (77, 7), (123456, 17)];
        for (v, width) in fields {
            w.write_bits(v, width);
        }
        assert_eq!(w.bit_len(), 39);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, width) in fields {
            assert_eq!(r.read_bits(width).unwrap(), v);
        }
    }

    #[test]
    fn bools_roundtrip() {
        let pattern: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let mut w = BitWriter::new();
        w.write_bools(pattern.iter().copied());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bools(50).unwrap(), pattern);
    }

    #[test]
    fn reading_past_the_end_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(2).unwrap();
        // The padding bits of the final byte are still readable; beyond the
        // byte boundary it must fail.
        assert!(r.read_bits(7).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_values_panic() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    fn zero_width_field_is_a_no_op() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }
}
