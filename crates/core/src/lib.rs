//! The **Virtual Bit-Stream (VBS)**: a position-independent, compressed
//! encoding of FPGA hardware-task configurations — the primary contribution
//! of *"Design Flow and Run-Time Management for Compressed FPGA
//! Configurations"* (Huriaux, Courtay, Sentieys — DATE 2015).
//!
//! Instead of storing the raw state of every programmable switch of every
//! macro (`N_raw` bits per macro, Equation (1)), the VBS stores, per macro
//! (or per square *cluster* of macros), the logic-block configuration plus a
//! **connection list**: pairs of black-box I/O identifiers coded on
//! `M = ⌈log2(4W + L + 1)⌉` bits each (Table I). A run-time controller
//! *de-virtualizes* the VBS by running a small local router per macro, which
//! regenerates the raw frame bits at any target position — giving both
//! compression and fast relocation.
//!
//! The crate provides:
//!
//! * [`format`] — the binary format (header + records), bit-level
//!   serialization, and size accounting;
//! * [`encoder`] — the `vbsgen` backend: extracts per-macro (or per-cluster)
//!   connection lists from a placed-and-routed task, with the offline
//!   **feedback loop** of Section III-B (decode check, connection
//!   re-ordering, raw-macro fallback);
//! * [`decoder`] — the de-virtualization algorithm run by the
//!   reconfiguration controller;
//! * [`cluster`] — the cluster geometry and cluster-level I/O numbering used
//!   by the coarse-grain coding of Section IV-B.
//!
//! # Example
//!
//! ```
//! use vbs_arch::{ArchSpec, Device};
//! use vbs_netlist::generate::SyntheticSpec;
//! use vbs_place::{place, PlacerConfig};
//! use vbs_route::{route, RouterConfig};
//! use vbs_bitstream::generate_bitstream;
//! use vbs_core::{VbsEncoder, decode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("demo", 20, 4, 4).with_seed(1).build()?;
//! let device = Device::new(ArchSpec::new(8, 6)?, 7, 7)?;
//! let placement = place(&netlist, &device, &PlacerConfig::fast(1))?;
//! let routing = route(&netlist, &device, &placement, &RouterConfig::fast())?;
//! let raw = generate_bitstream(&netlist, &device, &placement, &routing)?;
//!
//! // Encode with the finest grain (one macro per record).
//! let vbs = VbsEncoder::new(device.spec().clone(), 1)?.encode(&raw, &routing)?;
//! assert!(vbs.size_bits() < raw.size_bits());
//!
//! // De-virtualize back into a raw configuration.
//! let decoded = decode(&vbs)?;
//! assert_eq!(decoded.width(), raw.width());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod bitio;
pub mod cluster;
pub mod decoder;
pub mod encoder;
pub mod format;
pub mod stats;

pub use cluster::{ClusterGrid, ClusterIo};
pub use decoder::{
    decode, decode_at, decode_into, DecodeScratch, Devirtualizer, FrameSink, NullSink,
};
pub use encoder::VbsEncoder;
pub use error::VbsError;
pub use format::{ClusterRecord, ClusterRoutes, Connection, Vbs};
pub use stats::VbsStats;
