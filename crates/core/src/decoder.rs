//! De-virtualization: expanding a Virtual Bit-Stream back into raw
//! configuration frames.
//!
//! This is the algorithm the run-time reconfiguration controller executes
//! (Section II-C of the paper): "the VBS data is processed macro by macro and
//! the connection list is expanded in an in-memory macro configuration". The
//! expansion is a small, deterministic, stateful router:
//!
//! * connection endpoints pin the boundary wires they name, so the decoded
//!   configuration never drives a wire shared with a neighbouring cluster
//!   unless the encoder allocated it;
//! * wires inside the cluster are routed freely but exclusively — two
//!   different nets can never share one;
//! * connections that transitively share an endpoint belong to the same net
//!   and may reuse each other's resources (fanout).
//!
//! Because every record only touches its own cluster, records can be decoded
//! independently (and, in the run-time crate, in parallel).

use crate::cluster::{ClusterGrid, ClusterIo};
use crate::error::VbsError;
use crate::format::{ClusterRecord, ClusterRoutes, Connection, Vbs};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use vbs_arch::WireRef;
use vbs_arch::{Coord, Device, Rect};
use vbs_bitstream::{edge_to_switch, SwitchSetting, TaskBitstream};
use vbs_route::{RrGraph, RrNode};

/// Decodes a whole Virtual Bit-Stream into the raw bit-stream of the task
/// (task-relative frames).
///
/// # Errors
///
/// Returns a [`VbsError`] when a record cannot be expanded (conflicting or
/// unroutable connection lists, dangling boundary references, malformed
/// logic payloads).
///
/// ```
/// # use vbs_arch::ArchSpec;
/// # use vbs_core::{Vbs, decode};
/// # fn main() -> Result<(), vbs_core::VbsError> {
/// let empty = Vbs::new(ArchSpec::paper_example(), 1, 4, 4, Vec::new())?;
/// let task = decode(&empty)?;
/// assert_eq!(task.popcount(), 0);
/// # Ok(())
/// # }
/// ```
pub fn decode(vbs: &Vbs) -> Result<TaskBitstream, VbsError> {
    Devirtualizer::new(vbs)?.run()
}

/// Decodes a VBS and reports the device rectangle it would occupy when loaded
/// with its lower-left corner at `origin` — the information the run-time
/// placer needs for relocation.
///
/// # Errors
///
/// Propagates the errors of [`decode`].
pub fn decode_at(vbs: &Vbs, origin: Coord) -> Result<(Rect, TaskBitstream), VbsError> {
    let task = decode(vbs)?;
    Ok((Rect::new(origin, task.width(), task.height()), task))
}

/// The de-virtualization engine for one Virtual Bit-Stream.
///
/// The engine borrows the stream and expands records on demand; use
/// [`Devirtualizer::run`] for the whole task or
/// [`Devirtualizer::decode_record_into`] to expand a single record (the
/// run-time controller uses the latter to parallelize decoding).
#[derive(Debug)]
pub struct Devirtualizer<'a> {
    vbs: &'a Vbs,
    grid: ClusterGrid,
    geometry: Device,
}

impl<'a> Devirtualizer<'a> {
    /// Prepares the decoding of `vbs`.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Arch`] if the task dimensions are degenerate.
    pub fn new(vbs: &'a Vbs) -> Result<Self, VbsError> {
        let grid = vbs.grid();
        let geometry = Device::new(*vbs.spec(), vbs.width().max(1), vbs.height().max(1))?;
        Ok(Devirtualizer {
            vbs,
            grid,
            geometry,
        })
    }

    /// Decodes every record into a fresh task bit-stream.
    ///
    /// # Errors
    ///
    /// Returns the first record-level failure.
    pub fn run(&self) -> Result<TaskBitstream, VbsError> {
        let mut task = TaskBitstream::empty(
            *self.vbs.spec(),
            self.vbs.width().max(1),
            self.vbs.height().max(1),
        );
        for record in self.vbs.records() {
            self.decode_record_into(record, &mut task)?;
        }
        Ok(task)
    }

    /// Expands one record into `task` (only the record's own frames are
    /// touched) and returns the task-relative wires the expansion claimed.
    ///
    /// The claimed-wire list is what the offline feedback loop of the encoder
    /// inspects: a coded record is only kept if its expansion stays within
    /// the wires the original routing used for the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::DecodeConflict`], [`VbsError::DecodeNoPath`],
    /// [`VbsError::DanglingBoundary`] or [`VbsError::Malformed`] when the
    /// record cannot be expanded.
    pub fn decode_record_into(
        &self,
        record: &ClusterRecord,
        task: &mut TaskBitstream,
    ) -> Result<Vec<WireRef>, VbsError> {
        let cluster = record.position;
        let k = self.grid.cluster_size();
        let spec = self.vbs.spec();
        let lb_bits = spec.lb_config_bits();

        if record.logic.len() != self.vbs.logic_bits_per_record() {
            return Err(VbsError::Malformed {
                reason: format!(
                    "record at {cluster} carries {} logic bits, expected {}",
                    record.logic.len(),
                    self.vbs.logic_bits_per_record()
                ),
            });
        }

        // 1. Logic sections.
        for local in 0..(k as usize * k as usize) {
            let Some(site) = self.grid.macro_at(cluster, local as u16) else {
                continue;
            };
            let bits = record.logic[local * lb_bits..(local + 1) * lb_bits]
                .iter()
                .copied();
            task.frame_mut(site).set_logic_bits(bits);
        }

        // 2. Routing sections.
        let mut claimed: Vec<WireRef> = Vec::new();
        match &record.routes {
            ClusterRoutes::Raw(raw) => {
                if raw.len() != self.vbs.raw_routing_bits_per_record() {
                    return Err(VbsError::Malformed {
                        reason: format!(
                            "raw record at {cluster} carries {} routing bits, expected {}",
                            raw.len(),
                            self.vbs.raw_routing_bits_per_record()
                        ),
                    });
                }
                let per_macro = spec.raw_bits_per_macro() - lb_bits;
                for local in 0..(k as usize * k as usize) {
                    let Some(site) = self.grid.macro_at(cluster, local as u16) else {
                        continue;
                    };
                    let frame = task.frame_mut(site);
                    for (i, &bit) in raw[local * per_macro..(local + 1) * per_macro]
                        .iter()
                        .enumerate()
                    {
                        frame.set_bit(lb_bits + i, bit);
                    }
                }
            }
            ClusterRoutes::Coded(connections) => {
                let mut state = ClusterState::new();
                for connection in connections {
                    self.route_connection(cluster, connection, &mut state, task)?;
                }
                claimed = state.wire_owner.keys().copied().collect();
                claimed.sort_unstable();
            }
        }
        Ok(claimed)
    }

    /// Routes one coded connection inside its cluster and writes the switches
    /// it programs.
    fn route_connection(
        &self,
        cluster: Coord,
        connection: &Connection,
        state: &mut ClusterState,
        task: &mut TaskBitstream,
    ) -> Result<(), VbsError> {
        let source = self.io_node(cluster, connection.input)?;
        let target = self.io_node(cluster, connection.output)?;
        let group = state.group_of_endpoints(source, target, cluster, connection)?;

        if source == target {
            return Ok(());
        }

        let graph = RrGraph::new(&self.geometry);
        let path = self
            .local_dijkstra(cluster, &graph, source, target, group, state)
            .ok_or_else(|| VbsError::DecodeNoPath {
                cluster,
                connection: connection.to_string(),
            })?;

        // Program the switches along the path and claim its wires.
        for window in path.windows(2) {
            let (a, b) = (window[0], window[1]);
            let switch =
                edge_to_switch(&self.geometry, a, b).map_err(|_| VbsError::DecodeConflict {
                    cluster,
                    connection: connection.to_string(),
                })?;
            let site = switch.site();
            if self.grid.cluster_of(site) != cluster {
                return Err(VbsError::DecodeConflict {
                    cluster,
                    connection: connection.to_string(),
                });
            }
            let frame = task.frame_mut(site);
            match switch {
                SwitchSetting::Crossing { pin, track, .. } => frame.set_crossing(pin, track, true),
                SwitchSetting::SwitchBox { track, pair, .. } => frame.set_sb(track, pair, true),
            }
        }
        for node in &path {
            if let RrNode::Wire(w) = node {
                state.claim(*w, group);
            }
        }
        Ok(())
    }

    /// Maps a cluster I/O to its routing-resource node (task-relative).
    fn io_node(&self, cluster: Coord, io: ClusterIo) -> Result<RrNode, VbsError> {
        match io {
            ClusterIo::Null => Err(VbsError::Malformed {
                reason: format!("null i/o used as a connection endpoint in cluster {cluster}"),
            }),
            ClusterIo::Boundary { side, offset } => {
                let wire = self.grid.boundary_wire(cluster, side, offset)?;
                Ok(RrNode::Wire(wire))
            }
            ClusterIo::Pin { local, pin } => {
                let site = self
                    .grid
                    .macro_at(cluster, local)
                    .ok_or(VbsError::RecordOutOfTask { cluster })?;
                if pin >= self.vbs.spec().lb_pins() {
                    return Err(VbsError::InvalidIo {
                        index: pin as u32,
                        io_count: self.vbs.spec().lb_pins() as u32,
                    });
                }
                Ok(RrNode::Pin { site, pin })
            }
        }
    }

    /// Deterministic Dijkstra constrained to the cluster: boundary-crossing
    /// wires may only be used when they are an endpoint or already belong to
    /// the connection's net; interior wires are exclusive per net.
    fn local_dijkstra(
        &self,
        cluster: Coord,
        graph: &RrGraph<'_>,
        source: RrNode,
        target: RrNode,
        group: u32,
        state: &ClusterState,
    ) -> Option<Vec<RrNode>> {
        let mut best: HashMap<RrNode, (f32, RrNode)> = HashMap::new();
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        best.insert(source, (0.0, source));
        heap.push(Entry {
            cost: 0.0,
            node: source,
        });

        while let Some(Entry { cost, node }) = heap.pop() {
            if let Some(&(known, _)) = best.get(&node) {
                if cost > known {
                    continue;
                }
            }
            if node == target {
                // Rebuild the path.
                let mut path = vec![target];
                let mut cursor = target;
                while cursor != source {
                    cursor = best[&cursor].1;
                    path.push(cursor);
                }
                path.reverse();
                return Some(path);
            }
            // Pins other than the endpoints are never expanded through.
            if matches!(node, RrNode::Pin { .. }) && node != source {
                continue;
            }
            for next in graph.neighbors(node) {
                let step = match next {
                    RrNode::Pin { .. } => {
                        if next != target {
                            continue;
                        }
                        1.0
                    }
                    RrNode::Wire(w) => {
                        if !self.grid.wire_touches(cluster, w) {
                            continue;
                        }
                        match state.owner(w) {
                            // A wire already carrying a different net can
                            // never be reused.
                            Some(owner) if state.resolve(owner) != state.resolve(group) => continue,
                            // Resources of the same net are nearly free,
                            // which makes fanout share its trunk.
                            Some(_) => 0.1,
                            None => {
                                if self.grid.wire_io(cluster, w).is_some() {
                                    // Unallocated boundary-crossing wire:
                                    // strongly discouraged (it is shared with
                                    // a neighbouring cluster), used only when
                                    // no interior path exists. The encoder's
                                    // feedback loop verifies such choices
                                    // against the original routing.
                                    6.0
                                } else {
                                    1.0
                                }
                            }
                        }
                    }
                };
                let next_cost = cost + step;
                let better = match best.get(&next) {
                    Some(&(known, _)) => next_cost < known - f32::EPSILON,
                    None => true,
                };
                if better {
                    best.insert(next, (next_cost, node));
                    heap.push(Entry {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        None
    }
}

/// Decoding state of one cluster record: which net group owns each wire.
#[derive(Debug, Default)]
struct ClusterState {
    wire_owner: HashMap<vbs_arch::WireRef, u32>,
    endpoint_group: HashMap<RrNode, u32>,
    next_group: u32,
    parent: Vec<u32>,
}

impl ClusterState {
    fn new() -> Self {
        ClusterState::default()
    }

    fn find(&mut self, g: u32) -> u32 {
        let root = self.resolve(g);
        // Path compression.
        let mut cursor = g;
        while self.parent[cursor as usize] != root {
            let next = self.parent[cursor as usize];
            self.parent[cursor as usize] = root;
            cursor = next;
        }
        root
    }

    /// Read-only group resolution (no path compression), usable while the
    /// state is borrowed immutably during path search.
    fn resolve(&self, g: u32) -> u32 {
        let mut root = g;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    fn fresh(&mut self) -> u32 {
        let g = self.next_group;
        self.next_group += 1;
        self.parent.push(g);
        g
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }

    /// Resolves the net group of a connection from its two endpoints.
    ///
    /// Connections sharing an endpoint (transitively) describe the same
    /// electrical net — an I/O can only carry one signal — so their groups
    /// are merged; a fresh group is created when neither endpoint is known.
    fn group_of_endpoints(
        &mut self,
        source: RrNode,
        target: RrNode,
        _cluster: Coord,
        _connection: &Connection,
    ) -> Result<u32, VbsError> {
        let existing_source = self.endpoint_node_group(source);
        let existing_target = self.endpoint_node_group(target);
        let group = match (existing_source, existing_target) {
            (None, None) => self.fresh(),
            (Some(g), None) | (None, Some(g)) => self.find(g),
            (Some(a), Some(b)) => self.union(a, b),
        };
        self.endpoint_group.insert(source, group);
        self.endpoint_group.insert(target, group);
        if let RrNode::Wire(w) = source {
            self.claim(w, group);
        }
        if let RrNode::Wire(w) = target {
            self.claim(w, group);
        }
        Ok(group)
    }

    fn endpoint_node_group(&self, node: RrNode) -> Option<u32> {
        match node {
            RrNode::Wire(w) => self
                .wire_owner
                .get(&w)
                .copied()
                .or_else(|| self.endpoint_group.get(&node).copied()),
            RrNode::Pin { .. } => self.endpoint_group.get(&node).copied(),
        }
    }

    fn owner(&self, wire: vbs_arch::WireRef) -> Option<u32> {
        self.wire_owner.get(&wire).copied()
    }

    fn claim(&mut self, wire: vbs_arch::WireRef, group: u32) {
        self.wire_owner.insert(wire, group);
    }
}

#[derive(PartialEq)]
struct Entry {
    cost: f32,
    node: RrNode,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ClusterRecord, ClusterRoutes};
    use vbs_arch::{ArchSpec, SbPair, Side};

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    fn record(connections: Vec<Connection>) -> ClusterRecord {
        ClusterRecord {
            position: Coord::new(1, 1),
            logic: vec![false; spec().lb_config_bits()],
            routes: ClusterRoutes::Coded(connections),
        }
    }

    fn decode_single(connections: Vec<Connection>) -> Result<TaskBitstream, VbsError> {
        let vbs = Vbs::new(spec(), 1, 4, 4, vec![record(connections)]).unwrap();
        decode(&vbs)
    }

    #[test]
    fn straight_through_connection_sets_one_sb_switch() {
        let task = decode_single(vec![Connection {
            input: ClusterIo::Boundary {
                side: Side::West,
                offset: 2,
            },
            output: ClusterIo::Boundary {
                side: Side::East,
                offset: 2,
            },
        }])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(2, SbPair::EastWest));
        assert_eq!(frame.popcount(), 1);
    }

    #[test]
    fn pin_hookup_from_south_uses_sb_and_crossing() {
        // South boundary to pin 1 (odd -> north channel): needs the
        // north-south pass switch plus the crossing.
        let task = decode_single(vec![Connection {
            input: ClusterIo::Boundary {
                side: Side::South,
                offset: 3,
            },
            output: ClusterIo::Pin { local: 0, pin: 1 },
        }])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(3, SbPair::NorthSouth));
        assert!(frame.crossing(1, 3));
        assert_eq!(frame.popcount(), 2);
    }

    #[test]
    fn fanout_reuses_already_routed_resources() {
        // One net entering west and leaving both east and to pin 0.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.crossing(0, 0));
        assert_eq!(
            frame.popcount(),
            2,
            "the east wire is shared, not re-routed"
        );
    }

    #[test]
    fn shared_endpoints_are_one_electrical_net() {
        // Connections sharing the east[0] endpoint describe one net fanning
        // in/out through three boundaries: the decoder merges them instead of
        // duplicating resources.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::South,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.sb(0, SbPair::SouthEast));
        assert_eq!(frame.popcount(), 2);
    }

    #[test]
    fn two_nets_never_share_a_wire() {
        // Net 1 goes straight through on track 2; net 2 wants to reach pin 0
        // (an even pin, hooked through the macro's horizontal wires). The
        // decoder must hook pin 0 through a *different* track than net 1.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 2,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 2,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::South,
                    offset: 4,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(2, SbPair::EastWest));
        // Net 2 must not use crossing(0, 2): track 2's horizontal wire belongs
        // to net 1.
        assert!(!frame.crossing(0, 2));
        assert!(frame.crossing(0, 4) || (0..5).any(|t| t != 2 && frame.crossing(0, t)));
    }

    #[test]
    fn different_tracks_do_not_conflict() {
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 1,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 1,
                },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.sb(1, SbPair::EastWest));
    }

    #[test]
    fn null_endpoints_are_malformed() {
        let result = decode_single(vec![Connection {
            input: ClusterIo::Null,
            output: ClusterIo::Pin { local: 0, pin: 0 },
        }]);
        assert!(matches!(result, Err(VbsError::Malformed { .. })));
    }

    #[test]
    fn dangling_boundary_is_reported() {
        // Cluster (0, 0) has no west neighbour: west boundary wires do not
        // exist there.
        let rec = ClusterRecord {
            position: Coord::new(0, 0),
            logic: vec![false; spec().lb_config_bits()],
            routes: ClusterRoutes::Coded(vec![Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            }]),
        };
        let vbs = Vbs::new(spec(), 1, 4, 4, vec![rec]).unwrap();
        assert!(matches!(
            decode(&vbs),
            Err(VbsError::DanglingBoundary { .. })
        ));
    }

    #[test]
    fn raw_records_restore_their_bits_verbatim() {
        let s = spec();
        let routing_bits = s.raw_bits_per_macro() - s.lb_config_bits();
        let pattern: Vec<bool> = (0..routing_bits).map(|i| i % 11 == 0).collect();
        let rec = ClusterRecord {
            position: Coord::new(2, 2),
            logic: (0..s.lb_config_bits()).map(|i| i % 3 == 0).collect(),
            routes: ClusterRoutes::Raw(pattern.clone()),
        };
        let vbs = Vbs::new(s, 1, 4, 4, vec![rec]).unwrap();
        let task = decode(&vbs).unwrap();
        let frame = task.frame(Coord::new(2, 2));
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(frame.bit(s.lb_config_bits() + i), bit);
        }
        assert!(frame.bit(0));
    }

    #[test]
    fn decode_at_reports_the_target_rectangle() {
        let vbs = Vbs::new(spec(), 1, 3, 2, Vec::new()).unwrap();
        let (rect, task) = decode_at(&vbs, Coord::new(5, 6)).unwrap();
        assert_eq!(rect, Rect::new(Coord::new(5, 6), 3, 2));
        assert_eq!(task.width(), 3);
    }
}
