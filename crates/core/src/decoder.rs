//! De-virtualization: expanding a Virtual Bit-Stream back into raw
//! configuration frames.
//!
//! This is the algorithm the run-time reconfiguration controller executes
//! (Section II-C of the paper): "the VBS data is processed macro by macro and
//! the connection list is expanded in an in-memory macro configuration". The
//! expansion is a small, deterministic, stateful router:
//!
//! * connection endpoints pin the boundary wires they name, so the decoded
//!   configuration never drives a wire shared with a neighbouring cluster
//!   unless the encoder allocated it;
//! * wires inside the cluster are routed freely but exclusively — two
//!   different nets can never share one;
//! * connections that transitively share an endpoint belong to the same net
//!   and may reuse each other's resources (fanout).
//!
//! Because every record only touches its own cluster, records can be decoded
//! independently (and, in the run-time crate, in parallel).
//!
//! # The zero-allocation hot path
//!
//! The paper's performance claim is that de-virtualization can run "as fast
//! as the hardware allows", which means the software model must not spend
//! its time in the allocator. Two pieces make that possible:
//!
//! * [`DecodeScratch`] — a reusable arena holding every buffer the decode
//!   needs (the Dijkstra search state, the per-record net bookkeeping, the
//!   claimed-wire list and an optional staging bit-stream). A warm scratch
//!   makes [`Devirtualizer::decode_into`] perform **zero heap allocations**
//!   per load; a cold scratch performs one allocation per buffer because
//!   every buffer is pre-reserved from the VBS header before the first
//!   record is expanded.
//! * [`FrameSink`] — a push interface through which
//!   [`Devirtualizer::decode_streaming`] emits each macro frame as soon as
//!   its cluster record has been expanded, so a run-time controller can
//!   begin configuration-memory writes long before the whole stream is
//!   decoded.

use crate::cluster::{ClusterGrid, ClusterIo};
use crate::error::VbsError;
use crate::format::{ClusterRecord, ClusterRoutes, Connection, Vbs};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vbs_arch::WireRef;
use vbs_arch::{ArchSpec, Coord, Device, Rect};
use vbs_bitstream::{edge_to_switch, FrameRef, SwitchSetting, TaskBitstream};
use vbs_route::{RrGraph, RrNode};

/// Decodes a whole Virtual Bit-Stream into the raw bit-stream of the task
/// (task-relative frames).
///
/// # Errors
///
/// Returns a [`VbsError`] when a record cannot be expanded (conflicting or
/// unroutable connection lists, dangling boundary references, malformed
/// logic payloads).
///
/// ```
/// # use vbs_arch::ArchSpec;
/// # use vbs_core::{Vbs, decode};
/// # fn main() -> Result<(), vbs_core::VbsError> {
/// let empty = Vbs::new(ArchSpec::paper_example(), 1, 4, 4, Vec::new())?;
/// let task = decode(&empty)?;
/// assert_eq!(task.popcount(), 0);
/// # Ok(())
/// # }
/// ```
pub fn decode(vbs: &Vbs) -> Result<TaskBitstream, VbsError> {
    Devirtualizer::new(vbs)?.run()
}

/// Decodes a VBS and reports the device rectangle it would occupy when loaded
/// with its lower-left corner at `origin` — the information the run-time
/// placer needs for relocation.
///
/// # Errors
///
/// Propagates the errors of [`decode`].
pub fn decode_at(vbs: &Vbs, origin: Coord) -> Result<(Rect, TaskBitstream), VbsError> {
    let task = decode(vbs)?;
    Ok((Rect::new(origin, task.width(), task.height()), task))
}

/// Decodes `vbs` into a caller-provided bit-stream using a caller-provided
/// scratch arena — the zero-allocation entry point (see
/// [`Devirtualizer::decode_into`]).
///
/// # Errors
///
/// As [`decode`].
pub fn decode_into(
    vbs: &Vbs,
    task: &mut TaskBitstream,
    scratch: &mut DecodeScratch,
) -> Result<(), VbsError> {
    Devirtualizer::new(vbs)?.decode_into(task, scratch)
}

/// A consumer of decoded configuration frames.
///
/// [`Devirtualizer::decode_streaming`] calls [`FrameSink::emit`] for every
/// macro of the task rectangle, in two waves: the frames of a cluster are
/// emitted as soon as that cluster's record has been expanded (so a run-time
/// controller can overlap configuration-memory writes with the decode of the
/// remaining records), and the frames of clusters with no record — which are
/// all-zero — are emitted once at the end.
///
/// # Contract
///
/// * `at` is task-relative; the sink is responsible for translating it to a
///   device position.
/// * Every frame of the task rectangle is emitted **at least once**; the
///   last emission of a coordinate carries its final content, so a sink
///   that overwrites (rather than ORs) converges to exactly the buffered
///   [`decode`] result.
/// * Emission is infallible: callers that write to bounded memory must
///   validate the whole target region *before* streaming starts.
pub trait FrameSink {
    /// Receives the (possibly final) frame of the macro at task-relative
    /// coordinates `at`, as a borrowed view into the decoder's staging
    /// arena.
    fn emit(&mut self, at: Coord, frame: FrameRef<'_>);
}

/// A [`FrameSink`] that counts emitted frames and discards them — useful to
/// measure pure decode throughput on the streaming path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink {
    /// Number of frames emitted so far.
    pub frames: u64,
}

impl FrameSink for NullSink {
    fn emit(&mut self, _at: Coord, _frame: FrameRef<'_>) {
        self.frames += 1;
    }
}

/// The reusable decode arena: every buffer the de-virtualization of one
/// stream needs, kept warm across loads.
///
/// # API contract
///
/// * A scratch may be reused across **any** sequence of streams, devices and
///   architectures; each decode re-sizes the buffers it needs and clears
///   per-record state. Results are bit-identical to a fresh scratch.
/// * A **warm** scratch (one that has already decoded a stream of at least
///   the same size) performs zero heap allocations in
///   [`Devirtualizer::decode_into`] / [`Devirtualizer::decode_streaming`].
/// * A **cold** scratch performs at most one allocation per internal buffer,
///   because every buffer is pre-reserved from the VBS header
///   (record/route counts, cluster size, device geometry) before decoding
///   starts.
/// * A scratch is intentionally cheap to construct ([`DecodeScratch::new`]
///   allocates nothing); per-worker long-lived scratches are the intended
///   usage (one per decode thread, never shared).
#[derive(Debug, Default)]
pub struct DecodeScratch {
    search: SearchScratch,
    nets: NetScratch,
    adj: AdjCache,
    claimed: Vec<WireRef>,
    emitted: Vec<bool>,
    staging: Option<TaskBitstream>,
}

impl DecodeScratch {
    /// Creates an empty scratch. No allocation happens until the first
    /// decode (which pre-reserves every buffer from the stream's header).
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// The task-relative wires claimed by the most recent
    /// [`Devirtualizer::decode_record_with`] call, sorted and deduplicated.
    /// Empty for raw-fallback records.
    pub fn claimed_wires(&self) -> &[WireRef] {
        &self.claimed
    }

    /// Takes the staging bit-stream out of the scratch, reshaped (in place,
    /// reusing its allocations) to an all-empty `width` × `height` task of
    /// `spec`. Return it with [`DecodeScratch::put_staging`] so the next
    /// load reuses the buffer.
    pub fn take_staging(&mut self, spec: ArchSpec, width: u16, height: u16) -> TaskBitstream {
        let mut staging = self
            .staging
            .take()
            .unwrap_or_else(|| TaskBitstream::empty(spec, 0, 0));
        staging.reset(spec, width, height);
        staging
    }

    /// Returns a staging bit-stream for reuse by the next decode.
    pub fn put_staging(&mut self, staging: TaskBitstream) {
        self.staging = Some(staging);
    }

    /// Pre-reserves every internal buffer for decoding `vbs`, exactly as
    /// the first decode of that stream would — the **warm-up hook** of
    /// scratch pools: a pool that parks several scratches can prepare each
    /// of them up front, so whichever scratch a decode lane later checks
    /// out is already warm and the decode performs zero heap allocations,
    /// independent of which lanes happened to run during earlier loads.
    ///
    /// # Errors
    ///
    /// Returns a [`VbsError`] when the stream header describes a degenerate
    /// device geometry.
    pub fn prepare_for(&mut self, vbs: &Vbs) -> Result<(), VbsError> {
        let geometry = Device::new(*vbs.spec(), vbs.width().max(1), vbs.height().max(1))?;
        self.reserve_for(vbs, &geometry);
        Ok(())
    }

    /// Clears the per-load transient state (per-record net bookkeeping,
    /// claimed-wire list, streaming emission map and the search worklists)
    /// while keeping every buffer's capacity — the **recycling hook** pools
    /// run before parking a scratch, so a scratch checked out later starts
    /// from a clean slate without giving back its warmed allocations.
    pub fn reset(&mut self) {
        self.nets.clear();
        self.claimed.clear();
        self.emitted.clear();
        self.search.heap.clear();
        self.search.path.clear();
        self.search.neighbors.clear();
    }

    /// Pre-reserves every buffer for decoding `vbs` on `geometry` so the
    /// decode itself allocates nothing (warm) or once per buffer (cold).
    fn reserve_for(&mut self, vbs: &Vbs, geometry: &Device) {
        let nodes = RrGraph::new(geometry).node_count();
        self.search.reserve(nodes);
        let max_routes = vbs.max_routes_per_record();
        // A route claims at most a cluster-crossing path of wires; boundary
        // plus interior wires of one cluster bound the working set.
        let k = vbs.cluster_size().max(1) as usize;
        let wires_per_cluster = 2 * vbs.spec().channel_width() as usize * k * (k + 1);
        self.nets.reserve(max_routes, nodes, geometry.wire_count());
        self.claimed.reserve(wires_per_cluster);
    }
}

/// Dijkstra search state, dense-indexed by routing-resource node and reset
/// in O(1) through a generation stamp.
#[derive(Debug, Default)]
struct SearchScratch {
    cost: Vec<f32>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Entry>,
    path: Vec<RrNode>,
    neighbors: Vec<RrNode>,
}

impl SearchScratch {
    fn reserve(&mut self, nodes: usize) {
        if self.cost.len() < nodes {
            self.cost.resize(nodes, 0.0);
            self.parent.resize(nodes, 0);
            self.stamp.resize(nodes, 0);
        }
        // The worklists are bounded by the node count too; reserving them
        // here keeps a pool-warmed scratch allocation-free on its first
        // decode (searches are cluster-local, so this is generous).
        // `reserve(additional)` guarantees `capacity >= len + additional`,
        // so the additional amount is computed against the current length.
        if self.heap.capacity() < nodes {
            self.heap.reserve(nodes - self.heap.len());
        }
        if self.path.capacity() < nodes {
            self.path.reserve(nodes - self.path.len());
        }
        if self.neighbors.capacity() < 16 {
            self.neighbors.reserve(16 - self.neighbors.len());
        }
    }

    /// Starts a fresh search: O(1) via the generation stamp.
    fn begin(&mut self) {
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
        self.path.clear();
    }
}

/// Cluster-relative facts about one wire node, precomputed so the Dijkstra
/// relaxation never reconstructs a [`WireRef`] or re-derives cluster
/// membership. A wire touches at most two clusters; `c0`/`c1` pack their
/// coordinates (`x << 16 | y`, [`AdjTable::NO_CLUSTER`] when the forward
/// macro falls outside the task).
#[derive(Debug, Clone, Copy)]
struct WireMeta {
    c0: u32,
    c1: u32,
    /// Both touching macros sit in the same cluster — the wire never
    /// crosses a cluster boundary, so it is free to route through (cost
    /// 1.0); boundary-crossing wires cost 6.0 unallocated.
    interior: bool,
}

/// The routing-resource graph of one task geometry, flattened to CSR form.
///
/// [`RrGraph`] computes neighbours arithmetically per call, which is fine
/// for one search but dominates when a stream expands hundreds of coded
/// connections: every relaxation rebuilds `WireRef`s, re-validates them
/// against the device and re-derives cluster membership. This table runs
/// that arithmetic once per *geometry* — edge lists (`offsets`/`edges`,
/// dense node indices, neighbour order identical to
/// [`RrGraph::neighbors_into`]), the index → node table and per-wire
/// [`WireMeta`] — turning the inner loop into pure array reads. Keyed by
/// `(spec, width, height, cluster size)`.
#[derive(Debug, Default)]
struct AdjTable {
    key: Option<(ArchSpec, u16, u16, u16)>,
    offsets: Vec<u32>,
    edges: Vec<u32>,
    nodes: Vec<RrNode>,
    wire_meta: Vec<WireMeta>,
    wire_nodes: usize,
}

impl AdjTable {
    const NO_CLUSTER: u32 = u32::MAX;

    fn pack(cluster_x: u16, cluster_y: u16) -> u32 {
        (u32::from(cluster_x) << 16) | u32::from(cluster_y)
    }

    /// Rebuilds the table for `geometry` clustered at `k`, reusing both its
    /// own buffers and the caller's `neighbors` scratch.
    fn rebuild(
        &mut self,
        geometry: &Device,
        k: u16,
        key: (ArchSpec, u16, u16, u16),
        neighbors: &mut Vec<RrNode>,
    ) {
        let graph = RrGraph::new(geometry);
        let n = graph.node_count();
        self.nodes.clear();
        self.nodes.extend((0..n).map(|i| graph.node(i)));
        // Counting pass first: the CSR then builds with at most one
        // allocation per buffer, keeping a cold decode inside the
        // per-buffer allocation budget pinned in `zero_alloc.rs`.
        let mut total_edges = 0usize;
        for &node in &self.nodes {
            graph.neighbors_into(node, neighbors);
            total_edges += neighbors.len();
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.edges.clear();
        self.edges.reserve(total_edges);
        for &node in &self.nodes {
            self.offsets.push(self.edges.len() as u32);
            graph.neighbors_into(node, neighbors);
            self.edges
                .extend(neighbors.iter().map(|&nb| graph.index(nb) as u32));
        }
        self.offsets.push(self.edges.len() as u32);
        self.wire_nodes = graph.wire_count();
        self.wire_meta.clear();
        self.wire_meta.reserve(self.wire_nodes);
        let k = k.max(1);
        for &node in &self.nodes[..self.wire_nodes] {
            let RrNode::Wire(w) = node else {
                unreachable!("wire indices precede pin indices");
            };
            let [owner, fwd] = w.touching_macros();
            let c0 = Self::pack(owner.x / k, owner.y / k);
            let c1 = if geometry.contains(fwd) {
                Self::pack(fwd.x / k, fwd.y / k)
            } else {
                Self::NO_CLUSTER
            };
            self.wire_meta.push(WireMeta {
                c0,
                c1,
                interior: c1 == c0,
            });
        }
        self.key = Some(key);
    }

    fn neighbors_of(&self, idx: usize) -> &[u32] {
        &self.edges[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }
}

/// A small set of [`AdjTable`]s cached across decodes, so a scratch (or a
/// pooled decode lane) serving a *mix* of task shapes — the steady state
/// of a fleet workload — rebuilds nothing once every shape in rotation has
/// been seen. Misses past the slot cap replace tables round-robin, reusing
/// the victim's buffers; a hit is a scan of at most [`AdjCache::SLOTS`]
/// key comparisons.
#[derive(Debug, Default)]
struct AdjCache {
    tables: Vec<AdjTable>,
    /// Next round-robin replacement slot once all [`Self::SLOTS`] are full.
    victim: usize,
    /// Neighbour scratch shared across rebuilds.
    neighbors: Vec<RrNode>,
}

impl AdjCache {
    const SLOTS: usize = 8;

    /// Returns the table for `geometry` clustered at `k`, rebuilding one
    /// slot only when the shape has not been seen (or was replaced).
    fn ensure(&mut self, geometry: &Device, k: u16) -> &AdjTable {
        let key = (*geometry.spec(), geometry.width(), geometry.height(), k);
        if let Some(i) = self.tables.iter().position(|t| t.key == Some(key)) {
            return &self.tables[i];
        }
        let slot = if self.tables.len() < Self::SLOTS {
            self.tables.push(AdjTable::default());
            self.tables.len() - 1
        } else {
            let slot = self.victim;
            self.victim = (self.victim + 1) % Self::SLOTS;
            slot
        };
        self.tables[slot].rebuild(geometry, k, key, &mut self.neighbors);
        &self.tables[slot]
    }
}

/// Per-record net bookkeeping: which net group owns each wire, with
/// union-find over groups (fanout merging).
///
/// Ownership and endpoint groups live in dense arrays indexed by
/// [`RrGraph::index`] and reset in O(1) through a generation stamp — the
/// Dijkstra inner loop consults `owner` once per wire neighbour, and a
/// hashed lookup there (SipHash over a 6-byte `WireRef`) costs more than
/// the rest of the relaxation combined.
#[derive(Debug, Default)]
struct NetScratch {
    /// Wire → owning group, dense by wire index.
    owner_gen: Vec<u32>,
    owner_group: Vec<u32>,
    /// Wires claimed this record, in first-claim order.
    claimed: Vec<WireRef>,
    /// Endpoint node → group, dense by node index.
    ep_gen: Vec<u32>,
    ep_group: Vec<u32>,
    generation: u32,
    parent: Vec<u32>,
    next_group: u32,
}

impl NetScratch {
    fn reserve(&mut self, routes: usize, nodes: usize, wires: usize) {
        if self.owner_gen.len() < wires {
            self.owner_gen.resize(wires, 0);
            self.owner_group.resize(wires, 0);
        }
        if self.ep_gen.len() < nodes {
            self.ep_gen.resize(nodes, 0);
            self.ep_group.resize(nodes, 0);
        }
        self.claimed.reserve(wires.min(64));
        self.parent.reserve(2 * routes);
    }

    fn clear(&mut self) {
        if self.generation == u32::MAX {
            self.owner_gen.fill(0);
            self.ep_gen.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.claimed.clear();
        self.parent.clear();
        self.next_group = 0;
    }

    fn find(&mut self, g: u32) -> u32 {
        let root = self.resolve(g);
        // Path compression.
        let mut cursor = g;
        while self.parent[cursor as usize] != root {
            let next = self.parent[cursor as usize];
            self.parent[cursor as usize] = root;
            cursor = next;
        }
        root
    }

    /// Read-only group resolution (no path compression), usable while the
    /// state is borrowed immutably during path search.
    fn resolve(&self, g: u32) -> u32 {
        let mut root = g;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    fn fresh(&mut self) -> u32 {
        let g = self.next_group;
        self.next_group += 1;
        self.parent.push(g);
        g
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }

    /// Resolves the net group of a connection from its two endpoints.
    ///
    /// Connections sharing an endpoint (transitively) describe the same
    /// electrical net — an I/O can only carry one signal — so their groups
    /// are merged; a fresh group is created when neither endpoint is known.
    fn group_of_endpoints(&mut self, graph: &RrGraph<'_>, source: RrNode, target: RrNode) -> u32 {
        let existing_source = self.endpoint_node_group(graph, source);
        let existing_target = self.endpoint_node_group(graph, target);
        let group = match (existing_source, existing_target) {
            (None, None) => self.fresh(),
            (Some(g), None) | (None, Some(g)) => self.find(g),
            (Some(a), Some(b)) => self.union(a, b),
        };
        for node in [source, target] {
            let idx = graph.index(node);
            self.ep_gen[idx] = self.generation;
            self.ep_group[idx] = group;
            if let RrNode::Wire(w) = node {
                self.claim(graph, w, group);
            }
        }
        group
    }

    fn endpoint_node_group(&self, graph: &RrGraph<'_>, node: RrNode) -> Option<u32> {
        match node {
            RrNode::Wire(w) => self
                .owner(graph, w)
                .or_else(|| self.endpoint_slot(graph.index(node))),
            RrNode::Pin { .. } => self.endpoint_slot(graph.index(node)),
        }
    }

    fn endpoint_slot(&self, idx: usize) -> Option<u32> {
        (self.ep_gen[idx] == self.generation).then(|| self.ep_group[idx])
    }

    fn owner(&self, graph: &RrGraph<'_>, wire: WireRef) -> Option<u32> {
        let idx = graph.index(RrNode::Wire(wire));
        (self.owner_gen[idx] == self.generation).then(|| self.owner_group[idx])
    }

    fn claim(&mut self, graph: &RrGraph<'_>, wire: WireRef, group: u32) {
        let idx = graph.index(RrNode::Wire(wire));
        if self.owner_gen[idx] != self.generation {
            self.owner_gen[idx] = self.generation;
            self.claimed.push(wire);
        }
        self.owner_group[idx] = group;
    }
}

/// The de-virtualization engine for one Virtual Bit-Stream.
///
/// The engine borrows the stream and expands records on demand; use
/// [`Devirtualizer::run`] for the whole task, [`Devirtualizer::decode_into`]
/// for the zero-allocation reuse path, [`Devirtualizer::decode_streaming`]
/// to emit frames as they complete, or
/// [`Devirtualizer::decode_record_into`] to expand a single record (the
/// run-time controller uses the latter to parallelize decoding).
#[derive(Debug)]
pub struct Devirtualizer<'a> {
    vbs: &'a Vbs,
    grid: ClusterGrid,
    geometry: Device,
}

impl<'a> Devirtualizer<'a> {
    /// Prepares the decoding of `vbs`.
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::Arch`] if the task dimensions are degenerate.
    pub fn new(vbs: &'a Vbs) -> Result<Self, VbsError> {
        let grid = vbs.grid();
        let geometry = Device::new(*vbs.spec(), vbs.width().max(1), vbs.height().max(1))?;
        Ok(Devirtualizer {
            vbs,
            grid,
            geometry,
        })
    }

    /// Decodes every record into a fresh task bit-stream.
    ///
    /// The single-shot path shares one pre-reserved [`DecodeScratch`] across
    /// every record of the stream, so even one-off callers avoid per-record
    /// allocations; long-running callers should hold their own scratch and
    /// use [`Devirtualizer::decode_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns the first record-level failure.
    pub fn run(&self) -> Result<TaskBitstream, VbsError> {
        let mut task = TaskBitstream::empty(
            *self.vbs.spec(),
            self.vbs.width().max(1),
            self.vbs.height().max(1),
        );
        let mut scratch = DecodeScratch::new();
        scratch.reserve_for(self.vbs, &self.geometry);
        for record in self.vbs.records() {
            self.decode_record_with(record, &mut task, &mut scratch)?;
        }
        Ok(task)
    }

    /// Decodes every record into `task` (reshaped in place to the stream's
    /// dimensions) reusing `scratch` — the zero-allocation steady-state
    /// load path: with a warm scratch and a right-sized `task`, no heap
    /// allocation happens at all.
    ///
    /// # Errors
    ///
    /// Returns the first record-level failure; `task` then holds the
    /// partially decoded image.
    pub fn decode_into(
        &self,
        task: &mut TaskBitstream,
        scratch: &mut DecodeScratch,
    ) -> Result<(), VbsError> {
        task.reset(
            *self.vbs.spec(),
            self.vbs.width().max(1),
            self.vbs.height().max(1),
        );
        scratch.reserve_for(self.vbs, &self.geometry);
        for record in self.vbs.records() {
            self.decode_record_with(record, task, scratch)?;
        }
        Ok(())
    }

    /// Decodes every record into `staging` while pushing completed frames to
    /// `sink`: the frames of each cluster are emitted right after its record
    /// expands, and the all-zero frames of recordless clusters are emitted
    /// at the end (see the [`FrameSink`] contract). `staging` ends up
    /// holding the same image [`Devirtualizer::decode_into`] would produce,
    /// so callers can retain it (e.g. for a decode cache) at no extra cost.
    ///
    /// # Errors
    ///
    /// Returns the first record-level failure. Frames emitted before the
    /// failure have already reached the sink — streaming trades the
    /// buffered path's atomicity for latency, so callers writing to live
    /// memory must clean up the target region on error.
    pub fn decode_streaming(
        &self,
        staging: &mut TaskBitstream,
        scratch: &mut DecodeScratch,
        sink: &mut dyn FrameSink,
    ) -> Result<(), VbsError> {
        let (w, h) = (self.vbs.width().max(1), self.vbs.height().max(1));
        staging.reset(*self.vbs.spec(), w, h);
        scratch.reserve_for(self.vbs, &self.geometry);
        scratch.emitted.clear();
        scratch.emitted.resize(w as usize * h as usize, false);
        let k = self.grid.cluster_size();
        for record in self.vbs.records() {
            self.decode_record_with(record, staging, scratch)?;
            for local in 0..(u32::from(k) * u32::from(k)) {
                let Some(site) = self.grid.macro_at(record.position, local as u16) else {
                    continue;
                };
                sink.emit(site, staging.frame(site));
                scratch.emitted[site.y as usize * w as usize + site.x as usize] = true;
            }
        }
        for y in 0..h {
            for x in 0..w {
                if !scratch.emitted[y as usize * w as usize + x as usize] {
                    let at = Coord::new(x, y);
                    sink.emit(at, staging.frame(at));
                }
            }
        }
        Ok(())
    }

    /// Expands one record into `task` (only the record's own frames are
    /// touched) and returns the task-relative wires the expansion claimed.
    ///
    /// The claimed-wire list is what the offline feedback loop of the encoder
    /// inspects: a coded record is only kept if its expansion stays within
    /// the wires the original routing used for the cluster.
    ///
    /// This compatibility wrapper allocates a scratch per call; repeated
    /// callers should use [`Devirtualizer::decode_record_with`] and read
    /// [`DecodeScratch::claimed_wires`].
    ///
    /// # Errors
    ///
    /// Returns [`VbsError::DecodeConflict`], [`VbsError::DecodeNoPath`],
    /// [`VbsError::DanglingBoundary`] or [`VbsError::Malformed`] when the
    /// record cannot be expanded.
    pub fn decode_record_into(
        &self,
        record: &ClusterRecord,
        task: &mut TaskBitstream,
    ) -> Result<Vec<WireRef>, VbsError> {
        let mut scratch = DecodeScratch::new();
        self.decode_record_with(record, task, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.claimed))
    }

    /// As [`Devirtualizer::decode_record_into`], but with every working
    /// buffer taken from `scratch`; the claimed wires are left in
    /// [`DecodeScratch::claimed_wires`].
    ///
    /// # Errors
    ///
    /// As [`Devirtualizer::decode_record_into`].
    pub fn decode_record_with(
        &self,
        record: &ClusterRecord,
        task: &mut TaskBitstream,
        scratch: &mut DecodeScratch,
    ) -> Result<(), VbsError> {
        let cluster = record.position;
        let k = self.grid.cluster_size();
        let spec = self.vbs.spec();
        let lb_bits = spec.lb_config_bits();
        scratch.claimed.clear();

        if record.logic.len() != self.vbs.logic_bits_per_record() {
            return Err(VbsError::Malformed {
                reason: format!(
                    "record at {cluster} carries {} logic bits, expected {}",
                    record.logic.len(),
                    self.vbs.logic_bits_per_record()
                ),
            });
        }

        // 1. Logic sections.
        for local in 0..(k as usize * k as usize) {
            let Some(site) = self.grid.macro_at(cluster, local as u16) else {
                continue;
            };
            let bits = record.logic[local * lb_bits..(local + 1) * lb_bits]
                .iter()
                .copied();
            task.frame_mut(site).set_logic_bits(bits);
        }

        // 2. Routing sections.
        match &record.routes {
            ClusterRoutes::Raw(raw) => {
                if raw.len() != self.vbs.raw_routing_bits_per_record() {
                    return Err(VbsError::Malformed {
                        reason: format!(
                            "raw record at {cluster} carries {} routing bits, expected {}",
                            raw.len(),
                            self.vbs.raw_routing_bits_per_record()
                        ),
                    });
                }
                let per_macro = spec.raw_bits_per_macro() - lb_bits;
                for local in 0..(k as usize * k as usize) {
                    let Some(site) = self.grid.macro_at(cluster, local as u16) else {
                        continue;
                    };
                    let mut frame = task.frame_mut(site);
                    for (i, &bit) in raw[local * per_macro..(local + 1) * per_macro]
                        .iter()
                        .enumerate()
                    {
                        frame.set_bit(lb_bits + i, bit);
                    }
                }
            }
            ClusterRoutes::Coded(connections) => {
                scratch.nets.clear();
                let adj = scratch.adj.ensure(&self.geometry, k);
                scratch
                    .nets
                    .reserve(connections.len(), adj.nodes.len(), adj.wire_nodes);
                for connection in connections {
                    self.route_connection(
                        cluster,
                        connection,
                        adj,
                        &mut scratch.nets,
                        &mut scratch.search,
                        task,
                    )?;
                }
                scratch.claimed.extend_from_slice(&scratch.nets.claimed);
                scratch.claimed.sort_unstable();
            }
        }
        Ok(())
    }

    /// Routes one coded connection inside its cluster and writes the switches
    /// it programs.
    #[allow(clippy::too_many_arguments)]
    fn route_connection(
        &self,
        cluster: Coord,
        connection: &Connection,
        adj: &AdjTable,
        nets: &mut NetScratch,
        search: &mut SearchScratch,
        task: &mut TaskBitstream,
    ) -> Result<(), VbsError> {
        let source = self.io_node(cluster, connection.input)?;
        let target = self.io_node(cluster, connection.output)?;
        let graph = RrGraph::new(&self.geometry);
        let group = nets.group_of_endpoints(&graph, source, target);

        if source == target {
            return Ok(());
        }
        if !self.local_dijkstra(cluster, &graph, adj, source, target, group, search, nets) {
            return Err(VbsError::DecodeNoPath {
                cluster,
                connection: connection.to_string(),
            });
        }

        // Program the switches along the path and claim its wires.
        for window in search.path.windows(2) {
            let (a, b) = (window[0], window[1]);
            let switch =
                edge_to_switch(&self.geometry, a, b).map_err(|_| VbsError::DecodeConflict {
                    cluster,
                    connection: connection.to_string(),
                })?;
            let site = switch.site();
            if self.grid.cluster_of(site) != cluster {
                return Err(VbsError::DecodeConflict {
                    cluster,
                    connection: connection.to_string(),
                });
            }
            let mut frame = task.frame_mut(site);
            match switch {
                SwitchSetting::Crossing { pin, track, .. } => frame.set_crossing(pin, track, true),
                SwitchSetting::SwitchBox { track, pair, .. } => frame.set_sb(track, pair, true),
            }
        }
        for node in &search.path {
            if let RrNode::Wire(w) = node {
                nets.claim(&graph, *w, group);
            }
        }
        Ok(())
    }

    /// Maps a cluster I/O to its routing-resource node (task-relative).
    fn io_node(&self, cluster: Coord, io: ClusterIo) -> Result<RrNode, VbsError> {
        match io {
            ClusterIo::Null => Err(VbsError::Malformed {
                reason: format!("null i/o used as a connection endpoint in cluster {cluster}"),
            }),
            ClusterIo::Boundary { side, offset } => {
                let wire = self.grid.boundary_wire(cluster, side, offset)?;
                Ok(RrNode::Wire(wire))
            }
            ClusterIo::Pin { local, pin } => {
                let site = self
                    .grid
                    .macro_at(cluster, local)
                    .ok_or(VbsError::RecordOutOfTask { cluster })?;
                if pin >= self.vbs.spec().lb_pins() {
                    return Err(VbsError::InvalidIo {
                        index: pin as u32,
                        io_count: self.vbs.spec().lb_pins() as u32,
                    });
                }
                Ok(RrNode::Pin { site, pin })
            }
        }
    }

    /// Deterministic Dijkstra constrained to the cluster: boundary-crossing
    /// wires may only be used when they are an endpoint or already belong to
    /// the connection's net; interior wires are exclusive per net.
    ///
    /// Search state lives in `search` (dense arrays indexed by
    /// [`RrGraph::index`], reset through a generation stamp); on success the
    /// path is left in `search.path` and `true` is returned. The relaxation
    /// rules and tie-breaking are identical to the original map-based
    /// implementation, so decoded bits never depend on which scratch decoded
    /// them.
    #[allow(clippy::too_many_arguments)]
    fn local_dijkstra(
        &self,
        cluster: Coord,
        graph: &RrGraph<'_>,
        adj: &AdjTable,
        source: RrNode,
        target: RrNode,
        group: u32,
        search: &mut SearchScratch,
        nets: &NetScratch,
    ) -> bool {
        search.reserve(graph.node_count());
        search.begin();
        let SearchScratch {
            cost,
            parent,
            stamp,
            generation,
            heap,
            path,
            ..
        } = search;
        let generation = *generation;
        let cluster_key = AdjTable::pack(cluster.x, cluster.y);
        let group_root = nets.resolve(group);

        let si = graph.index(source);
        let ti = graph.index(target);
        stamp[si] = generation;
        cost[si] = 0.0;
        parent[si] = si as u32;
        heap.push(Entry {
            cost: 0.0,
            node: source,
            idx: si as u32,
        });

        while let Some(Entry {
            cost: node_cost,
            idx: ni,
            ..
        }) = heap.pop()
        {
            let ni = ni as usize;
            if stamp[ni] == generation && node_cost > cost[ni] {
                continue;
            }
            if ni == ti {
                // Rebuild the path.
                path.push(target);
                let mut cursor = ti;
                while cursor != si {
                    cursor = parent[cursor] as usize;
                    path.push(adj.nodes[cursor]);
                }
                path.reverse();
                return true;
            }
            // Pins other than the endpoints are never expanded through
            // (pin indices follow all wire indices).
            if ni >= adj.wire_nodes && ni != si {
                continue;
            }
            for &next_u in adj.neighbors_of(ni) {
                let next = next_u as usize;
                let step = if next >= adj.wire_nodes {
                    // A pin: only the target pin may terminate the path.
                    if next != ti {
                        continue;
                    }
                    1.0
                } else {
                    let meta = adj.wire_meta[next];
                    if meta.c0 != cluster_key && meta.c1 != cluster_key {
                        continue;
                    }
                    if nets.owner_gen[next] == nets.generation {
                        // A wire already carrying a different net can never
                        // be reused; resources of the same net are nearly
                        // free, which makes fanout share its trunk.
                        if nets.resolve(nets.owner_group[next]) != group_root {
                            continue;
                        }
                        0.1
                    } else if meta.interior {
                        1.0
                    } else {
                        // Unallocated boundary-crossing wire: strongly
                        // discouraged (it is shared with a neighbouring
                        // cluster), used only when no interior path exists.
                        // The encoder's feedback loop verifies such choices
                        // against the original routing.
                        6.0
                    }
                };
                let next_cost = node_cost + step;
                let better = if stamp[next] == generation {
                    next_cost < cost[next] - f32::EPSILON
                } else {
                    true
                };
                if better {
                    stamp[next] = generation;
                    cost[next] = next_cost;
                    parent[next] = ni as u32;
                    heap.push(Entry {
                        cost: next_cost,
                        node: adj.nodes[next],
                        idx: next_u,
                    });
                }
            }
        }
        false
    }
}

#[derive(Debug, PartialEq)]
struct Entry {
    cost: f32,
    node: RrNode,
    /// Dense index of `node` — carried so the pop path never recomputes it.
    /// Never compared: `node` determines it.
    idx: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ClusterRecord, ClusterRoutes};
    use vbs_arch::{ArchSpec, SbPair, Side};

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    fn record(connections: Vec<Connection>) -> ClusterRecord {
        ClusterRecord {
            position: Coord::new(1, 1),
            logic: vec![false; spec().lb_config_bits()],
            routes: ClusterRoutes::Coded(connections),
        }
    }

    fn decode_single(connections: Vec<Connection>) -> Result<TaskBitstream, VbsError> {
        let vbs = Vbs::new(spec(), 1, 4, 4, vec![record(connections)]).unwrap();
        decode(&vbs)
    }

    #[test]
    fn straight_through_connection_sets_one_sb_switch() {
        let task = decode_single(vec![Connection {
            input: ClusterIo::Boundary {
                side: Side::West,
                offset: 2,
            },
            output: ClusterIo::Boundary {
                side: Side::East,
                offset: 2,
            },
        }])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(2, SbPair::EastWest));
        assert_eq!(frame.popcount(), 1);
    }

    #[test]
    fn pin_hookup_from_south_uses_sb_and_crossing() {
        // South boundary to pin 1 (odd -> north channel): needs the
        // north-south pass switch plus the crossing.
        let task = decode_single(vec![Connection {
            input: ClusterIo::Boundary {
                side: Side::South,
                offset: 3,
            },
            output: ClusterIo::Pin { local: 0, pin: 1 },
        }])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(3, SbPair::NorthSouth));
        assert!(frame.crossing(1, 3));
        assert_eq!(frame.popcount(), 2);
    }

    #[test]
    fn fanout_reuses_already_routed_resources() {
        // One net entering west and leaving both east and to pin 0.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.crossing(0, 0));
        assert_eq!(
            frame.popcount(),
            2,
            "the east wire is shared, not re-routed"
        );
    }

    #[test]
    fn shared_endpoints_are_one_electrical_net() {
        // Connections sharing the east[0] endpoint describe one net fanning
        // in/out through three boundaries: the decoder merges them instead of
        // duplicating resources.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::South,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.sb(0, SbPair::SouthEast));
        assert_eq!(frame.popcount(), 2);
    }

    #[test]
    fn two_nets_never_share_a_wire() {
        // Net 1 goes straight through on track 2; net 2 wants to reach pin 0
        // (an even pin, hooked through the macro's horizontal wires). The
        // decoder must hook pin 0 through a *different* track than net 1.
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 2,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 2,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::South,
                    offset: 4,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(2, SbPair::EastWest));
        // Net 2 must not use crossing(0, 2): track 2's horizontal wire belongs
        // to net 1.
        assert!(!frame.crossing(0, 2));
        assert!(frame.crossing(0, 4) || (0..5).any(|t| t != 2 && frame.crossing(0, t)));
    }

    #[test]
    fn different_tracks_do_not_conflict() {
        let task = decode_single(vec![
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 0,
                },
            },
            Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 1,
                },
                output: ClusterIo::Boundary {
                    side: Side::East,
                    offset: 1,
                },
            },
        ])
        .unwrap();
        let frame = task.frame(Coord::new(1, 1));
        assert!(frame.sb(0, SbPair::EastWest));
        assert!(frame.sb(1, SbPair::EastWest));
    }

    #[test]
    fn null_endpoints_are_malformed() {
        let result = decode_single(vec![Connection {
            input: ClusterIo::Null,
            output: ClusterIo::Pin { local: 0, pin: 0 },
        }]);
        assert!(matches!(result, Err(VbsError::Malformed { .. })));
    }

    #[test]
    fn dangling_boundary_is_reported() {
        // Cluster (0, 0) has no west neighbour: west boundary wires do not
        // exist there.
        let rec = ClusterRecord {
            position: Coord::new(0, 0),
            logic: vec![false; spec().lb_config_bits()],
            routes: ClusterRoutes::Coded(vec![Connection {
                input: ClusterIo::Boundary {
                    side: Side::West,
                    offset: 0,
                },
                output: ClusterIo::Pin { local: 0, pin: 0 },
            }]),
        };
        let vbs = Vbs::new(spec(), 1, 4, 4, vec![rec]).unwrap();
        assert!(matches!(
            decode(&vbs),
            Err(VbsError::DanglingBoundary { .. })
        ));
    }

    #[test]
    fn raw_records_restore_their_bits_verbatim() {
        let s = spec();
        let routing_bits = s.raw_bits_per_macro() - s.lb_config_bits();
        let pattern: Vec<bool> = (0..routing_bits).map(|i| i % 11 == 0).collect();
        let rec = ClusterRecord {
            position: Coord::new(2, 2),
            logic: (0..s.lb_config_bits()).map(|i| i % 3 == 0).collect(),
            routes: ClusterRoutes::Raw(pattern.clone()),
        };
        let vbs = Vbs::new(s, 1, 4, 4, vec![rec]).unwrap();
        let task = decode(&vbs).unwrap();
        let frame = task.frame(Coord::new(2, 2));
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(frame.bit(s.lb_config_bits() + i), bit);
        }
        assert!(frame.bit(0));
    }

    #[test]
    fn decode_at_reports_the_target_rectangle() {
        let vbs = Vbs::new(spec(), 1, 3, 2, Vec::new()).unwrap();
        let (rect, task) = decode_at(&vbs, Coord::new(5, 6)).unwrap();
        assert_eq!(rect, Rect::new(Coord::new(5, 6), 3, 2));
        assert_eq!(task.width(), 3);
    }

    fn two_net_vbs() -> Vbs {
        Vbs::new(
            spec(),
            1,
            4,
            4,
            vec![record(vec![
                Connection {
                    input: ClusterIo::Boundary {
                        side: Side::West,
                        offset: 2,
                    },
                    output: ClusterIo::Boundary {
                        side: Side::East,
                        offset: 2,
                    },
                },
                Connection {
                    input: ClusterIo::Boundary {
                        side: Side::South,
                        offset: 4,
                    },
                    output: ClusterIo::Pin { local: 0, pin: 0 },
                },
            ])],
        )
        .unwrap()
    }

    #[test]
    fn decode_into_matches_buffered_decode_across_scratch_reuse() {
        let vbs = two_net_vbs();
        let buffered = decode(&vbs).unwrap();
        let mut scratch = DecodeScratch::new();
        let mut task = TaskBitstream::empty(spec(), 1, 1);
        // Reuse the same scratch and buffer over and over; every iteration
        // must be bit-identical to the fresh decode.
        for _ in 0..3 {
            decode_into(&vbs, &mut task, &mut scratch).unwrap();
            assert_eq!(task.diff_count(&buffered).unwrap(), 0);
        }
        // Interleave a different stream: the scratch carries no state over.
        let empty = Vbs::new(spec(), 1, 2, 2, Vec::new()).unwrap();
        decode_into(&empty, &mut task, &mut scratch).unwrap();
        assert_eq!(task.popcount(), 0);
        decode_into(&vbs, &mut task, &mut scratch).unwrap();
        assert_eq!(task.diff_count(&buffered).unwrap(), 0);
    }

    /// A sink recording every emission so the tests can audit coverage.
    #[derive(Default)]
    struct RecordingSink {
        emits: Vec<(Coord, usize)>,
        image: Option<TaskBitstream>,
    }

    impl FrameSink for RecordingSink {
        fn emit(&mut self, at: Coord, frame: FrameRef<'_>) {
            self.emits.push((at, frame.popcount()));
            if let Some(image) = &mut self.image {
                image.frame_mut(at).copy_from(frame);
            }
        }
    }

    #[test]
    fn streaming_emits_every_frame_and_converges_to_the_buffered_image() {
        let vbs = two_net_vbs();
        let buffered = decode(&vbs).unwrap();
        let devirt = Devirtualizer::new(&vbs).unwrap();
        let mut scratch = DecodeScratch::new();
        let mut staging = TaskBitstream::empty(spec(), 1, 1);
        let mut sink = RecordingSink {
            image: Some(TaskBitstream::empty(spec(), 4, 4)),
            ..RecordingSink::default()
        };
        devirt
            .decode_streaming(&mut staging, &mut scratch, &mut sink)
            .unwrap();
        // Every macro of the 4x4 rectangle was emitted exactly once (no
        // duplicate cluster records in this stream).
        assert_eq!(sink.emits.len(), 16);
        let mut seen: Vec<Coord> = sink.emits.iter().map(|(c, _)| *c).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16);
        // The sink reassembles the buffered image; the staging holds it too.
        assert_eq!(sink.image.unwrap().diff_count(&buffered).unwrap(), 0);
        assert_eq!(staging.diff_count(&buffered).unwrap(), 0);
        // The occupied cluster streamed before the empty remainder.
        assert_eq!(sink.emits[0].0, Coord::new(1, 1));
        assert!(sink.emits[0].1 > 0);
    }

    #[test]
    fn decode_record_with_reports_claimed_wires_in_scratch() {
        let vbs = two_net_vbs();
        let devirt = Devirtualizer::new(&vbs).unwrap();
        let mut scratch = DecodeScratch::new();
        let mut task = TaskBitstream::empty(spec(), 4, 4);
        let legacy = devirt
            .decode_record_into(&vbs.records()[0], &mut task)
            .unwrap();
        let mut task2 = TaskBitstream::empty(spec(), 4, 4);
        devirt
            .decode_record_with(&vbs.records()[0], &mut task2, &mut scratch)
            .unwrap();
        assert_eq!(scratch.claimed_wires(), legacy.as_slice());
        assert!(!scratch.claimed_wires().is_empty());
        assert_eq!(task.diff_count(&task2).unwrap(), 0);
    }
}
