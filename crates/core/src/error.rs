use std::fmt;
use vbs_arch::Coord;

/// Errors produced while encoding, decoding or parsing Virtual Bit-Streams.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VbsError {
    /// The requested cluster size is invalid (zero, or larger than the task).
    InvalidClusterSize {
        /// The rejected cluster size.
        cluster_size: u16,
    },
    /// A connection endpoint does not name a valid I/O of the cluster.
    InvalidIo {
        /// The rejected raw index.
        index: u32,
        /// The number of valid identifiers.
        io_count: u32,
    },
    /// A connection references a wire that does not exist on the fabric
    /// (e.g. a west boundary I/O of the task's leftmost column).
    DanglingBoundary {
        /// The cluster position (cluster units).
        cluster: Coord,
        /// Description of the offending I/O.
        io: String,
    },
    /// The de-virtualization router could not realize a connection without
    /// conflicting with previously decoded connections.
    DecodeConflict {
        /// The cluster position (cluster units).
        cluster: Coord,
        /// Description of the connection that failed.
        connection: String,
    },
    /// The de-virtualization router found no path for a connection.
    DecodeNoPath {
        /// The cluster position (cluster units).
        cluster: Coord,
        /// Description of the connection that failed.
        connection: String,
    },
    /// A record lies outside the task rectangle.
    RecordOutOfTask {
        /// The cluster position (cluster units).
        cluster: Coord,
    },
    /// A serialized VBS is truncated or malformed.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// The routing and the raw bit-stream passed to the encoder do not
    /// describe the same task.
    EncoderInputMismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// An architecture-level error surfaced while interpreting the stream.
    Arch(vbs_arch::ArchError),
    /// A bit-stream-level error surfaced while reconstructing frames.
    Bitstream(vbs_bitstream::BitstreamError),
}

impl fmt::Display for VbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VbsError::InvalidClusterSize { cluster_size } => {
                write!(f, "invalid cluster size {cluster_size}")
            }
            VbsError::InvalidIo { index, io_count } => {
                write!(f, "i/o index {index} out of range (0..{io_count})")
            }
            VbsError::DanglingBoundary { cluster, io } => {
                write!(f, "cluster {cluster} references a non-existent wire: {io}")
            }
            VbsError::DecodeConflict {
                cluster,
                connection,
            } => write!(
                f,
                "decoding conflict in cluster {cluster} for connection {connection}"
            ),
            VbsError::DecodeNoPath {
                cluster,
                connection,
            } => write!(
                f,
                "no de-virtualization path in cluster {cluster} for connection {connection}"
            ),
            VbsError::RecordOutOfTask { cluster } => {
                write!(f, "record at cluster {cluster} lies outside the task")
            }
            VbsError::Malformed { reason } => write!(f, "malformed virtual bit-stream: {reason}"),
            VbsError::EncoderInputMismatch { reason } => {
                write!(f, "encoder inputs are inconsistent: {reason}")
            }
            VbsError::Arch(e) => write!(f, "architecture error: {e}"),
            VbsError::Bitstream(e) => write!(f, "bit-stream error: {e}"),
        }
    }
}

impl std::error::Error for VbsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VbsError::Arch(e) => Some(e),
            VbsError::Bitstream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vbs_arch::ArchError> for VbsError {
    fn from(e: vbs_arch::ArchError) -> Self {
        VbsError::Arch(e)
    }
}

impl From<vbs_bitstream::BitstreamError> for VbsError {
    fn from(e: vbs_bitstream::BitstreamError) -> Self {
        VbsError::Bitstream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VbsError>();
        let e = VbsError::DecodeConflict {
            cluster: Coord::new(1, 2),
            connection: "west[3] -> pin0".into(),
        };
        assert!(e.to_string().contains("(1, 2)"));
    }

    #[test]
    fn arch_errors_convert() {
        let arch = vbs_arch::ArchError::InvalidChannelWidth { width: 1 };
        let e: VbsError = arch.clone().into();
        assert!(matches!(e, VbsError::Arch(a) if a == arch));
    }
}
