use vbs_arch::{ArchSpec, Device};
use vbs_core::{decode, ClusterRoutes, VbsEncoder};
use vbs_netlist::generate::SyntheticSpec;
use vbs_place::{place, PlacerConfig};
use vbs_route::{route, RouterConfig};

#[test]
fn fine_grain_roundtrip_is_bit_exact() {
    let netlist = SyntheticSpec::new("enc", 30, 5, 5)
        .with_seed(1)
        .build()
        .unwrap();
    let device = Device::new(ArchSpec::new(10, 6).unwrap(), 8, 8).unwrap();
    let placement = place(&netlist, &device, &PlacerConfig::fast(1)).unwrap();
    let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
    let raw = vbs_bitstream::generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
    let encoder = VbsEncoder::new(*device.spec(), 1).unwrap();
    let vbs = encoder.encode(&raw, &routing).unwrap();
    let decoded = decode(&vbs).unwrap();
    let mut n_raw_records = 0;
    for r in vbs.records() {
        if matches!(r.routes, ClusterRoutes::Raw(_)) {
            n_raw_records += 1;
        }
    }
    eprintln!("raw records: {} / {}", n_raw_records, vbs.records().len());
    for (coord, frame) in raw.iter_frames() {
        let d = decoded.frame(coord);
        let diff = frame.diff_count(d);
        if diff > 0 {
            eprintln!(
                "macro {coord}: {diff} differing bits, orig popcount {}, decoded popcount {}",
                frame.popcount(),
                d.popcount()
            );
            let layout = frame.layout();
            for i in 0..frame.len() {
                if frame.bit(i) != d.bit(i) {
                    let section = if i < layout.lb_config_range().end {
                        "logic"
                    } else if i < layout.sb_range().end {
                        "sb"
                    } else {
                        "crossing"
                    };
                    eprintln!(
                        "   bit {i} ({section}): orig={} dec={}",
                        frame.bit(i),
                        d.bit(i)
                    );
                }
            }
            for r in vbs.records() {
                if r.position == coord {
                    if let ClusterRoutes::Coded(c) = &r.routes {
                        for conn in c {
                            eprintln!("   conn: {conn}");
                        }
                    }
                }
            }
        }
    }
    assert_eq!(decoded.diff_count(&raw).unwrap(), 0);
}
