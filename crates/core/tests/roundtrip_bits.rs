use vbs_arch::{ArchSpec, Coord, Device};
use vbs_core::{decode, ClusterRecord, ClusterRoutes, Vbs, VbsEncoder};
use vbs_netlist::generate::SyntheticSpec;
use vbs_place::{place, PlacerConfig};
use vbs_route::{route, RouterConfig};

#[test]
fn fine_grain_roundtrip_is_bit_exact() {
    let netlist = SyntheticSpec::new("enc", 30, 5, 5)
        .with_seed(1)
        .build()
        .unwrap();
    let device = Device::new(ArchSpec::new(10, 6).unwrap(), 8, 8).unwrap();
    let placement = place(&netlist, &device, &PlacerConfig::fast(1)).unwrap();
    let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
    let raw = vbs_bitstream::generate_bitstream(&netlist, &device, &placement, &routing).unwrap();
    let encoder = VbsEncoder::new(*device.spec(), 1).unwrap();
    let vbs = encoder.encode(&raw, &routing).unwrap();
    let decoded = decode(&vbs).unwrap();
    let mut n_raw_records = 0;
    for r in vbs.records() {
        if matches!(r.routes, ClusterRoutes::Raw(_)) {
            n_raw_records += 1;
        }
    }
    eprintln!("raw records: {} / {}", n_raw_records, vbs.records().len());
    for (coord, frame) in raw.iter_frames() {
        let d = decoded.frame(coord);
        let diff = frame.diff_count(d);
        if diff > 0 {
            eprintln!(
                "macro {coord}: {diff} differing bits, orig popcount {}, decoded popcount {}",
                frame.popcount(),
                d.popcount()
            );
            let layout = frame.layout();
            for i in 0..frame.len() {
                if frame.bit(i) != d.bit(i) {
                    let section = if i < layout.lb_config_range().end {
                        "logic"
                    } else if i < layout.sb_range().end {
                        "sb"
                    } else {
                        "crossing"
                    };
                    eprintln!(
                        "   bit {i} ({section}): orig={} dec={}",
                        frame.bit(i),
                        d.bit(i)
                    );
                }
            }
            for r in vbs.records() {
                if r.position == coord {
                    if let ClusterRoutes::Coded(c) = &r.routes {
                        for conn in c {
                            eprintln!("   conn: {conn}");
                        }
                    }
                }
            }
        }
    }
    assert_eq!(decoded.diff_count(&raw).unwrap(), 0);
}

/// An empty task (no occupied cluster at all — a region reserved but never
/// programmed) survives serialization and decodes to an all-zero bit-stream
/// of the right shape.
#[test]
fn empty_task_bitstream_roundtrips() {
    let spec = ArchSpec::paper_example();
    for (w, h) in [(1u16, 1u16), (1, 7), (6, 1), (5, 4)] {
        let vbs = Vbs::new(spec, 1, w, h, Vec::new()).unwrap();
        let back = Vbs::from_bytes(&vbs.to_bytes()).unwrap();
        assert_eq!(back, vbs, "{w}x{h}");
        let task = decode(&back).unwrap();
        assert_eq!(task.width(), w);
        assert_eq!(task.height(), h);
        assert_eq!(task.popcount(), 0, "{w}x{h} decodes non-blank");
        assert_eq!(task.occupied_macros(), 0);
    }
}

/// A single-frame task — 1x1 macros, so every field width and coordinate in
/// the format collapses to its minimum — stays bit-exact through encode,
/// serialize, parse and decode.
#[test]
fn single_frame_task_is_bit_exact() {
    let spec = ArchSpec::paper_example();
    let logic_bits = spec.lb_config_bits();
    let routing_bits = spec.raw_bits_per_macro() - logic_bits;
    let logic: Vec<bool> = (0..logic_bits).map(|i| i % 3 == 1).collect();
    let routing: Vec<bool> = (0..routing_bits).map(|i| i % 5 == 2).collect();
    let record = ClusterRecord {
        position: Coord::new(0, 0),
        logic: logic.clone(),
        routes: ClusterRoutes::Raw(routing.clone()),
    };
    let vbs = Vbs::new(spec, 1, 1, 1, vec![record]).unwrap();
    let back = Vbs::from_bytes(&vbs.to_bytes()).unwrap();
    assert_eq!(back, vbs);

    let task = decode(&back).unwrap();
    assert_eq!((task.width(), task.height()), (1, 1));
    let frame = task.frame(Coord::new(0, 0));
    for (i, &bit) in logic.iter().enumerate() {
        assert_eq!(frame.bit(i), bit, "logic bit {i}");
    }
    for (i, &bit) in routing.iter().enumerate() {
        assert_eq!(frame.bit(logic_bits + i), bit, "routing bit {i}");
    }
}

/// Frames programmed at the maximum wordline offsets — the very first and
/// very last bit of the frame, in the record at the task's far corner —
/// survive the roundtrip. This guards the bit-packing at both ends of the
/// frame layout and the widest coordinate values a record can carry.
#[test]
fn max_wordline_offset_frames_roundtrip() {
    let spec = ArchSpec::paper_example();
    let logic_bits = spec.lb_config_bits();
    let n_raw = spec.raw_bits_per_macro();
    let routing_bits = n_raw - logic_bits;

    // Only the extreme offsets are programmed: logic bit 0, the last logic
    // bit, the first routing bit and the last routing bit (= frame bit
    // N_raw - 1, the maximum wordline offset of Equation (1)).
    let mut logic = vec![false; logic_bits];
    logic[0] = true;
    logic[logic_bits - 1] = true;
    let mut routing = vec![false; routing_bits];
    routing[0] = true;
    routing[routing_bits - 1] = true;

    let (w, h) = (4u16, 4u16);
    let corner = Coord::new(w - 1, h - 1);
    let record = ClusterRecord {
        position: corner,
        logic: logic.clone(),
        routes: ClusterRoutes::Raw(routing.clone()),
    };
    let vbs = Vbs::new(spec, 1, w, h, vec![record]).unwrap();
    let back = Vbs::from_bytes(&vbs.to_bytes()).unwrap();
    assert_eq!(back, vbs);

    let task = decode(&back).unwrap();
    let frame = task.frame(corner);
    assert!(frame.bit(0), "first logic bit lost");
    assert!(frame.bit(logic_bits - 1), "last logic bit lost");
    assert!(frame.bit(logic_bits), "first routing bit lost");
    assert!(frame.bit(n_raw - 1), "maximum-offset bit lost");
    assert_eq!(frame.popcount(), 4, "stray bits appeared");
    // Every other macro of the task stays blank.
    assert_eq!(task.occupied_macros(), 1);
}
