//! Corruption robustness of the VBS wire format, driven by the checked-in
//! MCNC corpus streams (real place/route/encode output, not synthetic
//! bytes).
//!
//! Pinned properties:
//!
//! * `Vbs::from_bytes` of arbitrarily mutated or truncated corpus bytes
//!   never panics — it returns `Err` or a fully parsed stream.
//! * When a mutated v1 stream happens to parse, it is a complete,
//!   self-consistent stream: it re-serializes and re-parses to the same
//!   value and de-virtualizes to an image of its declared shape — no
//!   silent partial decode.
//! * The checked v2 framing (`to_bytes_checked`) turns *every* single-bit
//!   flip and every truncation into an explicit `Err`.

use proptest::prelude::*;
use vbs_core::{decode, Vbs};

/// Every `.vbs` stream of the checked-in corpus, raw bytes.
fn corpus_streams() -> &'static Vec<Vec<u8>> {
    static STREAMS: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    STREAMS.get_or_init(|| {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/traces/mcnc");
        let mut streams: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .expect("corpus directory present")
            .filter_map(|entry| {
                let path = entry.expect("corpus dir entry").path();
                if path.extension().is_some_and(|e| e == "vbs") {
                    Some((
                        path.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&path).expect("corpus stream readable"),
                    ))
                } else {
                    None
                }
            })
            .collect();
        assert!(!streams.is_empty(), "corpus holds .vbs streams");
        streams.sort(); // deterministic order whatever the directory yields
        streams.into_iter().map(|(_, bytes)| bytes).collect()
    })
}

proptest! {
    /// Arbitrary bit flips in a v1 corpus stream never panic the parser,
    /// and whenever the mutated bytes still parse, the result is a
    /// complete stream — it roundtrips bit-identically through its own
    /// serialization and decodes to an image of its declared shape.
    #[test]
    fn mutated_v1_streams_never_panic_or_partially_decode(
        stream_sel in 0usize..1 << 16,
        byte_sel in 0usize..1 << 24,
        bit in 0u8..8,
        extra_sel in 0usize..1 << 24,
        extra_bit in 0u8..8,
    ) {
        let streams = corpus_streams();
        let mut bytes = streams[stream_sel % streams.len()].clone();
        let len = bytes.len();
        bytes[byte_sel % len] ^= 1 << bit;
        bytes[extra_sel % len] ^= 1 << extra_bit;
        if let Ok(parsed) = Vbs::from_bytes(&bytes) {
            let reparsed = Vbs::from_bytes(&parsed.to_bytes())
                .expect("a parsed stream must re-serialize parseably");
            prop_assert_eq!(&reparsed, &parsed, "roundtrip changed the stream");
            if let Ok(image) = decode(&parsed) {
                prop_assert_eq!(image.width(), parsed.width());
                prop_assert_eq!(image.height(), parsed.height());
            }
        }
    }

    /// Truncating a v1 corpus stream at any point never panics; the v2
    /// checked framing rejects the same truncation outright.
    #[test]
    fn truncated_streams_never_panic(
        stream_sel in 0usize..1 << 16,
        cut_sel in 0usize..1 << 24,
    ) {
        let streams = corpus_streams();
        let bytes = &streams[stream_sel % streams.len()];
        let cut = cut_sel % bytes.len();
        // v1: truncation may or may not parse (the prefix of a stream can
        // be a smaller valid stream) but must never panic or half-decode.
        if let Ok(parsed) = Vbs::from_bytes(&bytes[..cut]) {
            let _ = decode(&parsed);
        }
        // v2: the CRC footer makes truncation an explicit error.
        let full = Vbs::from_bytes(bytes).expect("corpus streams parse");
        let checked = full.to_bytes_checked();
        let checked_cut = cut_sel % checked.len();
        prop_assert!(
            Vbs::from_bytes(&checked[..checked_cut]).is_err(),
            "truncated checked stream must be rejected"
        );
    }

    /// Every single-bit flip anywhere in a checked (v2) stream is caught
    /// by the CRC footer: `from_bytes` returns `Err`, never a different
    /// task.
    #[test]
    fn any_bit_flip_in_a_checked_stream_is_rejected(
        stream_sel in 0usize..1 << 16,
        byte_sel in 0usize..1 << 24,
        bit in 0u8..8,
    ) {
        let streams = corpus_streams();
        let full = Vbs::from_bytes(&streams[stream_sel % streams.len()])
            .expect("corpus streams parse");
        let mut checked = full.to_bytes_checked();
        let index = byte_sel % checked.len();
        checked[index] ^= 1 << bit;
        // The version nibble lives in the first byte: flipping it may turn
        // the stream into a v1 claim, which the CRC no longer guards — the
        // parser must still reject or parse completely, but only a stream
        // still claiming v2 is guaranteed an Err.
        if checked[0] >> 4 == full.to_bytes_checked()[0] >> 4 || index != 0 {
            prop_assert!(
                Vbs::from_bytes(&checked).is_err(),
                "bit {bit} of byte {index} flipped undetected"
            );
        } else if let Ok(parsed) = Vbs::from_bytes(&checked) {
            let reparsed = Vbs::from_bytes(&parsed.to_bytes())
                .expect("a parsed stream must re-serialize parseably");
            prop_assert_eq!(&reparsed, &parsed);
        }
    }
}
