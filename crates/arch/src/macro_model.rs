//! The *macro*: one logic block, its adjacent connection boxes and one switch
//! box — the elementary building block of the fabric and the unit of Virtual
//! Bit-Stream coding (Figure 1 of the paper).
//!
//! Two views of the macro are defined here:
//!
//! * the **black-box view** used by the VBS connection lists: every signal
//!   entering or leaving the macro is named by a [`MacroIo`] identifier coded
//!   on `M = ⌈log2(4W + L + 1)⌉` bits;
//! * the **raw frame view** used by the conventional bit-stream: the
//!   [`FrameLayout`] maps every programmable switch of the macro (Equation
//!   (1)) to a bit position inside an `N_raw`-bit frame.

use crate::error::ArchError;
use crate::geometry::Side;
use crate::spec::ArchSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A black-box I/O of a macro, as coded in a VBS connection list.
///
/// The numbering is position-independent: it only refers to sides, tracks and
/// logic-block pins of *one* macro, never to absolute device coordinates.
/// This is what makes the Virtual Bit-Stream relocatable.
///
/// Index layout (for channel width `W` and `L` logic-block pins):
///
/// | index            | meaning                        |
/// |------------------|--------------------------------|
/// | `0`              | unconnected / null             |
/// | `1 ..= W`        | north boundary, track `i - 1`  |
/// | `W+1 ..= 2W`     | east boundary, track `i-W-1`   |
/// | `2W+1 ..= 3W`    | south boundary, track `i-2W-1` |
/// | `3W+1 ..= 4W`    | west boundary, track `i-3W-1`  |
/// | `4W+1 .. 4W+L+1` | logic-block pin `i - 4W - 1`   |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MacroIo {
    /// The reserved "unconnected" identifier (index 0).
    Null,
    /// A routing track crossing the given boundary of the macro.
    Boundary {
        /// Which boundary is crossed.
        side: Side,
        /// Track index within the channel (`0 .. W`).
        track: u16,
    },
    /// A logic-block pin (`0 .. L`); pin `K` is the LUT/FF output.
    Pin(u8),
}

impl MacroIo {
    /// Encodes this I/O as its index in `0 .. 4W + L + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the track or pin number is out of range for `spec`; use
    /// [`MacroIo::validate`] first when handling untrusted data.
    pub fn index(&self, spec: &ArchSpec) -> u32 {
        let w = spec.channel_width() as u32;
        match *self {
            MacroIo::Null => 0,
            MacroIo::Boundary { side, track } => {
                assert!((track as u32) < w, "track {track} out of range for W={w}");
                1 + side.index() as u32 * w + track as u32
            }
            MacroIo::Pin(p) => {
                assert!(
                    p < spec.lb_pins(),
                    "pin {p} out of range for L={}",
                    spec.lb_pins()
                );
                1 + 4 * w + p as u32
            }
        }
    }

    /// Decodes an index back into a [`MacroIo`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidMacroIoIndex`] if `index` is not a valid
    /// identifier for `spec`.
    pub fn from_index(spec: &ArchSpec, index: u32) -> Result<Self, ArchError> {
        let w = spec.channel_width() as u32;
        let l = spec.lb_pins() as u32;
        let count = spec.macro_io_count();
        if index >= count {
            return Err(ArchError::InvalidMacroIoIndex {
                index,
                io_count: count,
            });
        }
        if index == 0 {
            return Ok(MacroIo::Null);
        }
        let i = index - 1;
        if i < 4 * w {
            let side = Side::ALL[(i / w) as usize];
            let track = (i % w) as u16;
            Ok(MacroIo::Boundary { side, track })
        } else {
            let pin = (i - 4 * w) as u8;
            debug_assert!((pin as u32) < l);
            Ok(MacroIo::Pin(pin))
        }
    }

    /// Checks that this I/O is representable in `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidTrack`] or [`ArchError::InvalidPin`] when
    /// out of range.
    pub fn validate(&self, spec: &ArchSpec) -> Result<(), ArchError> {
        match *self {
            MacroIo::Null => Ok(()),
            MacroIo::Boundary { track, .. } => {
                if track < spec.channel_width() {
                    Ok(())
                } else {
                    Err(ArchError::InvalidTrack {
                        track,
                        channel_width: spec.channel_width(),
                    })
                }
            }
            MacroIo::Pin(pin) => {
                if pin < spec.lb_pins() {
                    Ok(())
                } else {
                    Err(ArchError::InvalidPin {
                        pin,
                        pin_count: spec.lb_pins(),
                    })
                }
            }
        }
    }

    /// Whether this I/O is a boundary track crossing.
    pub fn is_boundary(&self) -> bool {
        matches!(self, MacroIo::Boundary { .. })
    }

    /// Whether this I/O is a logic-block pin.
    pub fn is_pin(&self) -> bool {
        matches!(self, MacroIo::Pin(_))
    }
}

impl fmt::Display for MacroIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroIo::Null => write!(f, "null"),
            MacroIo::Boundary { side, track } => write!(f, "{side}[{track}]"),
            MacroIo::Pin(p) => write!(f, "pin{p}"),
        }
    }
}

/// Which channel a logic-block pin connects to through its connection box.
///
/// In this architecture, even-numbered pins cross the horizontal channel owned
/// by the macro (its east wire stubs), odd-numbered pins cross the vertical
/// channel (its north wire stubs). The LUT output (pin `K = 6`, even) therefore
/// drives horizontal wires, which matches the classic VPR convention of output
/// pins facing `ChanX`.
pub fn pin_channel_side(pin: u8) -> Side {
    if pin.is_multiple_of(2) {
        Side::East
    } else {
        Side::North
    }
}

/// One of the six programmable pass switches of a 4-way (cross-shaped) switch
/// point, identified by the unordered pair of sides it connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SbPair {
    /// North–South (straight vertical).
    NorthSouth,
    /// North–East (turn).
    NorthEast,
    /// North–West (turn).
    NorthWest,
    /// South–East (turn).
    SouthEast,
    /// South–West (turn).
    SouthWest,
    /// East–West (straight horizontal).
    EastWest,
}

impl SbPair {
    /// All six switch-box pair positions, in frame bit order.
    pub const ALL: [SbPair; 6] = [
        SbPair::NorthSouth,
        SbPair::NorthEast,
        SbPair::NorthWest,
        SbPair::SouthEast,
        SbPair::SouthWest,
        SbPair::EastWest,
    ];

    /// Index of this pair within a 6-bit switch-point group.
    pub const fn index(self) -> usize {
        match self {
            SbPair::NorthSouth => 0,
            SbPair::NorthEast => 1,
            SbPair::NorthWest => 2,
            SbPair::SouthEast => 3,
            SbPair::SouthWest => 4,
            SbPair::EastWest => 5,
        }
    }

    /// The pair of sides connected by this switch.
    pub const fn sides(self) -> (Side, Side) {
        match self {
            SbPair::NorthSouth => (Side::North, Side::South),
            SbPair::NorthEast => (Side::North, Side::East),
            SbPair::NorthWest => (Side::North, Side::West),
            SbPair::SouthEast => (Side::South, Side::East),
            SbPair::SouthWest => (Side::South, Side::West),
            SbPair::EastWest => (Side::East, Side::West),
        }
    }

    /// The switch connecting two distinct sides, if any.
    ///
    /// Returns `None` when `a == b`.
    pub fn between(a: Side, b: Side) -> Option<SbPair> {
        if a == b {
            return None;
        }
        Some(match (a.min(b), a.max(b)) {
            (Side::North, Side::South) => SbPair::NorthSouth,
            (Side::North, Side::East) => SbPair::NorthEast,
            (Side::North, Side::West) => SbPair::NorthWest,
            (Side::East, Side::South) => SbPair::SouthEast,
            (Side::South, Side::West) => SbPair::SouthWest,
            (Side::East, Side::West) => SbPair::EastWest,
            _ => unreachable!("all unordered side pairs covered"),
        })
    }
}

impl fmt::Display for SbPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.sides();
        write!(f, "{a}-{b}")
    }
}

/// Bit-exact layout of the raw configuration frame of one macro.
///
/// The frame holds exactly [`ArchSpec::raw_bits_per_macro`] bits, laid out as:
///
/// 1. `N_LB = 2^K + 1` logic-block configuration bits (LUT truth table, then
///    the flip-flop bypass bit),
/// 2. `W` switch-box points of 6 bits each (one bit per [`SbPair`]),
/// 3. for each of the `L` pins, its `W` connection-box crossings: `W − 1`
///    4-way crossings of 6 bits followed by one 3-way crossing of 3 bits.
///    Bit 0 of each crossing group is the "pin connected to track" switch; the
///    remaining bits model the pass transistors of the wire junction and are
///    driven by the through-traffic of the crossing.
///
/// ```
/// use vbs_arch::{ArchSpec, FrameLayout};
/// let layout = FrameLayout::new(ArchSpec::paper_example());
/// assert_eq!(layout.total_bits(), 284);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameLayout {
    spec: ArchSpec,
}

impl FrameLayout {
    /// Creates the frame layout for an architecture.
    pub const fn new(spec: ArchSpec) -> Self {
        FrameLayout { spec }
    }

    /// The architecture this layout was derived from.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Total number of bits in the frame (`N_raw`, Equation (1)).
    pub const fn total_bits(&self) -> usize {
        self.spec.raw_bits_per_macro()
    }

    /// Bit range holding the logic-block configuration.
    pub const fn lb_config_range(&self) -> Range<usize> {
        0..self.spec.lb_config_bits()
    }

    /// Bit range of the LUT truth table within the frame.
    pub const fn lut_table_range(&self) -> Range<usize> {
        0..(1usize << self.spec.lut_size())
    }

    /// Bit position of the flip-flop bypass bit.
    pub const fn ff_bypass_bit(&self) -> usize {
        1usize << self.spec.lut_size()
    }

    /// Bit position of switch-box point `track`, pass switch `pair`.
    ///
    /// # Panics
    ///
    /// Panics if `track >= W`.
    pub fn sb_bit(&self, track: u16, pair: SbPair) -> usize {
        assert!(
            track < self.spec.channel_width(),
            "switch-box track {track} out of range"
        );
        self.spec.lb_config_bits() + 6 * track as usize + pair.index()
    }

    /// Bit range of the whole switch-box section.
    pub const fn sb_range(&self) -> Range<usize> {
        let start = self.spec.lb_config_bits();
        start..start + 6 * self.spec.channel_width() as usize
    }

    /// Offset and width (6 or 3 bits) of the connection-box crossing group of
    /// `pin` over `track`.
    ///
    /// The last crossing of each pin (track `W − 1`) is the 3-way, T-shaped
    /// switch of Equation (1); all others are 6-bit 4-way switches.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= L` or `track >= W`.
    pub fn crossing_group(&self, pin: u8, track: u16) -> (usize, usize) {
        let w = self.spec.channel_width() as usize;
        let l = self.spec.lb_pins();
        assert!(pin < l, "pin {pin} out of range");
        assert!((track as usize) < w, "crossing track {track} out of range");
        let per_pin = 6 * (w - 1) + 3;
        let base = self.spec.lb_config_bits() + 6 * w + pin as usize * per_pin;
        let t = track as usize;
        if t < w - 1 {
            (base + 6 * t, 6)
        } else {
            (base + 6 * (w - 1), 3)
        }
    }

    /// Bit position of the "pin connected to track" switch of a crossing.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= L` or `track >= W`.
    pub fn crossing_bit(&self, pin: u8, track: u16) -> usize {
        self.crossing_group(pin, track).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn io_index_roundtrip_all_values() {
        let spec = example();
        for idx in 0..spec.macro_io_count() {
            let io = MacroIo::from_index(&spec, idx).expect("valid index");
            assert_eq!(io.index(&spec), idx);
        }
    }

    #[test]
    fn io_index_rejects_out_of_range() {
        let spec = example();
        let count = spec.macro_io_count();
        assert!(matches!(
            MacroIo::from_index(&spec, count),
            Err(ArchError::InvalidMacroIoIndex { .. })
        ));
    }

    #[test]
    fn io_numbering_layout_matches_documentation() {
        let spec = example();
        let w = spec.channel_width();
        assert_eq!(MacroIo::Null.index(&spec), 0);
        assert_eq!(
            MacroIo::Boundary {
                side: Side::North,
                track: 0
            }
            .index(&spec),
            1
        );
        assert_eq!(
            MacroIo::Boundary {
                side: Side::East,
                track: 0
            }
            .index(&spec),
            1 + w as u32
        );
        assert_eq!(
            MacroIo::Boundary {
                side: Side::West,
                track: (w - 1)
            }
            .index(&spec),
            4 * w as u32
        );
        assert_eq!(MacroIo::Pin(0).index(&spec), 4 * w as u32 + 1);
        assert_eq!(
            MacroIo::Pin(spec.lb_pins() - 1).index(&spec),
            spec.macro_io_count() - 1
        );
    }

    #[test]
    fn validate_rejects_bad_tracks_and_pins() {
        let spec = example();
        assert!(MacroIo::Pin(spec.lb_pins()).validate(&spec).is_err());
        assert!(MacroIo::Boundary {
            side: Side::North,
            track: spec.channel_width()
        }
        .validate(&spec)
        .is_err());
        assert!(MacroIo::Pin(0).validate(&spec).is_ok());
        assert!(MacroIo::Null.validate(&spec).is_ok());
    }

    #[test]
    fn sb_pair_between_covers_all_combinations() {
        for a in Side::ALL {
            for b in Side::ALL {
                let pair = SbPair::between(a, b);
                if a == b {
                    assert_eq!(pair, None);
                } else {
                    let p = pair.expect("distinct sides always have a switch");
                    let (x, y) = p.sides();
                    assert!((x == a && y == b) || (x == b && y == a));
                }
            }
        }
    }

    #[test]
    fn sb_pair_indices_are_unique() {
        let mut seen = [false; 6];
        for p in SbPair::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn frame_layout_sections_do_not_overlap() {
        let spec = example();
        let layout = FrameLayout::new(spec);
        let mut used = vec![false; layout.total_bits()];
        for bit in layout.lb_config_range() {
            assert!(!used[bit]);
            used[bit] = true;
        }
        for t in 0..spec.channel_width() {
            for pair in SbPair::ALL {
                let bit = layout.sb_bit(t, pair);
                assert!(!used[bit], "sb bit {bit} overlaps");
                used[bit] = true;
            }
        }
        for pin in 0..spec.lb_pins() {
            for t in 0..spec.channel_width() {
                let (off, width) = layout.crossing_group(pin, t);
                for (bit, flag) in used.iter_mut().enumerate().skip(off).take(width) {
                    assert!(!*flag, "crossing bit {bit} overlaps");
                    *flag = true;
                }
            }
        }
        assert!(used.iter().all(|&b| b), "layout must cover every frame bit");
    }

    #[test]
    fn frame_layout_total_matches_equation_1() {
        for w in [2u16, 5, 8, 20, 33] {
            let spec = ArchSpec::new(w, 6).unwrap();
            let layout = FrameLayout::new(spec);
            assert_eq!(layout.total_bits(), spec.raw_bits_per_macro());
        }
    }

    #[test]
    fn last_crossing_is_three_way() {
        let spec = example();
        let layout = FrameLayout::new(spec);
        let w = spec.channel_width();
        for pin in 0..spec.lb_pins() {
            assert_eq!(layout.crossing_group(pin, w - 1).1, 3);
            assert_eq!(layout.crossing_group(pin, 0).1, 6);
        }
    }

    #[test]
    fn pin_channel_sides_alternate() {
        assert_eq!(pin_channel_side(0), Side::East);
        assert_eq!(pin_channel_side(1), Side::North);
        assert_eq!(pin_channel_side(6), Side::East);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MacroIo::Null.to_string(), "null");
        assert_eq!(
            MacroIo::Boundary {
                side: Side::West,
                track: 3
            }
            .to_string(),
            "west[3]"
        );
        assert_eq!(MacroIo::Pin(6).to_string(), "pin6");
        assert_eq!(SbPair::EastWest.to_string(), "east-west");
    }
}
