//! Architecture parameters and derived quantities, including Equation (1) of
//! the paper.

use crate::error::ArchError;
use serde::{Deserialize, Serialize};

/// Parameters of the island-style architecture used throughout the flow.
///
/// The paper's evaluation architecture uses 6-input LUTs (`K = 6`), one
/// flip-flop per logic block, and a channel width normalized to `W = 20`
/// tracks; the introductory example of Section II uses `W = 5`.
///
/// All sizes that the Virtual Bit-Stream format depends on are derived from
/// these two parameters:
///
/// * `L = K + 1` logic-block pins (`K` LUT inputs plus one output),
/// * `N_LB = 2^K + 1` logic configuration bits (LUT truth table + FF bypass),
/// * `N_raw` raw configuration bits per macro (Equation (1)),
/// * `M = ⌈log2(4W + L + 1)⌉` bits per macro I/O identifier.
///
/// ```
/// use vbs_arch::ArchSpec;
/// # fn main() -> Result<(), vbs_arch::ArchError> {
/// let spec = ArchSpec::new(5, 6)?;
/// assert_eq!(spec.lb_pins(), 7);
/// assert_eq!(spec.lb_config_bits(), 65);
/// assert_eq!(spec.raw_bits_per_macro(), 284);
/// assert_eq!(spec.io_index_bits(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchSpec {
    channel_width: u16,
    lut_size: u8,
}

impl ArchSpec {
    /// Minimum supported channel width.
    pub const MIN_CHANNEL_WIDTH: u16 = 2;
    /// Maximum supported channel width.
    pub const MAX_CHANNEL_WIDTH: u16 = 256;
    /// Minimum supported LUT size.
    pub const MIN_LUT_SIZE: u8 = 2;
    /// Maximum supported LUT size.
    pub const MAX_LUT_SIZE: u8 = 8;

    /// Creates an architecture specification.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidChannelWidth`] if `channel_width` is not in
    /// `2..=256`, and [`ArchError::InvalidLutSize`] if `lut_size` is not in
    /// `2..=8`.
    pub fn new(channel_width: u16, lut_size: u8) -> Result<Self, ArchError> {
        if !(Self::MIN_CHANNEL_WIDTH..=Self::MAX_CHANNEL_WIDTH).contains(&channel_width) {
            return Err(ArchError::InvalidChannelWidth {
                width: channel_width,
            });
        }
        if !(Self::MIN_LUT_SIZE..=Self::MAX_LUT_SIZE).contains(&lut_size) {
            return Err(ArchError::InvalidLutSize { lut_size });
        }
        Ok(ArchSpec {
            channel_width,
            lut_size,
        })
    }

    /// The architecture used in the paper's evaluation: 6-LUT logic blocks and
    /// a channel width normalized to 20 tracks.
    pub fn paper_evaluation() -> Self {
        ArchSpec {
            channel_width: 20,
            lut_size: 6,
        }
    }

    /// The small architecture used in the paper's running example (Figure 1):
    /// 6-LUT logic blocks with `W = 5` tracks.
    pub fn paper_example() -> Self {
        ArchSpec {
            channel_width: 5,
            lut_size: 6,
        }
    }

    /// Returns a copy of this specification with a different channel width.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidChannelWidth`] if `channel_width` is out of
    /// range.
    pub fn with_channel_width(self, channel_width: u16) -> Result<Self, ArchError> {
        ArchSpec::new(channel_width, self.lut_size)
    }

    /// Channel width `W`: number of tracks per routing channel.
    pub const fn channel_width(&self) -> u16 {
        self.channel_width
    }

    /// LUT size `K`: number of inputs of each look-up table.
    pub const fn lut_size(&self) -> u8 {
        self.lut_size
    }

    /// Number of logic-block pins `L = K + 1` (LUT inputs plus the output).
    pub const fn lb_pins(&self) -> u8 {
        self.lut_size + 1
    }

    /// Index of the logic-block output pin (the last pin).
    pub const fn output_pin(&self) -> u8 {
        self.lut_size
    }

    /// Number of configuration bits of one logic block,
    /// `N_LB = 2^K + 1` (truth table plus flip-flop bypass bit).
    pub const fn lb_config_bits(&self) -> usize {
        (1usize << self.lut_size) + 1
    }

    /// Number of configurable switch points in the switch box, `N_S = W`
    /// (one 4-way point per track in the subset/disjoint topology).
    pub const fn sb_points(&self) -> usize {
        self.channel_width as usize
    }

    /// Number of 4-way (cross-shaped) connection-box switches per macro,
    /// `N_C+ = L · (W − 1)`.
    pub const fn cb_cross_switches(&self) -> usize {
        self.lb_pins() as usize * (self.channel_width as usize - 1)
    }

    /// Number of 3-way (T-shaped) connection-box switches per macro,
    /// `N_CT = L`.
    pub const fn cb_tee_switches(&self) -> usize {
        self.lb_pins() as usize
    }

    /// Equation (1) of the paper: number of raw configuration bits per macro,
    ///
    /// `N_raw = N_LB + 6·(N_S + N_C+) + 3·N_CT`.
    ///
    /// ```
    /// use vbs_arch::ArchSpec;
    /// // W = 5, K = 6 gives the paper's value of 284 bits.
    /// assert_eq!(ArchSpec::paper_example().raw_bits_per_macro(), 284);
    /// ```
    pub const fn raw_bits_per_macro(&self) -> usize {
        self.lb_config_bits()
            + 6 * (self.sb_points() + self.cb_cross_switches())
            + 3 * self.cb_tee_switches()
    }

    /// Number of distinct macro I/O identifiers: `4W + L + 1`
    /// (four sides of `W` boundary tracks, `L` logic-block pins, and the
    /// reserved "unconnected" identifier).
    pub const fn macro_io_count(&self) -> u32 {
        4 * self.channel_width as u32 + self.lb_pins() as u32 + 1
    }

    /// Width in bits of one macro I/O identifier in the VBS connection list,
    /// `M = ⌈log2(4W + L + 1)⌉`.
    ///
    /// ```
    /// use vbs_arch::ArchSpec;
    /// assert_eq!(ArchSpec::paper_example().io_index_bits(), 5);
    /// assert_eq!(ArchSpec::paper_evaluation().io_index_bits(), 7);
    /// ```
    pub const fn io_index_bits(&self) -> u32 {
        ceil_log2(self.macro_io_count())
    }

    /// Break-even number of connections: as noted in Section II-B, a macro can
    /// hold up to `⌊N_raw / 2M⌋` coded connections before the connection-list
    /// coding stops being smaller than the raw frame.
    ///
    /// ```
    /// use vbs_arch::ArchSpec;
    /// assert_eq!(ArchSpec::paper_example().break_even_connections(), 28);
    /// ```
    pub const fn break_even_connections(&self) -> usize {
        self.raw_bits_per_macro() / (2 * self.io_index_bits() as usize)
    }

    /// Maximum number of routes representable in a macro record: the route
    /// count field is `⌈log2(2W)⌉` bits wide (Table I), so at most `2W − 1`
    /// coded routes per macro.
    pub const fn max_routes_per_macro(&self) -> usize {
        2 * self.channel_width as usize - 1
    }

    /// Width in bits of the per-macro route count field, `⌈log2(2W)⌉`.
    pub const fn route_count_bits(&self) -> u32 {
        ceil_log2(2 * self.channel_width as u32)
    }
}

impl Default for ArchSpec {
    fn default() -> Self {
        ArchSpec::paper_evaluation()
    }
}

/// Ceiling of the base-2 logarithm, with `ceil_log2(0) == 0` and
/// `ceil_log2(1) == 0`.
pub(crate) const fn ceil_log2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        u32::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn paper_example_matches_section_ii() {
        // Section II-B, W = 5, 6-LUT: N_LB = 65, N_C+ = 28, N_CT = 7,
        // N_raw = 284, M = 5, break-even = 28 connections.
        let spec = ArchSpec::paper_example();
        assert_eq!(spec.lb_config_bits(), 65);
        assert_eq!(spec.cb_cross_switches(), 28);
        assert_eq!(spec.cb_tee_switches(), 7);
        assert_eq!(spec.sb_points(), 5);
        assert_eq!(spec.raw_bits_per_macro(), 284);
        assert_eq!(spec.macro_io_count(), 28);
        assert_eq!(spec.io_index_bits(), 5);
        assert_eq!(spec.break_even_connections(), 28);
    }

    #[test]
    fn evaluation_architecture_w20() {
        let spec = ArchSpec::paper_evaluation();
        assert_eq!(spec.channel_width(), 20);
        assert_eq!(spec.lb_pins(), 7);
        // N_raw = 65 + 6*(20 + 7*19) + 3*7 = 65 + 918 + 21 = 1004.
        assert_eq!(spec.raw_bits_per_macro(), 1004);
        // 4*20 + 7 + 1 = 88 identifiers -> 7 bits each.
        assert_eq!(spec.macro_io_count(), 88);
        assert_eq!(spec.io_index_bits(), 7);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            ArchSpec::new(1, 6),
            Err(ArchError::InvalidChannelWidth { width: 1 })
        ));
        assert!(matches!(
            ArchSpec::new(300, 6),
            Err(ArchError::InvalidChannelWidth { width: 300 })
        ));
        assert!(matches!(
            ArchSpec::new(20, 1),
            Err(ArchError::InvalidLutSize { lut_size: 1 })
        ));
        assert!(matches!(
            ArchSpec::new(20, 9),
            Err(ArchError::InvalidLutSize { lut_size: 9 })
        ));
    }

    #[test]
    fn default_is_the_evaluation_architecture() {
        assert_eq!(ArchSpec::default(), ArchSpec::paper_evaluation());
    }

    #[test]
    fn with_channel_width_preserves_lut_size() {
        let s = ArchSpec::new(8, 4).unwrap().with_channel_width(12).unwrap();
        assert_eq!(s.channel_width(), 12);
        assert_eq!(s.lut_size(), 4);
    }

    #[test]
    fn raw_bits_grow_monotonically_with_channel_width() {
        let mut prev = 0;
        for w in 2..64 {
            let spec = ArchSpec::new(w, 6).unwrap();
            assert!(spec.raw_bits_per_macro() > prev);
            prev = spec.raw_bits_per_macro();
        }
    }

    #[test]
    fn route_count_field_width_matches_table1() {
        // Table I: route count on ceil(log2(2W)) bits.
        assert_eq!(ArchSpec::paper_example().route_count_bits(), 4); // 2W = 10
        assert_eq!(ArchSpec::paper_evaluation().route_count_bits(), 6); // 2W = 40
    }
}
