//! Global naming of routing wires, shared by the router, the bit-stream
//! generator and the VBS encoder/decoder.
//!
//! All wires are unit-length (they span exactly one macro pitch), matching the
//! mesh network of Section II-A. Each macro tile `(x, y)` *owns* two bundles
//! of `W` wires:
//!
//! * its **horizontal** wires `WireRef::horizontal(x, y, t)`, running from
//!   switch box `(x, y)` towards switch box `(x+1, y)`. Inside macro `(x, y)`
//!   this is the *east* stub; inside macro `(x+1, y)` it is the *west* stub.
//! * its **vertical** wires `WireRef::vertical(x, y, t)`, running from switch
//!   box `(x, y)` towards switch box `(x, y+1)`. Inside macro `(x, y)` this is
//!   the *north* stub; inside macro `(x, y+1)` it is the *south* stub.
//!
//! The wire owned by the last column/row ends at the device edge and is still
//! usable as a connection-box landing site, mirroring perimeter channels of
//! island-style devices.

use crate::geometry::{Coord, Side};
use crate::spec::ArchSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Orientation of a routing wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WireKind {
    /// A `ChanX` wire (east–west).
    Horizontal,
    /// A `ChanY` wire (north–south).
    Vertical,
}

impl fmt::Display for WireKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireKind::Horizontal => f.write_str("chanx"),
            WireKind::Vertical => f.write_str("chany"),
        }
    }
}

/// A single routing wire of the device, identified by the macro that owns it,
/// its orientation and its track index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WireRef {
    /// Orientation of the wire.
    pub kind: WireKind,
    /// The macro owning the wire (the wire starts at this macro's switch box).
    pub owner: Coord,
    /// Track index within the channel (`0 .. W`).
    pub track: u16,
}

impl WireRef {
    /// The horizontal wire owned by macro `(x, y)` on `track`.
    pub const fn horizontal(x: u16, y: u16, track: u16) -> Self {
        WireRef {
            kind: WireKind::Horizontal,
            owner: Coord::new(x, y),
            track,
        }
    }

    /// The vertical wire owned by macro `(x, y)` on `track`.
    pub const fn vertical(x: u16, y: u16, track: u16) -> Self {
        WireRef {
            kind: WireKind::Vertical,
            owner: Coord::new(x, y),
            track,
        }
    }

    /// The wire crossing boundary `side` of macro `at` on `track`, if that
    /// wire exists (wires beyond the device's south/west edge do not).
    ///
    /// This is the inverse of [`WireRef::boundary_of`]: it answers "which
    /// global wire does macro I/O `Boundary { side, track }` of the macro at
    /// `at` refer to?".
    pub fn from_boundary(at: Coord, side: Side, track: u16) -> Option<WireRef> {
        match side {
            Side::East => Some(WireRef::horizontal(at.x, at.y, track)),
            Side::North => Some(WireRef::vertical(at.x, at.y, track)),
            Side::West => {
                at.x.checked_sub(1)
                    .map(|x| WireRef::horizontal(x, at.y, track))
            }
            Side::South => {
                at.y.checked_sub(1)
                    .map(|y| WireRef::vertical(at.x, y, track))
            }
        }
    }

    /// The boundary crossing this wire represents when seen from macro `at`,
    /// or `None` if the wire does not touch that macro.
    ///
    /// Every wire touches exactly two macros (or one, at the device edge):
    /// its owner (as the east/north stub) and the owner's east/north
    /// neighbour (as the west/south stub).
    pub fn boundary_of(&self, at: Coord) -> Option<Side> {
        match self.kind {
            WireKind::Horizontal => {
                if self.owner == at {
                    Some(Side::East)
                } else if self.owner.x + 1 == at.x && self.owner.y == at.y {
                    Some(Side::West)
                } else {
                    None
                }
            }
            WireKind::Vertical => {
                if self.owner == at {
                    Some(Side::North)
                } else if self.owner.x == at.x && self.owner.y + 1 == at.y {
                    Some(Side::South)
                } else {
                    None
                }
            }
        }
    }

    /// The two macros this wire touches: its owner and (if inside the device)
    /// the east or north neighbour of the owner.
    pub fn touching_macros(&self) -> [Coord; 2] {
        let second = match self.kind {
            WireKind::Horizontal => Coord::new(self.owner.x + 1, self.owner.y),
            WireKind::Vertical => Coord::new(self.owner.x, self.owner.y + 1),
        };
        [self.owner, second]
    }

    /// Whether this wire can be reached by `pin`'s connection box when the
    /// pin belongs to the logic block of macro `at`.
    ///
    /// Even pins cross the macro's own horizontal wires, odd pins its vertical
    /// wires (see [`crate::macro_model::pin_channel_side`]).
    pub fn reachable_from_pin(&self, at: Coord, pin: u8) -> bool {
        if self.owner != at {
            return false;
        }
        match self.kind {
            WireKind::Horizontal => pin.is_multiple_of(2),
            WireKind::Vertical => !pin.is_multiple_of(2),
        }
    }

    /// A stable dense index for this wire within a `width` × `height` device
    /// with channel width taken from `spec`.
    ///
    /// Horizontal wires come first, then vertical ones; within each kind the
    /// order is row-major by owner, then by track.
    pub fn dense_index(&self, spec: &ArchSpec, width: u16, height: u16) -> usize {
        let w = spec.channel_width() as usize;
        let per_tile = w;
        let tiles = width as usize * height as usize;
        let tile_idx = self.owner.y as usize * width as usize + self.owner.x as usize;
        let base = match self.kind {
            WireKind::Horizontal => 0,
            WireKind::Vertical => tiles * per_tile,
        };
        base + tile_idx * per_tile + self.track as usize
    }

    /// Total number of wires in a `width` × `height` device.
    pub fn count_in_device(spec: &ArchSpec, width: u16, height: u16) -> usize {
        2 * spec.channel_width() as usize * width as usize * height as usize
    }
}

impl fmt::Display for WireRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({},{})[{}]",
            self.kind, self.owner.x, self.owner.y, self.track
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_mapping_roundtrip() {
        let at = Coord::new(3, 4);
        for side in Side::ALL {
            for track in [0u16, 2, 7] {
                let wire = WireRef::from_boundary(at, side, track).expect("interior macro");
                assert_eq!(wire.boundary_of(at), Some(side));
                assert_eq!(wire.track, track);
            }
        }
    }

    #[test]
    fn edge_macros_have_no_west_or_south_wire() {
        let at = Coord::new(0, 0);
        assert!(WireRef::from_boundary(at, Side::West, 0).is_none());
        assert!(WireRef::from_boundary(at, Side::South, 0).is_none());
        assert!(WireRef::from_boundary(at, Side::East, 0).is_some());
        assert!(WireRef::from_boundary(at, Side::North, 0).is_some());
    }

    #[test]
    fn shared_wire_is_east_of_owner_and_west_of_neighbor() {
        let wire = WireRef::horizontal(2, 5, 1);
        assert_eq!(wire.boundary_of(Coord::new(2, 5)), Some(Side::East));
        assert_eq!(wire.boundary_of(Coord::new(3, 5)), Some(Side::West));
        assert_eq!(wire.boundary_of(Coord::new(4, 5)), None);

        let wire = WireRef::vertical(2, 5, 1);
        assert_eq!(wire.boundary_of(Coord::new(2, 5)), Some(Side::North));
        assert_eq!(wire.boundary_of(Coord::new(2, 6)), Some(Side::South));
    }

    #[test]
    fn pin_reachability_follows_parity() {
        let at = Coord::new(1, 1);
        let h = WireRef::horizontal(1, 1, 0);
        let v = WireRef::vertical(1, 1, 0);
        assert!(h.reachable_from_pin(at, 0));
        assert!(!h.reachable_from_pin(at, 1));
        assert!(v.reachable_from_pin(at, 1));
        assert!(!v.reachable_from_pin(at, 0));
        // A wire owned by another macro is never pin-reachable.
        assert!(!h.reachable_from_pin(Coord::new(2, 1), 0));
    }

    #[test]
    fn dense_indices_are_unique_and_compact() {
        let spec = ArchSpec::new(4, 6).unwrap();
        let (width, height) = (3u16, 2u16);
        let total = WireRef::count_in_device(&spec, width, height);
        let mut seen = vec![false; total];
        for y in 0..height {
            for x in 0..width {
                for t in 0..spec.channel_width() {
                    for wire in [WireRef::horizontal(x, y, t), WireRef::vertical(x, y, t)] {
                        let idx = wire.dense_index(&spec, width, height);
                        assert!(idx < total);
                        assert!(!seen[idx], "duplicate dense index {idx}");
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn touching_macros_are_owner_and_forward_neighbor() {
        let wire = WireRef::horizontal(4, 7, 3);
        assert_eq!(wire.touching_macros(), [Coord::new(4, 7), Coord::new(5, 7)]);
        let wire = WireRef::vertical(4, 7, 3);
        assert_eq!(wire.touching_macros(), [Coord::new(4, 7), Coord::new(4, 8)]);
    }
}
