use std::fmt;

/// Errors produced while constructing or querying the architecture model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// The requested channel width is outside the supported range.
    InvalidChannelWidth {
        /// The rejected channel width.
        width: u16,
    },
    /// The requested LUT size is outside the supported range.
    InvalidLutSize {
        /// The rejected LUT size.
        lut_size: u8,
    },
    /// The requested device dimensions are empty or too large.
    InvalidDeviceSize {
        /// Requested width in macros.
        width: u16,
        /// Requested height in macros.
        height: u16,
    },
    /// A coordinate lies outside the device grid.
    CoordOutOfBounds {
        /// The offending x coordinate.
        x: u16,
        /// The offending y coordinate.
        y: u16,
        /// Device width.
        width: u16,
        /// Device height.
        height: u16,
    },
    /// A macro I/O index does not name a valid I/O for this architecture.
    InvalidMacroIoIndex {
        /// The rejected index.
        index: u32,
        /// Number of valid indices (`4W + L + 1`).
        io_count: u32,
    },
    /// A pin number is not a valid logic-block pin.
    InvalidPin {
        /// The rejected pin number.
        pin: u8,
        /// Number of logic block pins (`L`).
        pin_count: u8,
    },
    /// A track index is not a valid channel track.
    InvalidTrack {
        /// The rejected track index.
        track: u16,
        /// Channel width (`W`).
        channel_width: u16,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidChannelWidth { width } => {
                write!(f, "invalid channel width {width} (must be in 2..=256)")
            }
            ArchError::InvalidLutSize { lut_size } => {
                write!(f, "invalid LUT size {lut_size} (must be in 2..=8)")
            }
            ArchError::InvalidDeviceSize { width, height } => {
                write!(f, "invalid device size {width}x{height}")
            }
            ArchError::CoordOutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "coordinate ({x}, {y}) outside device grid {width}x{height}"
            ),
            ArchError::InvalidMacroIoIndex { index, io_count } => {
                write!(f, "macro I/O index {index} out of range (0..{io_count})")
            }
            ArchError::InvalidPin { pin, pin_count } => {
                write!(f, "pin {pin} out of range (0..{pin_count})")
            }
            ArchError::InvalidTrack {
                track,
                channel_width,
            } => write!(f, "track {track} out of range (0..{channel_width})"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ArchError::InvalidChannelWidth { width: 1 };
        assert!(e.to_string().contains("channel width 1"));
        let e = ArchError::CoordOutOfBounds {
            x: 9,
            y: 10,
            width: 5,
            height: 5,
        };
        assert!(e.to_string().contains("(9, 10)"));
        assert!(e.to_string().contains("5x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
