//! A sized reconfigurable device: a `width` × `height` grid of macros sharing
//! one [`ArchSpec`].

use crate::error::ArchError;
use crate::geometry::{Coord, Rect, Side};
use crate::spec::ArchSpec;
use crate::wires::WireRef;
use serde::{Deserialize, Serialize};

/// A reconfigurable device: a rectangular grid of identical macros.
///
/// The paper treats primary inputs and outputs as part of the heterogeneous
/// fabric itself (Section II-A), so every site of the grid can host either a
/// logic block or an I/O pad; the device model therefore stays homogeneous.
///
/// ```
/// use vbs_arch::{ArchSpec, Device, Coord};
/// # fn main() -> Result<(), vbs_arch::ArchError> {
/// let device = Device::new(ArchSpec::paper_evaluation(), 10, 8)?;
/// assert_eq!(device.macro_count(), 80);
/// assert!(device.contains(Coord::new(9, 7)));
/// assert!(!device.contains(Coord::new(10, 0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    spec: ArchSpec,
    width: u16,
    height: u16,
}

impl Device {
    /// Maximum supported device edge length, in macros.
    pub const MAX_EDGE: u16 = 1024;

    /// Creates a device of `width` × `height` macros.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidDeviceSize`] if either dimension is zero or
    /// exceeds [`Device::MAX_EDGE`].
    pub fn new(spec: ArchSpec, width: u16, height: u16) -> Result<Self, ArchError> {
        if width == 0 || height == 0 || width > Self::MAX_EDGE || height > Self::MAX_EDGE {
            return Err(ArchError::InvalidDeviceSize { width, height });
        }
        Ok(Device {
            spec,
            width,
            height,
        })
    }

    /// Creates the square device used for a benchmark of array size `n`
    /// (Table II's "Size" column is the edge length of a square array).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidDeviceSize`] if `n` is zero or too large.
    pub fn square(spec: ArchSpec, n: u16) -> Result<Self, ArchError> {
        Device::new(spec, n, n)
    }

    /// The architecture parameters of every macro of this device.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Grid width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Number of macros in the device.
    pub const fn macro_count(&self) -> u32 {
        self.width as u32 * self.height as u32
    }

    /// The rectangle covering the whole device.
    pub const fn bounds(&self) -> Rect {
        Rect::new(Coord::new(0, 0), self.width, self.height)
    }

    /// Whether `c` is a valid macro coordinate of this device.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Validates that `c` lies inside the device.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CoordOutOfBounds`] when it does not.
    pub fn check_coord(&self, c: Coord) -> Result<(), ArchError> {
        if self.contains(c) {
            Ok(())
        } else {
            Err(ArchError::CoordOutOfBounds {
                x: c.x,
                y: c.y,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Size of the raw configuration bit-stream of the full device, in bits
    /// (`width · height · N_raw`).
    pub fn raw_bitstream_bits(&self) -> u64 {
        self.macro_count() as u64 * self.spec.raw_bits_per_macro() as u64
    }

    /// A dense index for a macro coordinate (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the device; call [`Device::check_coord`] first
    /// for untrusted input.
    pub fn macro_index(&self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside device");
        c.y as usize * self.width as usize + c.x as usize
    }

    /// The coordinate corresponding to a dense macro index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= macro_count()`.
    pub fn macro_at(&self, index: usize) -> Coord {
        assert!(index < self.macro_count() as usize);
        Coord::new(
            (index % self.width as usize) as u16,
            (index / self.width as usize) as u16,
        )
    }

    /// Iterates over every macro coordinate of the device, row-major.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.height).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Whether a wire exists in this device (its owner must be inside the
    /// grid).
    pub fn wire_exists(&self, wire: WireRef) -> bool {
        self.contains(wire.owner)
    }

    /// The wire crossing boundary `side` of macro `at` on `track`, when that
    /// wire exists inside this device.
    pub fn boundary_wire(&self, at: Coord, side: Side, track: u16) -> Option<WireRef> {
        if !self.contains(at) || track >= self.spec.channel_width() {
            return None;
        }
        WireRef::from_boundary(at, side, track).filter(|w| self.wire_exists(*w))
    }

    /// Total number of wires in the device.
    pub fn wire_count(&self) -> usize {
        WireRef::count_in_device(&self.spec, self.width, self.height)
    }

    /// Dense index of a wire of this device.
    ///
    /// # Panics
    ///
    /// Panics if the wire does not belong to this device.
    pub fn wire_index(&self, wire: WireRef) -> usize {
        assert!(self.wire_exists(wire), "wire {wire} outside device");
        wire.dense_index(&self.spec, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wires::WireKind;

    fn device() -> Device {
        Device::new(ArchSpec::paper_example(), 4, 3).unwrap()
    }

    #[test]
    fn rejects_degenerate_sizes() {
        let spec = ArchSpec::paper_example();
        assert!(Device::new(spec, 0, 5).is_err());
        assert!(Device::new(spec, 5, 0).is_err());
        assert!(Device::new(spec, 2000, 5).is_err());
        assert!(Device::new(spec, 5, 5).is_ok());
    }

    #[test]
    fn macro_index_roundtrip() {
        let d = device();
        for (i, c) in d.iter_coords().enumerate() {
            assert_eq!(d.macro_index(c), i);
            assert_eq!(d.macro_at(i), c);
        }
        assert_eq!(d.iter_coords().count(), d.macro_count() as usize);
    }

    #[test]
    fn raw_bitstream_size_scales_with_area() {
        let spec = ArchSpec::paper_evaluation();
        let d = Device::square(spec, 35).unwrap();
        assert_eq!(
            d.raw_bitstream_bits(),
            35 * 35 * spec.raw_bits_per_macro() as u64
        );
    }

    #[test]
    fn boundary_wires_respect_device_edges() {
        let d = device();
        // South-west corner: no south or west wire.
        assert!(d.boundary_wire(Coord::new(0, 0), Side::West, 0).is_none());
        assert!(d.boundary_wire(Coord::new(0, 0), Side::South, 0).is_none());
        assert!(d.boundary_wire(Coord::new(0, 0), Side::East, 0).is_some());
        // Out-of-range track.
        assert!(d
            .boundary_wire(Coord::new(1, 1), Side::East, d.spec().channel_width())
            .is_none());
        // Interior macro has all four.
        for side in Side::ALL {
            assert!(d.boundary_wire(Coord::new(2, 1), side, 0).is_some());
        }
    }

    #[test]
    fn wire_indices_cover_range() {
        let d = device();
        let mut seen = vec![false; d.wire_count()];
        for c in d.iter_coords() {
            for t in 0..d.spec().channel_width() {
                for kind in [WireKind::Horizontal, WireKind::Vertical] {
                    let wire = WireRef {
                        kind,
                        owner: c,
                        track: t,
                    };
                    let idx = d.wire_index(wire);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn check_coord_reports_bounds() {
        let d = device();
        assert!(d.check_coord(Coord::new(3, 2)).is_ok());
        assert!(matches!(
            d.check_coord(Coord::new(4, 0)),
            Err(ArchError::CoordOutOfBounds { .. })
        ));
    }
}
