//! Coordinates, rectangles, sides and track indices on the logic grid.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position on the macro grid (column `x`, row `y`), zero-based.
///
/// `x` grows eastwards, `y` grows northwards, matching the VPR convention the
/// paper inherits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column (grows eastwards).
    pub x: u16,
    /// Row (grows northwards).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from a column and a row.
    ///
    /// ```
    /// use vbs_arch::Coord;
    /// let c = Coord::new(3, 7);
    /// assert_eq!((c.x, c.y), (3, 7));
    /// ```
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    ///
    /// ```
    /// use vbs_arch::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// The neighbouring coordinate towards `side`, if it does not underflow.
    ///
    /// The caller is responsible for checking the upper bound against the
    /// device dimensions.
    pub fn neighbor(self, side: Side) -> Option<Coord> {
        match side {
            Side::North => Some(Coord::new(self.x, self.y.checked_add(1)?)),
            Side::East => Some(Coord::new(self.x.checked_add(1)?, self.y)),
            Side::South => Some(Coord::new(self.x, self.y.checked_sub(1)?)),
            Side::West => Some(Coord::new(self.x.checked_sub(1)?, self.y)),
        }
    }

    /// Offsets this coordinate by `origin`, i.e. translates a task-relative
    /// coordinate to a device-absolute one.
    pub fn offset_by(self, origin: Coord) -> Coord {
        Coord::new(self.x + origin.x, self.y + origin.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

/// An axis-aligned rectangle of macros, defined by its lower-left origin and
/// its size in macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub origin: Coord,
    /// Width in macros (columns).
    pub width: u16,
    /// Height in macros (rows).
    pub height: u16,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and its dimensions.
    ///
    /// ```
    /// use vbs_arch::{Coord, Rect};
    /// let r = Rect::new(Coord::new(2, 3), 4, 5);
    /// assert_eq!(r.area(), 20);
    /// ```
    pub const fn new(origin: Coord, width: u16, height: u16) -> Self {
        Rect {
            origin,
            width,
            height,
        }
    }

    /// A rectangle anchored at the grid origin.
    pub const fn at_origin(width: u16, height: u16) -> Self {
        Rect::new(Coord::new(0, 0), width, height)
    }

    /// Number of macros covered by the rectangle.
    pub fn area(&self) -> u32 {
        self.width as u32 * self.height as u32
    }

    /// Whether the rectangle covers `c` (device-absolute coordinates).
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.origin.x
            && c.y >= self.origin.y
            && c.x < self.origin.x + self.width
            && c.y < self.origin.y + self.height
    }

    /// Whether `other` fits entirely inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.origin.x >= self.origin.x
            && other.origin.y >= self.origin.y
            && other.origin.x + other.width <= self.origin.x + self.width
            && other.origin.y + other.height <= self.origin.y + self.height
    }

    /// Whether this rectangle and `other` overlap in at least one macro.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.origin.x < other.origin.x + other.width
            && other.origin.x < self.origin.x + self.width
            && self.origin.y < other.origin.y + other.height
            && other.origin.y < self.origin.y + self.height
    }

    /// Iterates over every coordinate covered by the rectangle, row-major
    /// (x fastest).
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let ox = self.origin.x;
        let oy = self.origin.y;
        let w = self.width;
        (0..self.height).flat_map(move |dy| (0..w).map(move |dx| Coord::new(ox + dx, oy + dy)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@{}", self.width, self.height, self.origin)
    }
}

/// One of the four sides of a macro tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Towards increasing `y`.
    North,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `y`.
    South,
    /// Towards decreasing `x`.
    West,
}

impl Side {
    /// All four sides, in the canonical order used by the macro I/O numbering
    /// (North, East, South, West).
    pub const ALL: [Side; 4] = [Side::North, Side::East, Side::South, Side::West];

    /// The opposite side.
    ///
    /// ```
    /// use vbs_arch::Side;
    /// assert_eq!(Side::North.opposite(), Side::South);
    /// assert_eq!(Side::East.opposite(), Side::West);
    /// ```
    pub const fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::West => Side::East,
        }
    }

    /// Index of this side in [`Side::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Side::North => 0,
            Side::East => 1,
            Side::South => 2,
            Side::West => 3,
        }
    }

    /// Whether the side belongs to a horizontal channel (`ChanX`).
    ///
    /// East/West boundaries are crossed by horizontal wires, North/South by
    /// vertical ones.
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Side::East | Side::West)
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Side::North => "north",
            Side::East => "east",
            Side::South => "south",
            Side::West => "west",
        };
        f.write_str(s)
    }
}

/// A routing track index inside a channel (`0 .. W`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TrackId(pub u16);

impl TrackId {
    /// Returns the raw index.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TrackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u16> for TrackId {
    fn from(t: u16) -> Self {
        TrackId(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Coord::new(2, 9);
        let b = Coord::new(7, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn neighbor_respects_grid_edges() {
        let origin = Coord::new(0, 0);
        assert_eq!(origin.neighbor(Side::South), None);
        assert_eq!(origin.neighbor(Side::West), None);
        assert_eq!(origin.neighbor(Side::North), Some(Coord::new(0, 1)));
        assert_eq!(origin.neighbor(Side::East), Some(Coord::new(1, 0)));
    }

    #[test]
    fn rect_contains_and_area() {
        let r = Rect::new(Coord::new(2, 2), 3, 2);
        assert_eq!(r.area(), 6);
        assert!(r.contains(Coord::new(2, 2)));
        assert!(r.contains(Coord::new(4, 3)));
        assert!(!r.contains(Coord::new(5, 3)));
        assert!(!r.contains(Coord::new(4, 4)));
        assert!(!r.contains(Coord::new(1, 2)));
    }

    #[test]
    fn rect_iter_covers_area_exactly_once() {
        let r = Rect::new(Coord::new(1, 1), 4, 3);
        let coords: Vec<Coord> = r.iter().collect();
        assert_eq!(coords.len(), r.area() as usize);
        let mut dedup = coords.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), coords.len());
        assert!(coords.iter().all(|&c| r.contains(c)));
    }

    #[test]
    fn rect_intersection_and_containment() {
        let a = Rect::new(Coord::new(0, 0), 4, 4);
        let b = Rect::new(Coord::new(3, 3), 4, 4);
        let c = Rect::new(Coord::new(4, 0), 2, 2);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains_rect(&Rect::new(Coord::new(1, 1), 2, 2)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn side_opposites_are_involutive() {
        for side in Side::ALL {
            assert_eq!(side.opposite().opposite(), side);
        }
    }

    #[test]
    fn side_horizontality_matches_channel() {
        assert!(Side::East.is_horizontal());
        assert!(Side::West.is_horizontal());
        assert!(!Side::North.is_horizontal());
        assert!(!Side::South.is_horizontal());
    }

    #[test]
    fn coord_offset_translates() {
        let c = Coord::new(2, 3).offset_by(Coord::new(10, 20));
        assert_eq!(c, Coord::new(12, 23));
    }
}
