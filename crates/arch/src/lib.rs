//! Island-style FPGA architecture model for the Virtual Bit-Stream (VBS) reproduction.
//!
//! This crate models the reconfigurable fabric described in Section II-A of
//! *"Design Flow and Run-Time Management for Compressed FPGA Configurations"*
//! (Huriaux, Courtay, Sentieys — DATE 2015):
//!
//! * a rectangular grid of **logic blocks** (6-input LUT + flip-flop),
//! * a mesh routing network of **unit-length wires** grouped into horizontal
//!   (`ChanX`) and vertical (`ChanY`) channels of `W` tracks,
//! * a **switch box** at every channel intersection (subset/disjoint topology),
//! * **connection boxes** linking logic-block pins to the adjacent channels.
//!
//! One logic block together with its adjacent connection boxes and switch box
//! forms a [`macro`](crate::macro_model) — the elementary tile of the fabric
//! and the unit of Virtual Bit-Stream coding.
//!
//! The crate provides:
//!
//! * [`ArchSpec`] — the architecture parameters (channel width `W`, LUT size
//!   `K`) and all derived quantities, including Equation (1) of the paper
//!   (`N_raw`, the number of raw configuration bits per macro).
//! * [`geometry`] — coordinates, rectangles, sides and tracks.
//! * [`macro_model`] — the black-box I/O numbering of a macro
//!   ([`MacroIo`](macro_model::MacroIo)) and the bit-exact raw frame layout
//!   ([`FrameLayout`](macro_model::FrameLayout)).
//! * [`wires`] — global wire naming shared by the router, the bit-stream
//!   generator and the VBS encoder/decoder.
//! * [`device`] — a sized device (grid of macros).
//!
//! # Example
//!
//! ```
//! use vbs_arch::{ArchSpec, Device};
//!
//! # fn main() -> Result<(), vbs_arch::ArchError> {
//! // The paper's example: W = 5 tracks, 6-LUT logic blocks -> N_raw = 284.
//! let spec = ArchSpec::new(5, 6)?;
//! assert_eq!(spec.raw_bits_per_macro(), 284);
//!
//! // The evaluation architecture: W = 20 normalized channel width.
//! let eval = ArchSpec::new(20, 6)?;
//! let device = Device::new(eval, 35, 35)?;
//! assert_eq!(device.macro_count(), 35 * 35);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod spec;

pub mod device;
pub mod geometry;
pub mod macro_model;
pub mod wires;

pub use device::Device;
pub use error::ArchError;
pub use geometry::{Coord, Rect, Side, TrackId};
pub use macro_model::{FrameLayout, MacroIo, SbPair};
pub use spec::ArchSpec;
pub use wires::{WireKind, WireRef};
