//! The end-to-end CAD flow of Figure 3 of the paper: hardware description →
//! pack/place → route → raw bit-stream + Virtual Bit-Stream.
//!
//! This crate stitches the substrates together behind one builder-style API so
//! examples, tests and the experiment harnesses all run the exact same flow.
//!
//! # Example
//!
//! ```
//! use vbs_flow::CadFlow;
//! use vbs_netlist::generate::SyntheticSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("demo", 24, 5, 5).with_seed(7).build()?;
//! let result = CadFlow::new(8, 6)?
//!     .with_grid(7, 7)
//!     .with_seed(7)
//!     .fast()
//!     .run(&netlist)?;
//! assert!(result.vbs(1)?.size_bits() < result.raw_bitstream().size_bits());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub use error::FlowError;

use vbs_arch::{ArchSpec, Device};
use vbs_bitstream::{generate_bitstream, TaskBitstream};
use vbs_core::{Vbs, VbsEncoder, VbsStats};
use vbs_netlist::Netlist;
use vbs_place::{place, Placement, PlacerConfig};
use vbs_route::{minimum_channel_width, route, McwSearch, RouterConfig, Routing};

/// Builder for one pass of the CAD flow.
#[derive(Debug, Clone)]
pub struct CadFlow {
    spec: ArchSpec,
    grid: Option<(u16, u16)>,
    seed: u64,
    placer: PlacerConfig,
    router: RouterConfig,
}

impl CadFlow {
    /// Creates a flow targeting an architecture with `channel_width` tracks
    /// and `lut_size`-input LUTs.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Arch`] for out-of-range parameters.
    pub fn new(channel_width: u16, lut_size: u8) -> Result<Self, FlowError> {
        let spec = ArchSpec::new(channel_width, lut_size)?;
        Ok(CadFlow {
            spec,
            grid: None,
            seed: 1,
            placer: PlacerConfig::new(1),
            router: RouterConfig::default(),
        })
    }

    /// Creates a flow for the paper's evaluation architecture (`W = 20`,
    /// 6-LUTs).
    pub fn paper_evaluation() -> Self {
        CadFlow {
            spec: ArchSpec::paper_evaluation(),
            grid: None,
            seed: 1,
            placer: PlacerConfig::new(1),
            router: RouterConfig::default(),
        }
    }

    /// Fixes the device grid; by default the smallest square holding the
    /// netlist is used.
    pub fn with_grid(mut self, width: u16, height: u16) -> Self {
        self.grid = Some((width, height));
        self
    }

    /// Sets the seed used by the placer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.placer.seed = seed;
        self
    }

    /// Switches the placer and router to their fast, lower-effort settings
    /// (used by tests and quick sweeps).
    pub fn fast(mut self) -> Self {
        self.placer = PlacerConfig::fast(self.seed);
        self.router = RouterConfig::fast();
        self
    }

    /// Overrides the placer configuration.
    pub fn with_placer(mut self, placer: PlacerConfig) -> Self {
        self.placer = placer;
        self
    }

    /// Overrides the router configuration.
    pub fn with_router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }

    /// The architecture this flow targets.
    pub const fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Runs synthesis-to-bit-stream on `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates placement, routing and bit-stream generation failures.
    pub fn run(&self, netlist: &Netlist) -> Result<FlowResult, FlowError> {
        let (width, height) = match self.grid {
            Some(g) => g,
            None => {
                let mut edge = 1u16;
                while (edge as usize * edge as usize) < netlist.block_count() {
                    edge += 1;
                }
                (edge, edge)
            }
        };
        let device = Device::new(self.spec, width, height)?;
        let placement = place(netlist, &device, &self.placer)?;
        let routing = route(netlist, &device, &placement, &self.router)?;
        let raw = generate_bitstream(netlist, &device, &placement, &routing)?;
        Ok(FlowResult {
            device,
            placement,
            routing,
            raw,
        })
    }

    /// Reproduces the Table II experiment for `netlist`: the minimum channel
    /// width guaranteeing a feasible routing on the given grid.
    ///
    /// # Errors
    ///
    /// Propagates placement and routing failures.
    pub fn minimum_channel_width(
        &self,
        netlist: &Netlist,
        width: u16,
        height: u16,
        upper_bound: u16,
    ) -> Result<McwSearch, FlowError> {
        let device = Device::new(self.spec, width, height)?;
        let placement = place(netlist, &device, &self.placer)?;
        Ok(minimum_channel_width(
            netlist,
            &device,
            &placement,
            &self.router,
            2,
            upper_bound,
        )?)
    }
}

/// Everything the flow produced for one hardware task.
#[derive(Debug, Clone)]
pub struct FlowResult {
    device: Device,
    placement: Placement,
    routing: Routing,
    raw: TaskBitstream,
}

impl FlowResult {
    /// The device the task was implemented on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The placement of the task.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The routing of the task.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The conventional (raw) bit-stream of the task.
    pub fn raw_bitstream(&self) -> &TaskBitstream {
        &self.raw
    }

    /// Encodes the task as a Virtual Bit-Stream with the given cluster size.
    ///
    /// # Errors
    ///
    /// Propagates encoder failures.
    pub fn vbs(&self, cluster_size: u16) -> Result<Vbs, FlowError> {
        let origin = self.placement.region().origin;
        Ok(
            VbsEncoder::new(*self.device.spec(), cluster_size)?.encode_with_origin(
                &self.raw,
                &self.routing,
                origin,
            )?,
        )
    }

    /// Convenience wrapper returning the [`VbsStats`] of the task at a given
    /// cluster size.
    ///
    /// # Errors
    ///
    /// Propagates encoder failures.
    pub fn vbs_stats(&self, cluster_size: u16) -> Result<VbsStats, FlowError> {
        Ok(VbsStats::of(&self.vbs(cluster_size)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_netlist::generate::SyntheticSpec;

    fn netlist() -> Netlist {
        SyntheticSpec::new("flow", 28, 5, 5)
            .with_seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn full_flow_produces_compressed_streams() {
        let result = CadFlow::new(10, 6)
            .unwrap()
            .with_grid(8, 8)
            .with_seed(3)
            .fast()
            .run(&netlist())
            .unwrap();
        let stats = result.vbs_stats(1).unwrap();
        assert!(stats.ratio() < 1.0, "VBS must compress: {stats}");
        assert_eq!(stats.raw_bits, result.raw_bitstream().size_bits());
    }

    #[test]
    fn automatic_grid_sizing_fits_the_netlist() {
        let n = netlist();
        let result = CadFlow::new(10, 6)
            .unwrap()
            .with_seed(3)
            .fast()
            .run(&n)
            .unwrap();
        assert!(result.device().macro_count() as usize >= n.block_count());
    }

    #[test]
    fn mcw_search_runs_through_the_flow() {
        let search = CadFlow::new(12, 6)
            .unwrap()
            .with_seed(3)
            .fast()
            .minimum_channel_width(&netlist(), 8, 8, 16)
            .unwrap();
        assert!(search.min_channel_width >= 2);
        assert!(search.min_channel_width <= 16);
    }
}
