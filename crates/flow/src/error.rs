use std::fmt;

/// Errors produced by the end-to-end CAD flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Architecture-level failure (bad channel width, LUT size or grid).
    Arch(vbs_arch::ArchError),
    /// Placement failure.
    Place(vbs_place::PlaceError),
    /// Routing failure.
    Route(vbs_route::RouteError),
    /// Raw bit-stream generation failure.
    Bitstream(vbs_bitstream::BitstreamError),
    /// Virtual Bit-Stream encoding failure.
    Vbs(vbs_core::VbsError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Arch(e) => write!(f, "architecture error: {e}"),
            FlowError::Place(e) => write!(f, "placement error: {e}"),
            FlowError::Route(e) => write!(f, "routing error: {e}"),
            FlowError::Bitstream(e) => write!(f, "bit-stream error: {e}"),
            FlowError::Vbs(e) => write!(f, "virtual bit-stream error: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Arch(e) => Some(e),
            FlowError::Place(e) => Some(e),
            FlowError::Route(e) => Some(e),
            FlowError::Bitstream(e) => Some(e),
            FlowError::Vbs(e) => Some(e),
        }
    }
}

impl From<vbs_arch::ArchError> for FlowError {
    fn from(e: vbs_arch::ArchError) -> Self {
        FlowError::Arch(e)
    }
}

impl From<vbs_place::PlaceError> for FlowError {
    fn from(e: vbs_place::PlaceError) -> Self {
        FlowError::Place(e)
    }
}

impl From<vbs_route::RouteError> for FlowError {
    fn from(e: vbs_route::RouteError) -> Self {
        FlowError::Route(e)
    }
}

impl From<vbs_bitstream::BitstreamError> for FlowError {
    fn from(e: vbs_bitstream::BitstreamError) -> Self {
        FlowError::Bitstream(e)
    }
}

impl From<vbs_core::VbsError> for FlowError {
    fn from(e: vbs_core::VbsError) -> Self {
        FlowError::Vbs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
        let e: FlowError = vbs_place::PlaceError::DeviceTooSmall {
            blocks: 5,
            sites: 2,
        }
        .into();
        assert!(e.to_string().contains("placement error"));
    }
}
