//! Independent legality checking of a routing.
//!
//! The checker re-derives everything from the architecture rules instead of
//! trusting the router's bookkeeping, so it doubles as the verification step
//! of the offline VBS feedback loop (Section III-B of the paper): a decoded
//! configuration that passes these checks is guaranteed to be loadable.

use crate::error::RouteError;
use crate::graph::{RrGraph, RrNode};
use crate::result::Routing;
use std::collections::HashMap;
use vbs_arch::Device;
use vbs_netlist::{BlockKind, Netlist};
use vbs_place::Placement;

/// Checks that `routing` is a legal implementation of `netlist` under
/// `placement`:
///
/// 1. every route-tree edge is an edge of the routing-resource graph,
/// 2. every net's tree starts at its driver pin and covers every sink pin,
/// 3. no wire carries more than one net.
///
/// # Errors
///
/// Returns the first violation found as a [`RouteError`].
pub fn check_routing(
    netlist: &Netlist,
    device: &Device,
    placement: &Placement,
    routing: &Routing,
) -> Result<(), RouteError> {
    let graph = RrGraph::new(device);
    let output_pin = device.spec().output_pin();

    for (net_id, net) in netlist.iter_nets() {
        let tree = routing.tree(net_id);

        // 1. Edges must exist in the fabric.
        for (parent, child) in tree.iter_edges() {
            if !graph.are_neighbors(parent, child) {
                return Err(RouteError::CheckIllegalEdge {
                    net: net_id,
                    edge: format!("{parent} -> {child}"),
                });
            }
        }

        // 2. Source and sinks.
        let driver_block = netlist.block(net.driver);
        let expected_source = match driver_block.kind {
            BlockKind::Lut { .. } | BlockKind::InputPad => RrNode::Pin {
                site: placement.site(net.driver),
                pin: output_pin,
            },
            BlockKind::OutputPad => RrNode::Pin {
                site: placement.site(net.driver),
                pin: 0,
            },
        };
        if tree.source() != expected_source {
            return Err(RouteError::CheckUnroutedSink {
                net: net_id,
                sink: format!("source mismatch, expected {expected_source}"),
            });
        }
        for sink in &net.sinks {
            let node = RrNode::Pin {
                site: placement.site(sink.block),
                pin: sink.slot,
            };
            if !tree.contains(node) {
                return Err(RouteError::CheckUnroutedSink {
                    net: net_id,
                    sink: format!("{node}"),
                });
            }
        }
    }

    // 3. Wire exclusivity.
    let mut users: HashMap<vbs_arch::WireRef, usize> = HashMap::new();
    for (_, tree) in routing.iter_trees() {
        for wire in tree.iter_wires() {
            *users.entry(wire).or_insert(0) += 1;
        }
    }
    for (wire, nets) in users {
        if nets > 1 {
            return Err(RouteError::CheckOveruse {
                wire: format!("{wire}"),
                nets,
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::RouteTree;
    use crate::router::{route, RouterConfig};
    use vbs_arch::{ArchSpec, WireRef};
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};

    fn small_flow() -> (Netlist, Device, Placement, Routing) {
        let netlist = SyntheticSpec::new("check", 20, 4, 4)
            .with_seed(5)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(8, 6).unwrap(), 7, 7).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(5)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        (netlist, device, placement, routing)
    }

    #[test]
    fn router_output_passes_the_checker() {
        let (netlist, device, placement, routing) = small_flow();
        check_routing(&netlist, &device, &placement, &routing).unwrap();
    }

    #[test]
    fn tampered_routing_fails_edge_check() {
        let (netlist, device, placement, routing) = small_flow();
        let mut trees: Vec<RouteTree> = (0..routing.tree_count())
            .map(|i| routing.tree(vbs_netlist::NetId(i as u32)).clone())
            .collect();
        // Graft an absurd far-away wire onto the first non-trivial tree.
        let victim = trees.iter_mut().find(|t| !t.is_empty()).unwrap();
        victim.push(RrNode::Wire(WireRef::horizontal(6, 0, 7)), 0);
        let tampered = Routing::new(*routing.spec(), trees, routing.iterations());
        assert!(matches!(
            check_routing(&netlist, &device, &placement, &tampered),
            Err(RouteError::CheckIllegalEdge { .. })
        ));
    }

    #[test]
    fn missing_sink_is_detected() {
        let (netlist, device, placement, routing) = small_flow();
        // Replace a tree having sinks with just its source.
        let mut trees: Vec<RouteTree> = (0..routing.tree_count())
            .map(|i| routing.tree(vbs_netlist::NetId(i as u32)).clone())
            .collect();
        let idx = netlist
            .iter_nets()
            .find(|(_, n)| !n.sinks.is_empty())
            .map(|(id, _)| id.index())
            .unwrap();
        trees[idx] = RouteTree::new(trees[idx].source());
        let broken = Routing::new(*routing.spec(), trees, routing.iterations());
        assert!(matches!(
            check_routing(&netlist, &device, &placement, &broken),
            Err(RouteError::CheckUnroutedSink { .. })
        ));
    }
}
