use std::fmt;
use vbs_netlist::NetId;

/// Errors produced by the router and the routing checker.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// The router could not find a legal solution within the iteration limit.
    Unroutable {
        /// Number of wires still overused when the router gave up.
        overused_wires: usize,
        /// Number of PathFinder iterations performed.
        iterations: usize,
    },
    /// A net's sink could not be reached at all (disconnected graph, e.g. a
    /// sink pin with no reachable channel).
    NoPath {
        /// The net that failed.
        net: NetId,
        /// Human-readable description of the unreachable sink.
        sink: String,
    },
    /// The placement does not cover every block of the netlist.
    PlacementIncomplete,
    /// Legality check failure: a wire carries more than one net.
    CheckOveruse {
        /// Description of the overused wire.
        wire: String,
        /// Number of nets sharing it.
        nets: usize,
    },
    /// Legality check failure: a route tree uses an edge the architecture
    /// does not provide.
    CheckIllegalEdge {
        /// The net with the illegal edge.
        net: NetId,
        /// Description of the offending edge.
        edge: String,
    },
    /// Legality check failure: a sink of a net is not covered by its tree.
    CheckUnroutedSink {
        /// The net with the missing sink.
        net: NetId,
        /// Description of the missing sink.
        sink: String,
    },
    /// The minimum-channel-width search failed to route even at the upper
    /// bound of the search interval.
    McwUpperBoundTooSmall {
        /// The upper bound that was tried.
        upper_bound: u16,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable {
                overused_wires,
                iterations,
            } => write!(
                f,
                "routing did not converge: {overused_wires} overused wires after {iterations} iterations"
            ),
            RouteError::NoPath { net, sink } => {
                write!(f, "no path for net {net:?} to sink {sink}")
            }
            RouteError::PlacementIncomplete => {
                write!(f, "placement does not cover every netlist block")
            }
            RouteError::CheckOveruse { wire, nets } => {
                write!(f, "wire {wire} carries {nets} nets")
            }
            RouteError::CheckIllegalEdge { net, edge } => {
                write!(f, "net {net:?} uses an edge the fabric does not have: {edge}")
            }
            RouteError::CheckUnroutedSink { net, sink } => {
                write!(f, "net {net:?} does not reach sink {sink}")
            }
            RouteError::McwUpperBoundTooSmall { upper_bound } => write!(
                f,
                "circuit is unroutable even at the channel-width upper bound {upper_bound}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
        let e = RouteError::Unroutable {
            overused_wires: 3,
            iterations: 40,
        };
        assert!(e.to_string().contains("3 overused"));
    }
}
