//! The negotiated-congestion (PathFinder) router.
//!
//! Every net is routed with an A*-directed search over the implicit
//! routing-resource graph; wires that end up shared by several nets become
//! progressively more expensive (present congestion) and keep a memory of
//! past congestion (historical cost), so the nets negotiate until every wire
//! carries at most one net — the classic PathFinder/VPR scheme.

use crate::error::RouteError;
use crate::graph::{RrGraph, RrNode};
use crate::result::{RouteTree, Routing};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vbs_arch::{Coord, Device};
use vbs_netlist::{BlockKind, NetId, Netlist};
use vbs_place::Placement;

/// Router tuning parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Maximum number of PathFinder iterations before giving up.
    pub max_iterations: usize,
    /// Present-congestion factor of the first iteration.
    pub initial_present_factor: f64,
    /// Multiplier applied to the present-congestion factor each iteration.
    pub present_factor_growth: f64,
    /// Weight of the historical congestion added after each iteration.
    pub history_factor: f64,
    /// Weight of the A* distance estimate (1.0 = admissible, larger trades
    /// quality for speed).
    pub astar_weight: f64,
    /// Extra margin (in macros) added around each net's bounding box when
    /// constraining its search region; the margin also grows with the
    /// iteration count so hard nets eventually see the whole device.
    pub bounding_box_margin: u16,
}

impl RouterConfig {
    /// Configuration favouring speed, used by tests and quick sweeps.
    pub fn fast() -> Self {
        RouterConfig {
            max_iterations: 30,
            astar_weight: 1.3,
            ..RouterConfig::default()
        }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_iterations: 50,
            initial_present_factor: 0.6,
            present_factor_growth: 1.8,
            history_factor: 1.0,
            astar_weight: 1.15,
            bounding_box_margin: 3,
        }
    }
}

/// Routes every net of `netlist` on `device` under `placement`.
///
/// # Errors
///
/// * [`RouteError::PlacementIncomplete`] if the placement does not cover the
///   netlist;
/// * [`RouteError::NoPath`] if some sink is unreachable regardless of
///   congestion (should not happen on a well-formed device);
/// * [`RouteError::Unroutable`] if congestion cannot be resolved within
///   [`RouterConfig::max_iterations`] — typically the channel width is too
///   small for the circuit.
pub fn route(
    netlist: &Netlist,
    device: &Device,
    placement: &Placement,
    config: &RouterConfig,
) -> Result<Routing, RouteError> {
    if placement.placed_blocks() != netlist.block_count() {
        return Err(RouteError::PlacementIncomplete);
    }
    let graph = RrGraph::new(device);
    let node_count = graph.node_count();
    let wire_count = graph.wire_count();

    // Net terminals in graph terms.
    let output_pin = device.spec().output_pin();
    let mut terminals: Vec<(RrNode, Vec<RrNode>)> = Vec::with_capacity(netlist.net_count());
    for (_, net) in netlist.iter_nets() {
        let driver_block = netlist.block(net.driver);
        let driver_site = placement.site(net.driver);
        // LUTs and input pads drive through the logic block output pin.
        let source = match driver_block.kind {
            BlockKind::Lut { .. } | BlockKind::InputPad => RrNode::Pin {
                site: driver_site,
                pin: output_pin,
            },
            BlockKind::OutputPad => RrNode::Pin {
                site: driver_site,
                pin: 0,
            },
        };
        let sinks: Vec<RrNode> = net
            .sinks
            .iter()
            .map(|s| RrNode::Pin {
                site: placement.site(s.block),
                pin: s.slot,
            })
            .collect();
        terminals.push((source, sinks));
    }

    let mut occupancy: Vec<u16> = vec![0; wire_count];
    let mut history: Vec<f32> = vec![0.0; wire_count];
    let mut trees: Vec<RouteTree> = terminals
        .iter()
        .map(|(source, _)| RouteTree::new(*source))
        .collect();

    let mut search = SearchState::new(node_count);
    let mut present_factor = config.initial_present_factor;

    for iteration in 0..config.max_iterations {
        for (net_index, (source, sinks)) in terminals.iter().enumerate() {
            if sinks.is_empty() {
                continue;
            }
            // Rip up the previous tree of this net.
            for wire in trees[net_index].iter_wires() {
                let idx = graph.index(RrNode::Wire(wire));
                occupancy[idx] = occupancy[idx].saturating_sub(1);
            }
            let tree = route_net(
                &graph,
                *source,
                sinks,
                &occupancy,
                &history,
                present_factor,
                config,
                iteration,
                &mut search,
            )
            .map_err(|sink| RouteError::NoPath {
                net: NetId(net_index as u32),
                sink,
            })?;
            for wire in tree.iter_wires() {
                let idx = graph.index(RrNode::Wire(wire));
                occupancy[idx] += 1;
            }
            trees[net_index] = tree;
        }

        // Congestion accounting.
        let mut overused = 0usize;
        for idx in 0..wire_count {
            if occupancy[idx] > 1 {
                overused += 1;
                history[idx] += config.history_factor as f32 * (occupancy[idx] - 1) as f32;
            }
        }
        if overused == 0 {
            return Ok(Routing::new(*device.spec(), trees, iteration + 1));
        }
        present_factor *= config.present_factor_growth;
    }

    let overused = occupancy.iter().filter(|&&o| o > 1).count();
    Err(RouteError::Unroutable {
        overused_wires: overused,
        iterations: config.max_iterations,
    })
}

/// Scratch buffers reused across net routings to avoid re-allocation.
struct SearchState {
    stamp: u32,
    visited_stamp: Vec<u32>,
    best_cost: Vec<f32>,
    came_from: Vec<u32>,
    neighbors: Vec<RrNode>,
}

impl SearchState {
    fn new(node_count: usize) -> Self {
        SearchState {
            stamp: 0,
            visited_stamp: vec![0; node_count],
            best_cost: vec![f32::INFINITY; node_count],
            came_from: vec![u32::MAX; node_count],
            neighbors: Vec::with_capacity(16),
        }
    }

    fn begin(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: clear everything once.
            self.visited_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
    }

    fn cost(&self, node: usize) -> f32 {
        if self.visited_stamp[node] == self.stamp {
            self.best_cost[node]
        } else {
            f32::INFINITY
        }
    }

    fn record(&mut self, node: usize, cost: f32, from: u32) {
        self.visited_stamp[node] = self.stamp;
        self.best_cost[node] = cost;
        self.came_from[node] = from;
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    estimate: f32,
    cost: f32,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the smallest
        // estimate on top.
        other
            .estimate
            .total_cmp(&self.estimate)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes one net: expands the tree sink by sink (closest sink first).
///
/// Returns `Err(description)` naming the first unreachable sink.
#[allow(clippy::too_many_arguments)]
fn route_net(
    graph: &RrGraph<'_>,
    source: RrNode,
    sinks: &[RrNode],
    occupancy: &[u16],
    history: &[f32],
    present_factor: f64,
    config: &RouterConfig,
    iteration: usize,
    search: &mut SearchState,
) -> Result<RouteTree, String> {
    let mut tree = RouteTree::new(source);

    // Search region: net bounding box plus a growing margin.
    let margin = config.bounding_box_margin + 2 * iteration as u16;
    let (lo, hi) = net_region(source, sinks, graph.device(), margin);

    // Closest sinks first: the tree grows outwards and later sinks can reuse
    // earlier branches.
    let mut ordered: Vec<RrNode> = sinks.to_vec();
    ordered.sort_by_key(|s| source.position().manhattan(s.position()));

    for sink in ordered {
        if tree.contains(sink) {
            continue;
        }
        search.begin();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let sink_pos = sink.position();
        let sink_idx = graph.index(sink);

        // Seed the frontier with the whole current tree at cost zero.
        for (tree_idx, &node) in tree.nodes().iter().enumerate() {
            let idx = graph.index(node);
            // came_from encodes "already in tree" as u32::MAX - 1 - tree index.
            search.record(idx, 0.0, u32::MAX - 1 - tree_idx as u32);
            heap.push(HeapEntry {
                estimate: config.astar_weight as f32 * node.position().manhattan(sink_pos) as f32,
                cost: 0.0,
                node: idx,
            });
        }

        let mut found = false;
        while let Some(entry) = heap.pop() {
            if entry.cost > search.cost(entry.node) {
                continue;
            }
            if entry.node == sink_idx {
                found = true;
                break;
            }
            let node = graph.node(entry.node);
            // Pins are never route-throughs: only the target sink pin may be
            // entered, and only source/tree pins may be expanded from.
            if let RrNode::Pin { .. } = node {
                if entry.cost > 0.0 {
                    continue;
                }
            }
            graph.neighbors_into(node, &mut search.neighbors);
            let neighbors = std::mem::take(&mut search.neighbors);
            for &next in &neighbors {
                let next_idx = graph.index(next);
                match next {
                    RrNode::Pin { .. } => {
                        if next_idx != sink_idx {
                            continue;
                        }
                    }
                    RrNode::Wire(w) => {
                        let p = w.owner;
                        if p.x < lo.x || p.y < lo.y || p.x > hi.x || p.y > hi.y {
                            continue;
                        }
                    }
                }
                let step = node_cost(next, next_idx, occupancy, history, present_factor);
                let new_cost = entry.cost + step;
                if new_cost < search.cost(next_idx) {
                    search.record(next_idx, new_cost, entry.node as u32);
                    heap.push(HeapEntry {
                        estimate: new_cost
                            + config.astar_weight as f32
                                * next.position().manhattan(sink_pos) as f32,
                        cost: new_cost,
                        node: next_idx,
                    });
                }
            }
            search.neighbors = neighbors;
        }

        if !found {
            return Err(format!("{sink}"));
        }

        // Trace the path back into the tree.
        let mut path: Vec<usize> = Vec::new();
        let mut cursor = sink_idx;
        let parent_tree_index: usize;
        loop {
            let from = search.came_from[cursor];
            if from >= u32::MAX - 1 - (tree.len() as u32) {
                // Reached a node that was already in the tree.
                parent_tree_index = (u32::MAX - 1 - from) as usize;
                break;
            }
            path.push(cursor);
            cursor = from as usize;
        }
        let mut parent = parent_tree_index;
        for &node_idx in path.iter().rev() {
            parent = tree.push(graph.node(node_idx), parent);
        }
    }

    Ok(tree)
}

/// Congestion-aware cost of entering a node.
fn node_cost(
    node: RrNode,
    node_idx: usize,
    occupancy: &[u16],
    history: &[f32],
    present_factor: f64,
) -> f32 {
    match node {
        RrNode::Pin { .. } => 1.0,
        RrNode::Wire(_) => {
            let occ = occupancy[node_idx] as f32;
            let hist = history[node_idx];
            // Capacity is one net per wire.
            let over = (occ + 1.0 - 1.0).max(0.0);
            (1.0 + hist) * (1.0 + present_factor as f32 * over)
        }
    }
}

/// Bounding region of a net (clamped to the device), expanded by `margin`.
fn net_region(source: RrNode, sinks: &[RrNode], device: &Device, margin: u16) -> (Coord, Coord) {
    let mut min_x = source.position().x;
    let mut min_y = source.position().y;
    let mut max_x = min_x;
    let mut max_y = min_y;
    for s in sinks {
        let p = s.position();
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let lo = Coord::new(min_x.saturating_sub(margin), min_y.saturating_sub(margin));
    let hi = Coord::new(
        (max_x + margin).min(device.width() - 1),
        (max_y + margin).min(device.height() - 1),
    );
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_routing;
    use vbs_arch::ArchSpec;
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};

    fn flow(luts: usize, w: u16, grid: u16, seed: u64) -> (Netlist, Device, Placement, Routing) {
        let netlist = SyntheticSpec::new("route_test", luts, 6, 6)
            .with_seed(seed)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(w, 6).unwrap(), grid, grid).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(seed)).unwrap();
        let routing = route(&netlist, &device, &placement, &RouterConfig::fast()).unwrap();
        (netlist, device, placement, routing)
    }

    #[test]
    fn small_circuit_routes_legally() {
        let (netlist, device, placement, routing) = flow(30, 10, 8, 1);
        check_routing(&netlist, &device, &placement, &routing).expect("legal routing");
        assert!(routing.total_wirelength() > 0);
    }

    #[test]
    fn every_net_tree_starts_at_its_driver_pin() {
        let (netlist, device, placement, routing) = flow(25, 10, 8, 2);
        let output_pin = device.spec().output_pin();
        for (net_id, tree) in routing.iter_trees() {
            let net = netlist.net(net_id);
            let expected_site = placement.site(net.driver);
            match tree.source() {
                RrNode::Pin { site, pin } => {
                    assert_eq!(site, expected_site);
                    assert!(pin == output_pin || pin == 0);
                }
                other => panic!("source is not a pin: {other}"),
            }
        }
    }

    #[test]
    fn no_wire_is_shared_between_nets() {
        let (_, _, _, routing) = flow(40, 12, 9, 3);
        assert!(routing.wire_occupancy().values().all(|&o| o <= 1));
    }

    #[test]
    fn congested_device_reports_unroutable() {
        // Many blocks, tiny channel width: the router must give up cleanly.
        let netlist = SyntheticSpec::new("dense", 60, 6, 6)
            .with_seed(4)
            .with_locality(0.0)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(2, 6).unwrap(), 9, 9).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(4)).unwrap();
        let mut config = RouterConfig::fast();
        config.max_iterations = 6;
        match route(&netlist, &device, &placement, &config) {
            Err(RouteError::Unroutable { .. }) | Ok(_) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn incomplete_placement_is_rejected() {
        let netlist = SyntheticSpec::new("x", 10, 3, 3)
            .with_seed(1)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(8, 6).unwrap(), 6, 6).unwrap();
        let small = SyntheticSpec::new("y", 5, 3, 3)
            .with_seed(1)
            .build()
            .unwrap();
        let placement = place(&small, &device, &PlacerConfig::fast(1)).unwrap();
        assert!(matches!(
            route(&netlist, &device, &placement, &RouterConfig::fast()),
            Err(RouteError::PlacementIncomplete)
        ));
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, _, _, a) = flow(30, 10, 8, 7);
        let (_, _, _, b) = flow(30, 10, 8, 7);
        assert_eq!(a, b);
    }
}
