//! Minimum channel width search (the MCW column of Table II).
//!
//! The paper lets VPR "perform its routing using the minimum channel width
//! guaranteeing a feasible routing". This module reproduces that experiment:
//! a placement is routed at decreasing channel widths using a binary search
//! until the smallest routable width is found.

use crate::error::RouteError;
use crate::router::{route, RouterConfig};
use vbs_arch::{ArchSpec, Device};
use vbs_netlist::Netlist;
use vbs_place::Placement;

/// Result of a minimum-channel-width search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McwSearch {
    /// The smallest channel width that routed successfully.
    pub min_channel_width: u16,
    /// Channel widths that were attempted, in order, with the outcome.
    pub attempts: Vec<(u16, bool)>,
}

/// Finds the minimum channel width at which `netlist` routes under
/// `placement` on a grid of the same dimensions as `device_template`.
///
/// The search first doubles from `lower_bound` until a routable width is
/// found (capped at `upper_bound`), then binary-searches the interval.
///
/// # Errors
///
/// Returns [`RouteError::McwUpperBoundTooSmall`] when even `upper_bound`
/// tracks are not enough, or any placement/graph error from the router.
pub fn minimum_channel_width(
    netlist: &Netlist,
    device_template: &Device,
    placement: &Placement,
    config: &RouterConfig,
    lower_bound: u16,
    upper_bound: u16,
) -> Result<McwSearch, RouteError> {
    let lut_size = device_template.spec().lut_size();
    let width = device_template.width();
    let height = device_template.height();
    let mut attempts = Vec::new();

    let try_width = |w: u16, attempts: &mut Vec<(u16, bool)>| -> Result<bool, RouteError> {
        let spec = ArchSpec::new(w, lut_size)
            .map_err(|_| RouteError::McwUpperBoundTooSmall { upper_bound: w })?;
        let device = Device::new(spec, width, height)
            .expect("template device dimensions are valid by construction");
        let ok = match route(netlist, &device, placement, config) {
            Ok(_) => true,
            Err(RouteError::Unroutable { .. }) => false,
            Err(other) => return Err(other),
        };
        attempts.push((w, ok));
        Ok(ok)
    };

    // Exponential probe upwards for the first routable width.
    let mut lo = lower_bound.max(ArchSpec::MIN_CHANNEL_WIDTH);
    let mut probe = lo;
    let mut hi = None;
    while probe <= upper_bound {
        if try_width(probe, &mut attempts)? {
            hi = Some(probe);
            break;
        }
        lo = probe + 1;
        probe = (probe * 2).min(upper_bound.max(probe + 1));
        if probe == lo - 1 {
            break;
        }
    }
    let Some(mut hi) = hi else {
        return Err(RouteError::McwUpperBoundTooSmall { upper_bound });
    };

    // Binary search in [lo, hi): hi is known routable.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if try_width(mid, &mut attempts)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    Ok(McwSearch {
        min_channel_width: hi,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_netlist::generate::SyntheticSpec;
    use vbs_place::{place, PlacerConfig};

    #[test]
    fn mcw_is_routable_and_tight() {
        let netlist = SyntheticSpec::new("mcw", 24, 5, 5)
            .with_seed(9)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(12, 6).unwrap(), 7, 7).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(9)).unwrap();
        let config = RouterConfig::fast();
        let search = minimum_channel_width(&netlist, &device, &placement, &config, 2, 24).unwrap();
        let mcw = search.min_channel_width;
        assert!((2..=24).contains(&mcw));
        // Routable at the reported width.
        let spec = ArchSpec::new(mcw, 6).unwrap();
        let d = Device::new(spec, 7, 7).unwrap();
        assert!(route(&netlist, &d, &placement, &config).is_ok());
        // The attempt log contains at least one success.
        assert!(search.attempts.iter().any(|&(_, ok)| ok));
    }

    #[test]
    fn impossible_upper_bound_is_reported() {
        // A dense circuit with an upper bound of 2 tracks cannot route.
        let netlist = SyntheticSpec::new("dense", 40, 6, 6)
            .with_seed(3)
            .with_locality(0.0)
            .build()
            .unwrap();
        let device = Device::new(ArchSpec::new(4, 6).unwrap(), 8, 8).unwrap();
        let placement = place(&netlist, &device, &PlacerConfig::fast(3)).unwrap();
        let mut config = RouterConfig::fast();
        config.max_iterations = 4;
        let result = minimum_channel_width(&netlist, &device, &placement, &config, 2, 2);
        match result {
            Err(RouteError::McwUpperBoundTooSmall { upper_bound: 2 }) | Ok(_) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
