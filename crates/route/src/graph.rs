//! The routing-resource graph.
//!
//! Nodes are either routing wires ([`vbs_arch::WireRef`]) or logic-block pins
//! at a grid site. Edges are not stored; they are enumerated on demand from
//! the architecture rules:
//!
//! * a **connection box** links pin `p` of a site to the `W` wires of the
//!   channel its parity selects (even pins → the site's horizontal wires,
//!   odd pins → its vertical wires);
//! * a **switch box** (subset topology) links, at each track index `t`, the
//!   four wires meeting at that switch box: its west/east horizontal wires
//!   and its south/north vertical wires.

use serde::{Deserialize, Serialize};
use std::fmt;
use vbs_arch::{Coord, Device, Side, WireKind, WireRef};

/// A node of the routing-resource graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RrNode {
    /// A routing wire.
    Wire(WireRef),
    /// Logic-block pin `pin` of the macro at `site`.
    Pin {
        /// The macro owning the pin.
        site: Coord,
        /// Pin number (`0 .. L`); pin `K` is the output.
        pin: u8,
    },
}

impl RrNode {
    /// The grid position used by the A* heuristic.
    pub fn position(&self) -> Coord {
        match self {
            RrNode::Wire(w) => w.owner,
            RrNode::Pin { site, .. } => *site,
        }
    }

    /// Whether this node is a routing wire (wires are the only nodes with
    /// finite capacity).
    pub fn is_wire(&self) -> bool {
        matches!(self, RrNode::Wire(_))
    }
}

impl fmt::Display for RrNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrNode::Wire(w) => write!(f, "{w}"),
            RrNode::Pin { site, pin } => write!(f, "pin{pin}@({},{})", site.x, site.y),
        }
    }
}

/// The routing-resource graph of a device.
///
/// The graph is implicit: it stores only the device reference and provides
/// dense node indices plus on-the-fly edge enumeration, which keeps even
/// large devices (hundreds of thousands of nodes) cheap to build.
#[derive(Debug, Clone)]
pub struct RrGraph<'a> {
    device: &'a Device,
    wire_nodes: usize,
    pins_per_site: usize,
}

impl<'a> RrGraph<'a> {
    /// Builds the graph view of a device.
    pub fn new(device: &'a Device) -> Self {
        RrGraph {
            device,
            wire_nodes: device.wire_count(),
            pins_per_site: device.spec().lb_pins() as usize,
        }
    }

    /// The device this graph describes.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Total number of nodes (wires + pins).
    pub fn node_count(&self) -> usize {
        self.wire_nodes + self.pins_per_site * self.device.macro_count() as usize
    }

    /// Number of wire nodes.
    pub fn wire_count(&self) -> usize {
        self.wire_nodes
    }

    /// Dense index of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this device.
    pub fn index(&self, node: RrNode) -> usize {
        match node {
            RrNode::Wire(w) => self.device.wire_index(w),
            RrNode::Pin { site, pin } => {
                assert!((pin as usize) < self.pins_per_site, "pin out of range");
                self.wire_nodes + self.device.macro_index(site) * self.pins_per_site + pin as usize
            }
        }
    }

    /// The node at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= node_count()`.
    pub fn node(&self, index: usize) -> RrNode {
        if index < self.wire_nodes {
            let spec = self.device.spec();
            let w = spec.channel_width() as usize;
            let tiles = self.device.macro_count() as usize;
            let (kind, rest) = if index < tiles * w {
                (WireKind::Horizontal, index)
            } else {
                (WireKind::Vertical, index - tiles * w)
            };
            let tile = rest / w;
            let track = (rest % w) as u16;
            let owner = self.device.macro_at(tile);
            RrNode::Wire(WireRef { kind, owner, track })
        } else {
            let rest = index - self.wire_nodes;
            let site = self.device.macro_at(rest / self.pins_per_site);
            let pin = (rest % self.pins_per_site) as u8;
            RrNode::Pin { site, pin }
        }
    }

    /// Appends every neighbour of `node` to `out` (cleared first).
    pub fn neighbors_into(&self, node: RrNode, out: &mut Vec<RrNode>) {
        out.clear();
        let spec = self.device.spec();
        let w = spec.channel_width();
        match node {
            RrNode::Pin { site, pin } => {
                // Connection box: the pin reaches all W wires of its channel.
                for t in 0..w {
                    let wire = if pin % 2 == 0 {
                        WireRef::horizontal(site.x, site.y, t)
                    } else {
                        WireRef::vertical(site.x, site.y, t)
                    };
                    if self.device.wire_exists(wire) {
                        out.push(RrNode::Wire(wire));
                    }
                }
            }
            RrNode::Wire(wire) => {
                // Connection boxes: pins of the owner macro with matching
                // parity reach this wire.
                for pin in 0..spec.lb_pins() {
                    if wire.reachable_from_pin(wire.owner, pin) {
                        out.push(RrNode::Pin {
                            site: wire.owner,
                            pin,
                        });
                    }
                }
                // Switch boxes at both ends of the wire.
                let t = wire.track;
                match wire.kind {
                    WireKind::Horizontal => {
                        // Near end: SB at the owner.
                        self.push_sb_wires(wire.owner, t, Side::East, out);
                        // Far end: SB at the east neighbour.
                        if let Some(east) = wire.owner.neighbor(Side::East) {
                            if self.device.contains(east) {
                                self.push_sb_wires(east, t, Side::West, out);
                            }
                        }
                    }
                    WireKind::Vertical => {
                        self.push_sb_wires(wire.owner, t, Side::North, out);
                        if let Some(north) = wire.owner.neighbor(Side::North) {
                            if self.device.contains(north) {
                                self.push_sb_wires(north, t, Side::South, out);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector of neighbours.
    pub fn neighbors(&self, node: RrNode) -> Vec<RrNode> {
        let mut out = Vec::with_capacity(8);
        self.neighbors_into(node, &mut out);
        out
    }

    /// Pushes the wires reachable through the switch box at `sb`, excluding
    /// the wire arriving from `from_side` (the side *the arriving wire
    /// occupies* at this switch box).
    fn push_sb_wires(&self, sb: Coord, track: u16, from_side: Side, out: &mut Vec<RrNode>) {
        for side in Side::ALL {
            if side == from_side {
                continue;
            }
            if let Some(wire) = self.device.boundary_wire_at_sb(sb, side, track) {
                out.push(RrNode::Wire(wire));
            }
        }
    }

    /// Whether two nodes are connected by an architecture edge.
    pub fn are_neighbors(&self, a: RrNode, b: RrNode) -> bool {
        self.neighbors(a).contains(&b)
    }
}

/// Extension helpers on [`Device`] used by the graph and the configuration
/// extraction: wires seen from a *switch box* rather than from a macro.
pub trait SwitchBoxView {
    /// The wire occupying `side` of the switch box at `sb` on `track`, if it
    /// exists in the device.
    ///
    /// The switch box of macro `(x, y)` sits at the south-west corner of the
    /// macro: its east wire is the macro's own horizontal wire, its west wire
    /// is the west neighbour's, its north wire is the macro's own vertical
    /// wire and its south wire is the south neighbour's.
    fn boundary_wire_at_sb(&self, sb: Coord, side: Side, track: u16) -> Option<WireRef>;

    /// The switch box shared by two wires of equal track, if any, together
    /// with the sides the two wires occupy there.
    fn shared_switch_box(&self, a: WireRef, b: WireRef) -> Option<(Coord, Side, Side)>;
}

impl SwitchBoxView for Device {
    fn boundary_wire_at_sb(&self, sb: Coord, side: Side, track: u16) -> Option<WireRef> {
        if !self.contains(sb) || track >= self.spec().channel_width() {
            return None;
        }
        let wire = match side {
            Side::East => Some(WireRef::horizontal(sb.x, sb.y, track)),
            Side::North => Some(WireRef::vertical(sb.x, sb.y, track)),
            Side::West => {
                sb.x.checked_sub(1)
                    .map(|x| WireRef::horizontal(x, sb.y, track))
            }
            Side::South => {
                sb.y.checked_sub(1)
                    .map(|y| WireRef::vertical(sb.x, y, track))
            }
        }?;
        if self.wire_exists(wire) {
            Some(wire)
        } else {
            None
        }
    }

    fn shared_switch_box(&self, a: WireRef, b: WireRef) -> Option<(Coord, Side, Side)> {
        if a.track != b.track {
            return None;
        }
        // Candidate switch boxes of a wire: its owner and the macro past its
        // far end.
        let ends = |w: WireRef| -> [Option<Coord>; 2] {
            let far = match w.kind {
                WireKind::Horizontal => w.owner.neighbor(Side::East),
                WireKind::Vertical => w.owner.neighbor(Side::North),
            };
            [Some(w.owner), far.filter(|c| self.contains(*c))]
        };
        for ea in ends(a).into_iter().flatten() {
            for eb in ends(b).into_iter().flatten() {
                if ea == eb {
                    let side_a = side_at_sb(a, ea)?;
                    let side_b = side_at_sb(b, ea)?;
                    if side_a != side_b {
                        return Some((ea, side_a, side_b));
                    }
                }
            }
        }
        None
    }
}

/// The side wire `w` occupies at the switch box of macro `sb`, if it touches
/// that switch box.
pub fn side_at_sb(w: WireRef, sb: Coord) -> Option<Side> {
    match w.kind {
        WireKind::Horizontal => {
            if w.owner == sb {
                Some(Side::East)
            } else if w.owner.x + 1 == sb.x && w.owner.y == sb.y {
                Some(Side::West)
            } else {
                None
            }
        }
        WireKind::Vertical => {
            if w.owner == sb {
                Some(Side::North)
            } else if w.owner.x == sb.x && w.owner.y + 1 == sb.y {
                Some(Side::South)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;

    fn device() -> Device {
        Device::new(ArchSpec::new(4, 6).unwrap(), 5, 4).unwrap()
    }

    #[test]
    fn node_index_roundtrip() {
        let d = device();
        let g = RrGraph::new(&d);
        for i in 0..g.node_count() {
            let node = g.node(i);
            assert_eq!(g.index(node), i, "roundtrip failed for {node}");
        }
    }

    #[test]
    fn pin_neighbors_follow_parity() {
        let d = device();
        let g = RrGraph::new(&d);
        let site = Coord::new(2, 2);
        let even = g.neighbors(RrNode::Pin { site, pin: 0 });
        assert_eq!(even.len(), 4);
        assert!(even.iter().all(|n| matches!(
            n,
            RrNode::Wire(w) if w.kind == WireKind::Horizontal && w.owner == site
        )));
        let odd = g.neighbors(RrNode::Pin { site, pin: 1 });
        assert!(odd.iter().all(|n| matches!(
            n,
            RrNode::Wire(w) if w.kind == WireKind::Vertical && w.owner == site
        )));
    }

    #[test]
    fn wire_neighbors_are_symmetric() {
        let d = device();
        let g = RrGraph::new(&d);
        for i in 0..g.node_count() {
            let node = g.node(i);
            for n in g.neighbors(node) {
                assert!(
                    g.neighbors(n).contains(&node),
                    "edge {node} -> {n} is not symmetric"
                );
            }
        }
    }

    #[test]
    fn subset_switch_box_preserves_track() {
        let d = device();
        let g = RrGraph::new(&d);
        let wire = WireRef::horizontal(2, 2, 3);
        for n in g.neighbors(RrNode::Wire(wire)) {
            if let RrNode::Wire(other) = n {
                assert_eq!(other.track, wire.track, "track change through subset SB");
            }
        }
    }

    #[test]
    fn wire_neighbors_include_both_switch_boxes() {
        let d = device();
        let g = RrGraph::new(&d);
        // Interior horizontal wire: 3 wires at each of its 2 switch boxes,
        // plus 4 even pins of the owner (pins 0, 2, 4, 6).
        let wire = WireRef::horizontal(2, 2, 0);
        let neighbors = g.neighbors(RrNode::Wire(wire));
        let wires = neighbors.iter().filter(|n| n.is_wire()).count();
        let pins = neighbors.len() - wires;
        assert_eq!(wires, 6);
        assert_eq!(pins, 4);
    }

    #[test]
    fn shared_switch_box_finds_the_common_corner() {
        let d = device();
        let a = WireRef::horizontal(2, 2, 1); // east wire of (2,2)
        let b = WireRef::vertical(3, 2, 1); // north wire of (3,2)
        let (sb, sa, sb_side) = d
            .shared_switch_box(a, b)
            .expect("adjacent wires share a SB");
        assert_eq!(sb, Coord::new(3, 2));
        assert_eq!(sa, Side::West);
        assert_eq!(sb_side, Side::North);
        // Different tracks never share.
        let c = WireRef::vertical(3, 2, 2);
        assert!(d.shared_switch_box(a, c).is_none());
    }

    #[test]
    fn edge_wires_have_fewer_neighbors() {
        let d = device();
        let g = RrGraph::new(&d);
        // The east wire of the last column dead-ends at the device edge.
        let wire = WireRef::horizontal(4, 1, 0);
        let neighbors = g.neighbors(RrNode::Wire(wire));
        let wires = neighbors.iter().filter(|n| n.is_wire()).count();
        assert_eq!(wires, 3, "dead-end wire only connects through its near SB");
    }
}
