//! Routing results: per-net route trees and whole-circuit statistics.

use crate::graph::RrNode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vbs_arch::{ArchSpec, Coord, WireRef};
use vbs_netlist::NetId;

/// The routed tree of one net: node 0 is the source pin, every other node has
/// a parent, and edges `(parent, child)` correspond to programmable switches
/// of the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteTree {
    nodes: Vec<RrNode>,
    parents: Vec<Option<usize>>,
}

impl RouteTree {
    /// Creates a tree containing only the source node.
    pub fn new(source: RrNode) -> Self {
        RouteTree {
            nodes: vec![source],
            parents: vec![None],
        }
    }

    /// The source node of the net (its driver pin).
    pub fn source(&self) -> RrNode {
        self.nodes[0]
    }

    /// All nodes of the tree, source first.
    pub fn nodes(&self) -> &[RrNode] {
        &self.nodes
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree contains only its source.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Whether `node` is already part of the tree.
    pub fn contains(&self, node: RrNode) -> bool {
        self.nodes.contains(&node)
    }

    /// Index of `node` within the tree, if present.
    pub fn position(&self, node: RrNode) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Appends a node with the given parent index and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn push(&mut self, node: RrNode, parent: usize) -> usize {
        assert!(parent < self.nodes.len(), "parent index out of range");
        self.nodes.push(node);
        self.parents.push(Some(parent));
        self.nodes.len() - 1
    }

    /// Iterates over the `(parent, child)` node pairs of the tree.
    pub fn iter_edges(&self) -> impl Iterator<Item = (RrNode, RrNode)> + '_ {
        self.nodes
            .iter()
            .zip(self.parents.iter())
            .filter_map(move |(&child, parent)| parent.map(|p| (self.nodes[p], child)))
    }

    /// Iterates over the wires used by this tree.
    pub fn iter_wires(&self) -> impl Iterator<Item = WireRef> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            RrNode::Wire(w) => Some(*w),
            RrNode::Pin { .. } => None,
        })
    }
}

/// A complete routing of a netlist on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    spec: ArchSpec,
    trees: Vec<RouteTree>,
    iterations: usize,
}

impl Routing {
    /// Builds a routing result from per-net trees (indexed by [`NetId`]).
    pub fn new(spec: ArchSpec, trees: Vec<RouteTree>, iterations: usize) -> Self {
        Routing {
            spec,
            trees,
            iterations,
        }
    }

    /// The architecture (notably the channel width) the circuit was routed at.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Number of route trees (equals the net count of the routed netlist).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Number of PathFinder iterations that were needed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The tree of a net.
    pub fn tree(&self, net: NetId) -> &RouteTree {
        &self.trees[net.index()]
    }

    /// Iterates over `(NetId, &RouteTree)` pairs.
    pub fn iter_trees(&self) -> impl Iterator<Item = (NetId, &RouteTree)> {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (NetId(i as u32), t))
    }

    /// Number of nets using each wire (legal routings never exceed one).
    pub fn wire_occupancy(&self) -> HashMap<WireRef, usize> {
        let mut occ: HashMap<WireRef, usize> = HashMap::new();
        for tree in &self.trees {
            for wire in tree.iter_wires() {
                *occ.entry(wire).or_insert(0) += 1;
            }
        }
        occ
    }

    /// Total number of wire segments used, summed over nets.
    pub fn total_wirelength(&self) -> usize {
        self.trees.iter().map(|t| t.iter_wires().count()).sum()
    }

    /// Aggregated statistics of the routing.
    pub fn stats(&self) -> RoutingStats {
        let occupancy = self.wire_occupancy();
        let used_wires = occupancy.len();
        let mut per_macro: HashMap<Coord, usize> = HashMap::new();
        for (wire, _) in occupancy.iter() {
            for m in wire.touching_macros() {
                *per_macro.entry(m).or_insert(0) += 1;
            }
        }
        let max_wires_per_macro = per_macro.values().copied().max().unwrap_or(0);
        RoutingStats {
            nets: self.trees.len(),
            iterations: self.iterations,
            total_wirelength: self.total_wirelength(),
            used_wires,
            max_wires_per_macro,
        }
    }
}

/// Summary statistics of a routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Number of routed nets.
    pub nets: usize,
    /// PathFinder iterations used.
    pub iterations: usize,
    /// Total wire segments over all nets.
    pub total_wirelength: usize,
    /// Number of distinct wires used at least once.
    pub used_wires: usize,
    /// Largest number of distinct used wires touching a single macro.
    pub max_wires_per_macro: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Coord;

    fn pin(x: u16, y: u16, pin: u8) -> RrNode {
        RrNode::Pin {
            site: Coord::new(x, y),
            pin,
        }
    }

    #[test]
    fn tree_edges_follow_parents() {
        let mut tree = RouteTree::new(pin(0, 0, 6));
        let w = RrNode::Wire(WireRef::horizontal(0, 0, 1));
        let idx = tree.push(w, 0);
        tree.push(pin(1, 0, 0), idx);
        let edges: Vec<_> = tree.iter_edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (pin(0, 0, 6), w));
        assert_eq!(edges[1], (w, pin(1, 0, 0)));
        assert_eq!(tree.iter_wires().count(), 1);
        assert!(tree.contains(w));
        assert!(!tree.is_empty());
    }

    #[test]
    fn occupancy_counts_shared_wires() {
        let spec = ArchSpec::paper_example();
        let w = WireRef::horizontal(0, 0, 0);
        let mut a = RouteTree::new(pin(0, 0, 6));
        a.push(RrNode::Wire(w), 0);
        let mut b = RouteTree::new(pin(0, 0, 4));
        b.push(RrNode::Wire(w), 0);
        let routing = Routing::new(spec, vec![a, b], 1);
        assert_eq!(routing.wire_occupancy()[&w], 2);
        assert_eq!(routing.total_wirelength(), 2);
        let stats = routing.stats();
        assert_eq!(stats.used_wires, 1);
        assert_eq!(stats.nets, 2);
    }
}
