//! PathFinder-style routing for the island-style FPGA model.
//!
//! The paper's flow uses VPR to route each hardware task; this crate plays
//! that role. It provides:
//!
//! * [`RrGraph`] — the routing-resource graph derived from the architecture
//!   model: one node per routing wire and per logic-block pin, with edges
//!   generated on the fly from the switch-box and connection-box topology;
//! * [`route`] — a negotiated-congestion (PathFinder) router with A*-directed
//!   search, producing one [`RouteTree`] per net;
//! * [`check`] — an independent legality checker (no overused wire, every
//!   sink reached, every edge realizable by the architecture), used both by
//!   tests and by the offline VBS feedback loop;
//! * [`minimum_channel_width`] — the binary search used to regenerate the
//!   MCW column of Table II.
//!
//! # Example
//!
//! ```
//! use vbs_arch::{ArchSpec, Device};
//! use vbs_netlist::generate::SyntheticSpec;
//! use vbs_place::{place, PlacerConfig};
//! use vbs_route::{route, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("demo", 25, 5, 5).with_seed(3).build()?;
//! let device = Device::new(ArchSpec::new(8, 6)?, 7, 7)?;
//! let placement = place(&netlist, &device, &PlacerConfig::fast(1))?;
//! let routing = route(&netlist, &device, &placement, &RouterConfig::default())?;
//! assert_eq!(routing.tree_count(), netlist.net_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod mcw;
mod result;
mod router;

pub mod check;

pub use error::RouteError;
pub use graph::{side_at_sb, RrGraph, RrNode, SwitchBoxView};
pub use mcw::{minimum_channel_width, McwSearch};
pub use result::{RouteTree, Routing, RoutingStats};
pub use router::{route, RouterConfig};
