//! Integration tests of the on-line scheduler: the overload demo of the
//! acceptance criteria (policy comparison on a fabric too small for the
//! workload), decode-cache bit-identity, eviction and deadline behavior.

use std::sync::OnceLock;
use vbs_arch::{ArchSpec, Device, Rect};
use vbs_flow::CadFlow;
use vbs_netlist::generate::SyntheticSpec;
use vbs_runtime::{
    BestFit, FirstFit, PlacementPolicy, ReconfigurationController, TaskManager, VbsRepository,
};
use vbs_sched::{
    replay, LruEviction, Outcome, PriorityEviction, Request, Scheduler, SchedulerConfig, Trace,
    WorkloadSpec,
};

/// Task set shared by every test in this file: (name, LUTs, grid edge, seed).
/// Grid edge = task footprint in macros. Built once — the CAD flow is the
/// expensive part — and cloned into per-test repositories.
const TASKS: &[(&str, usize, u16, u64)] = &[
    ("fir4", 9, 4, 11),
    ("crc4", 8, 4, 12),
    ("aes5", 16, 5, 13),
    ("fft6", 24, 6, 14),
];

const CHANNEL_WIDTH: u16 = 9;
const LUT_SIZE: u8 = 6;

fn repository() -> &'static VbsRepository {
    static REPO: OnceLock<VbsRepository> = OnceLock::new();
    REPO.get_or_init(|| {
        let mut repo = VbsRepository::new();
        for &(name, luts, edge, seed) in TASKS {
            let netlist = SyntheticSpec::new(name, luts, 3, 3)
                .with_seed(seed)
                .build()
                .expect("netlist generation");
            let result = CadFlow::new(CHANNEL_WIDTH, LUT_SIZE)
                .expect("flow")
                .with_grid(edge, edge)
                .with_seed(seed)
                .fast()
                .run(&netlist)
                .expect("cad flow");
            repo.store(name, &result.vbs(1).expect("encode"));
        }
        repo
    })
}

fn device(width: u16, height: u16) -> Device {
    Device::new(
        ArchSpec::new(CHANNEL_WIDTH, LUT_SIZE).unwrap(),
        width,
        height,
    )
    .unwrap()
}

fn scheduler(
    width: u16,
    height: u16,
    policy: Box<dyn PlacementPolicy>,
    config: SchedulerConfig,
) -> Scheduler {
    let manager = TaskManager::new(
        ReconfigurationController::new(device(width, height)),
        repository().clone(),
    )
    .with_policy(policy);
    Scheduler::with_config(manager, Box::new(LruEviction), config)
}

fn overload_trace() -> Trace {
    Trace::synthetic(&WorkloadSpec {
        tasks: TASKS.iter().map(|t| t.0.to_string()).collect(),
        loads: 120,
        mean_interarrival: 3,
        mean_duration: 24,
        priority_levels: 4,
        deadline_slack: None,
        seed: 2015,
    })
}

/// The acceptance-criteria demo: a ≥200-event seeded trace on a fabric too
/// small to hold all tasks simultaneously. Eviction must fire, and
/// best-fit-with-compaction must accept more loads than plain first-fit
/// without compaction.
#[test]
fn best_fit_with_compaction_beats_first_fit_on_overload() {
    let trace = overload_trace();
    assert!(trace.len() >= 200, "trace has {} events", trace.len());
    // 11x11 macros cannot hold 4+5+6-edge squares freely: the task set
    // totals 93 macros against 121, so a handful of concurrent residents
    // exhausts it.
    let baseline_cfg = SchedulerConfig {
        eviction_limit: 1,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let improved_cfg = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };

    let mut baseline = scheduler(11, 11, Box::new(FirstFit), baseline_cfg);
    let baseline_report = replay(&mut baseline, &trace);

    let mut improved = scheduler(11, 11, Box::new(BestFit), improved_cfg);
    let improved_report = replay(&mut improved, &trace);

    assert!(
        baseline_report.sched.evictions > 0,
        "the overloaded fabric must evict (baseline: {:?})",
        baseline_report.sched
    );
    assert!(
        improved_report.sched.evictions > 0,
        "the overloaded fabric must evict (improved: {:?})",
        improved_report.sched
    );
    assert!(
        improved_report.sched.relocations > 0,
        "compaction must relocate tasks"
    );
    assert!(
        improved_report.acceptance_rate() > baseline_report.acceptance_rate(),
        "best-fit + compaction ({:.3}) must beat first-fit without compaction ({:.3})",
        improved_report.acceptance_rate(),
        baseline_report.acceptance_rate()
    );
}

/// Repeated loads of one task hit the decode cache, and the cached path
/// writes a bit-identical configuration.
#[test]
fn decode_cache_hits_are_bit_identical() {
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    let first = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded {
        job,
        origin,
        cache_hit,
        ..
    } = first
    else {
        panic!("first load failed: {first:?}");
    };
    assert!(!cache_hit, "first load must decode");
    let region = Rect::new(origin, 4, 4);
    let first_image = sched
        .manager()
        .controller()
        .memory()
        .read_region(region)
        .unwrap();

    sched.execute(Request::Unload { job });
    let second = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded {
        origin: second_origin,
        cache_hit: second_hit,
        ..
    } = second
    else {
        panic!("second load failed: {second:?}");
    };
    assert!(second_hit, "second load must come from the cache");
    let stats = sched.cache_stats();
    assert!(stats.hits > 0, "cache shows no hits: {stats:?}");

    let second_image = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(second_origin, 4, 4))
        .unwrap();
    assert_eq!(
        first_image.diff_count(&second_image).unwrap(),
        0,
        "cached load must be bit-identical to the decoded one"
    );

    // And both match a fresh, cache-free de-virtualization.
    let vbs = sched.manager().repository().fetch("fir4").unwrap();
    let (fresh, _) = sched.manager().controller().devirtualize(&vbs).unwrap();
    assert_eq!(second_image.diff_count(&fresh).unwrap(), 0);
}

/// Priority eviction protects high-priority residents; LRU does not.
#[test]
fn priority_eviction_protects_important_tasks() {
    let manager = TaskManager::new(
        ReconfigurationController::new(device(8, 4)),
        repository().clone(),
    );
    let mut sched = Scheduler::with_config(
        manager,
        Box::new(PriorityEviction),
        SchedulerConfig {
            eviction_limit: 4,
            compaction: false,
            ..SchedulerConfig::default()
        },
    );
    // Two 4x4 tasks fill the 8x4 fabric.
    let a = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 7,
        deadline: None,
    });
    let b = sched.execute(Request::Load {
        task: "crc4".into(),
        priority: 1,
        deadline: None,
    });
    assert!(matches!(a, Outcome::Loaded { .. }));
    let Outcome::Loaded { job: low_job, .. } = b else {
        panic!("second load failed: {b:?}");
    };

    // A medium-priority arrival can only displace the priority-1 resident.
    let c = sched.execute(Request::Load {
        task: "aes5".into(),
        priority: 3,
        deadline: None,
    });
    match c {
        // aes5 is 5x5 and cannot fit an 8x4 fabric at all — it must be
        // rejected without touching the priority-7 resident.
        Outcome::Rejected { .. } => {}
        other => panic!("expected rejection, got {other:?}"),
    }
    let d = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 3,
        deadline: None,
    });
    let Outcome::Loaded { evicted, .. } = d else {
        panic!("medium-priority load failed: {d:?}");
    };
    assert_eq!(evicted, vec![low_job], "only the low-priority task may go");
    let residents = sched.residents();
    assert!(
        residents.iter().any(|r| r.priority == 7),
        "the priority-7 resident must survive: {residents:?}"
    );

    // An incoming request weaker than every resident is rejected.
    let e = sched.execute(Request::Load {
        task: "crc4".into(),
        priority: 0,
        deadline: None,
    });
    assert!(matches!(e, Outcome::Rejected { .. }), "got {e:?}");
}

/// A second replay on the same (warm) scheduler reports only its own
/// counters, not the lifetime totals.
#[test]
fn repeated_replays_report_per_replay_metrics() {
    let trace = vbs_sched::Trace::from_text("load 1 1 fir4 0\nunload 9 1\n").unwrap();
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    let first = replay(&mut sched, &trace);
    let second = replay(&mut sched, &trace);
    assert_eq!(first.sched.loads_submitted, 1);
    assert_eq!(second.sched.loads_submitted, 1);
    assert_eq!(second.sched.loads_accepted, 1);
    // The first replay decodes; the warm second one is all cache hits.
    assert_eq!(first.cache.misses, 1);
    assert_eq!(second.cache.misses, 0);
    assert!(second.cache.hits >= 1);
}

/// A zero-duration job (load and unload in the same tick — legal in the
/// trace text format) must not stay resident after the replay.
#[test]
fn zero_duration_jobs_do_not_leak() {
    let trace =
        vbs_sched::Trace::from_text("load 1 1 fir4 0\nunload 1 1\nload 2 2 crc4 0\nunload 5 2\n")
            .unwrap();
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    let report = replay(&mut sched, &trace);
    assert_eq!(report.sched.loads_accepted, 2);
    assert!(
        sched.residents().is_empty(),
        "zero-duration job leaked: {:?}",
        sched.residents()
    );
    assert_eq!(sched.manager().controller().memory().occupied_macros(), 0);
}

/// Re-registering a task under an existing name plus invalidation serves
/// the new stream; without invalidation the cache would be stale.
#[test]
fn cache_invalidation_after_reregistration() {
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    let first = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded { job, .. } = first else {
        panic!("load failed: {first:?}");
    };
    sched.execute(Request::Unload { job });

    // Replace "fir4" with the stream of crc4 (same spec, different bits).
    let replacement = sched.manager().repository().fetch("crc4").unwrap();
    sched.repository_mut().store("fir4", &replacement);
    sched.invalidate_cached("fir4");

    let second = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded {
        origin, cache_hit, ..
    } = second
    else {
        panic!("reload failed: {second:?}");
    };
    assert!(!cache_hit, "invalidated entry must decode again");
    let image = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(origin, 4, 4))
        .unwrap();
    let (fresh, _) = sched
        .manager()
        .controller()
        .devirtualize(&replacement)
        .unwrap();
    assert_eq!(image.diff_count(&fresh).unwrap(), 0);
}

/// `touch` refreshes a resident's LRU stamp and changes the eviction order.
#[test]
fn touch_changes_lru_eviction_order() {
    // 8x4 fabric holds exactly two 4x4 tasks.
    let mut sched = scheduler(
        8,
        4,
        Box::new(FirstFit),
        SchedulerConfig {
            eviction_limit: 1,
            compaction: false,
            ..SchedulerConfig::default()
        },
    );
    let a = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded { job: first_job, .. } = a else {
        panic!("load failed: {a:?}");
    };
    sched.advance_to(1);
    let b = sched.execute(Request::Load {
        task: "crc4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded {
        job: second_job, ..
    } = b
    else {
        panic!("load failed: {b:?}");
    };

    // Without the touch, `first_job` (older) would be the LRU victim.
    sched.advance_to(2);
    sched.touch(first_job);
    let c = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded { evicted, .. } = c else {
        panic!("third load failed: {c:?}");
    };
    assert_eq!(evicted, vec![second_job], "touched task must survive");
}

/// Deadlines: a request processed past its deadline is dropped and counted.
#[test]
fn stale_requests_miss_their_deadline() {
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    sched.advance_to(100);
    let outcome = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: Some(99),
    });
    assert!(matches!(
        outcome,
        Outcome::Rejected {
            reason: vbs_sched::RejectReason::DeadlineMissed,
            ..
        }
    ));
    assert_eq!(sched.metrics().deadline_missed, 1);

    // A deadline in the future is fine.
    let ok = sched.execute(Request::Load {
        task: "fir4".into(),
        priority: 0,
        deadline: Some(100),
    });
    assert!(matches!(ok, Outcome::Loaded { .. }));
}

/// Explicit relocation requests move residents and keep the image intact.
#[test]
fn explicit_relocation_moves_the_resident() {
    let mut sched = scheduler(12, 8, Box::new(FirstFit), SchedulerConfig::default());
    let loaded = sched.execute(Request::Load {
        task: "crc4".into(),
        priority: 0,
        deadline: None,
    });
    let Outcome::Loaded { job, origin, .. } = loaded else {
        panic!("load failed: {loaded:?}");
    };
    let before = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(origin, 4, 4))
        .unwrap();
    let to = vbs_arch::Coord::new(8, 4);
    let moved = sched.execute(Request::Relocate { job, to });
    assert!(matches!(moved, Outcome::Relocated { .. }), "got {moved:?}");
    let after = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(to, 4, 4))
        .unwrap();
    assert_eq!(before.diff_count(&after).unwrap(), 0);
    assert_eq!(sched.metrics().relocations, 1);

    // Unloading everything leaves a blank fabric.
    sched.execute(Request::Unload { job });
    assert_eq!(sched.manager().controller().memory().occupied_macros(), 0);
    assert!(sched.residents().is_empty());
}
