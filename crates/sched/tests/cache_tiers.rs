//! Property suite for the two-tier byte-budgeted decode cache.
//!
//! Three properties pin the tiering design:
//!
//! * **Legacy parity** — with both byte budgets unbounded, the tiered
//!   cache is *bit-identical* to the classic count-capped LRU it replaced:
//!   same hit/miss stream, same eviction victims (dropped outright, never
//!   demoted), and the warm tier never forms. A Vec-based reference model
//!   replays every operation alongside the real cache.
//! * **Budget safety** — under any finite budget, after *every* operation
//!   each tier's resident bytes stay within its budget.
//! * **Budget invariance** — replaying a workload through the scheduler
//!   under any cache budget produces the same accepted/rejected/eviction/
//!   relocation counters and the same final configuration memory as the
//!   unbounded run; budgets trade only decode time for bytes.

mod common;

use common::{scheduler, TASKS};
use proptest::prelude::*;
use std::sync::Arc;
use vbs_arch::{ArchSpec, Coord, Rect};
use vbs_bitstream::TaskBitstream;
use vbs_runtime::BestFit;
use vbs_sched::{
    CacheBudget, CacheLookup, DecodeCache, Scheduler, SchedulerConfig, Trace, WorkloadSpec,
};

/// A decoded stream carrying its name index as a frame bit, so eviction
/// victims can be identified from the `Arc` the cache hands back.
fn task(idx: usize) -> Arc<TaskBitstream> {
    let mut t = TaskBitstream::empty(ArchSpec::paper_example(), 2, 2);
    t.frame_mut(Coord::new(0, 0)).set_bit(idx, true);
    Arc::new(t)
}

/// Recovers the name index [`task`] planted.
fn idx_of(t: &TaskBitstream) -> usize {
    (0..16)
        .find(|&i| t.frame(Coord::new(0, 0)).bit(i))
        .expect("fixture bit present")
}

/// The pre-tiering cache, as a reference model: a flat list of
/// `(name index, last-used stamp)` under a count cap.
struct LruModel {
    capacity: usize,
    entries: Vec<(usize, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl LruModel {
    fn new(capacity: usize) -> Self {
        LruModel {
            capacity,
            entries: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns whether the lookup hits.
    fn get(&mut self, idx: usize) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(i, _)| *i == idx) {
            entry.1 = clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns the name indices the insert displaces, in displacement order.
    fn insert(&mut self, idx: usize) -> Vec<usize> {
        if self.capacity == 0 {
            return vec![idx];
        }
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(i, _)| *i == idx) {
            entry.1 = clock;
            return vec![idx]; // the replaced arena of the same name
        }
        let mut displaced = Vec::new();
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(pos, _)| pos)
                .expect("non-empty at cap");
            displaced.push(self.entries.swap_remove(victim).0);
        }
        self.entries.push((idx, clock));
        displaced
    }
}

proptest! {
    /// Unbounded budgets = the classic LRU, operation for operation:
    /// identical hit/miss streams, identical victims, and the warm tier
    /// never materializes.
    #[test]
    fn unbounded_tiered_cache_is_bit_identical_to_classic_lru(
        capacity in 1usize..5,
        ops in proptest::collection::vec((0u8..2, 0usize..6), 1..60),
    ) {
        let spec = ArchSpec::paper_example();
        let mut cache = DecodeCache::new(capacity);
        let mut model = LruModel::new(capacity);
        prop_assert!(cache.budget().is_unbounded());
        for &(op, idx) in &ops {
            if op == 0 {
                let lookup = cache.get(&format!("t{idx}"), &spec);
                match (lookup, model.get(idx)) {
                    (CacheLookup::Hot(t), true) => prop_assert_eq!(idx_of(&t), idx),
                    (CacheLookup::Miss, false) => {}
                    (lookup, hit) => prop_assert!(
                        false,
                        "divergence on get t{}: tiered {:?}, model hit={}",
                        idx, lookup, hit
                    ),
                }
            } else {
                let outcome =
                    cache.insert(&format!("t{idx}"), spec, task(idx), vec![0xAB; 16], 10);
                let displaced: Vec<usize> =
                    outcome.displaced.iter().map(|t| idx_of(t)).collect();
                prop_assert_eq!(displaced, model.insert(idx), "victims diverge on t{}", idx);
                prop_assert_eq!(outcome.demoted, 0);
                prop_assert_eq!(outcome.dropped, 0);
                prop_assert!(!outcome.promoted);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits, model.hits);
            prop_assert_eq!(stats.misses, model.misses);
            prop_assert_eq!(stats.entries, model.entries.len());
            prop_assert_eq!(stats.warm_entries, 0, "warm tier must never form");
            prop_assert_eq!(stats.warm_hits, 0);
            prop_assert_eq!(stats.demotions, 0);
            prop_assert_eq!(stats.promotions, 0);
        }
    }

    /// After every operation, every finite tier budget holds: hot bytes
    /// within the hot budget, warm bytes within the warm budget.
    #[test]
    fn resident_bytes_stay_within_finite_budgets(
        hot_budget in 1u64..4096,
        warm_budget in 1u64..512,
        ops in proptest::collection::vec((0u8..2, 0usize..6, 1usize..128), 1..60),
    ) {
        let spec = ArchSpec::paper_example();
        let budget = CacheBudget {
            hot_bytes: hot_budget,
            warm_bytes: warm_budget,
        };
        let mut cache = DecodeCache::with_budget(3, budget);
        for &(op, idx, len) in &ops {
            if op == 0 {
                cache.get(&format!("t{idx}"), &spec);
            } else {
                cache.insert(&format!("t{idx}"), spec, task(idx), vec![0xCD; len], 10 + len as u64);
            }
            let stats = cache.stats();
            prop_assert!(
                stats.hot_bytes <= hot_budget,
                "hot tier over budget: {} > {} after {:?}",
                stats.hot_bytes, hot_budget, (op, idx, len)
            );
            prop_assert!(
                stats.warm_bytes <= warm_budget,
                "warm tier over budget: {} > {} after {:?}",
                stats.warm_bytes, warm_budget, (op, idx, len)
            );
            prop_assert_eq!(stats.resident_bytes(), stats.hot_bytes + stats.warm_bytes);
        }
    }

    /// Cache budgets are invisible to scheduling: any budget replays a
    /// workload to the same accepted/rejected/eviction/relocation counters
    /// and the same final configuration memory as the unbounded cache,
    /// while honoring the budget.
    #[test]
    fn any_budget_replays_bit_identically_to_unbounded(
        seed in 0u64..1_000_000,
        loads in 8usize..40,
        hot_kib in 1u64..64,
        warm_kib in 1u64..16,
    ) {
        let trace = Trace::synthetic(&WorkloadSpec {
            tasks: TASKS.iter().map(|t| t.0.to_string()).collect(),
            loads,
            mean_interarrival: 3,
            mean_duration: 24,
            priority_levels: 4,
            deadline_slack: Some(40),
            seed,
        });
        let base = SchedulerConfig {
            eviction_limit: 1,
            compaction: true,
            ..SchedulerConfig::default()
        };
        let budget = CacheBudget {
            hot_bytes: hot_kib * 1024,
            warm_bytes: warm_kib * 1024,
        };
        let budgeted_cfg = SchedulerConfig {
            cache_budget: budget,
            ..base
        };
        let mut unbounded = scheduler(11, 11, 0, Box::new(BestFit), base);
        let mut budgeted = scheduler(11, 11, 0, Box::new(BestFit), budgeted_cfg);
        let u = vbs_sched::replay(&mut unbounded, &trace);
        let b = vbs_sched::replay(&mut budgeted, &trace);

        let pinned = |r: &vbs_sched::SimReport| (
            r.sched.loads_submitted,
            r.sched.loads_accepted,
            r.sched.loads_rejected,
            r.sched.deadline_missed,
            r.sched.evictions,
            r.sched.relocations,
        );
        prop_assert_eq!(pinned(&u), pinned(&b), "budget changed scheduling behavior");
        prop_assert!(b.cache.hot_bytes <= budget.hot_bytes);
        prop_assert!(b.cache.warm_bytes <= budget.warm_bytes);
        // The budgeted hot tier is always a subset of the unbounded one
        // (demotion only removes), so hot hits can only shrink and decodes
        // (which warm re-decodes count toward) can only grow.
        prop_assert!(b.cache.hits <= u.cache.hits, "hot hits grew under a budget");
        prop_assert!(b.sched.decodes >= u.sched.decodes, "decodes shrank under a budget");
        prop_assert_eq!(
            b.cache.warm_hits, b.sched.warm_hits,
            "scheduler and cache warm-hit counters disagree"
        );

        let image = |sched: &Scheduler| {
            let device = sched.manager().controller().device();
            sched
                .manager()
                .controller()
                .memory()
                .read_region(Rect::at_origin(device.width(), device.height()))
                .expect("full-device read")
        };
        prop_assert_eq!(
            image(&unbounded).diff_count(&image(&budgeted)).expect("same devices"),
            0,
            "final configuration memories diverge under a cache budget"
        );
    }
}
