//! Fault-plane integration tests: deterministic injection through the
//! [`vbs_sched::FaultInjector`], self-healing single-fabric retries and
//! re-placement, CRC readback verification with scrubbing, and the
//! quarantine → re-placement → recovery lifecycle of a fleet losing a
//! fabric.

mod common;

use common::{fleet, scheduler};
use std::sync::Arc;
use vbs_runtime::FirstFit;
use vbs_sched::{
    FaultInjector, FaultPlan, MultiConfig, Outcome, RejectReason, Request, RoundRobin, Scheduler,
    SchedulerConfig,
};
use vbs_telemetry::{EventKind, Telemetry};

fn base_config() -> SchedulerConfig {
    SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        ..SchedulerConfig::default()
    }
}

fn hook(plan: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::new(
        FaultPlan::parse(plan).expect("plan parses"),
    ))
}

fn load(sched: &mut Scheduler, task: &str) -> Outcome {
    sched.submit(Request::Load {
        task: task.into(),
        priority: 1,
        deadline: None,
    });
    let outcomes = sched.process_pending();
    assert_eq!(outcomes.len(), 1);
    outcomes.into_iter().next().unwrap()
}

/// A transient write fault is retried in place and the load still lands.
#[test]
fn transient_write_fault_is_retried_and_lands() {
    let mut sched = scheduler(10, 10, 0, Box::new(FirstFit), base_config());
    let injector = hook("write 1 transient");
    sched.set_fault_hook(Some(injector.clone()));

    let outcome = load(&mut sched, "fir4");
    assert!(matches!(outcome, Outcome::Loaded { .. }), "{outcome:?}");
    let m = sched.metrics();
    assert_eq!(m.write_faults, 1);
    assert_eq!(m.write_retries, 1);
    assert_eq!(m.loads_accepted, 1);
    assert_eq!(injector.writes(), 2, "fault + successful retry");
}

/// A persistent write fault at the chosen origin steers the load to an
/// alternative placement instead of dropping it.
#[test]
fn persistent_write_fault_replaces_the_load_elsewhere() {
    let mut sched = scheduler(10, 10, 0, Box::new(FirstFit), base_config());
    sched.set_fault_hook(Some(hook("write 1 persistent")));

    match load(&mut sched, "fir4") {
        Outcome::Loaded { origin, .. } => {
            // First-fit would have placed at the origin the fault killed.
            assert_ne!(
                (origin.x, origin.y),
                (0, 0),
                "re-placement must avoid the faulted region"
            );
        }
        other => panic!("expected a re-placed load, got {other:?}"),
    }
    let m = sched.metrics();
    assert_eq!(m.write_faults, 1);
    assert_eq!(m.write_retries, 0, "persistent faults are not retried");
    assert_eq!(m.loads_accepted, 1);
}

/// Exhausting the retry budget on back-to-back transient faults rejects
/// the load with a runtime reason (after one re-placement attempt).
#[test]
fn exhausted_retries_reject_gracefully() {
    let config = SchedulerConfig {
        write_retry_limit: 1,
        ..base_config()
    };
    let mut sched = scheduler(10, 10, 0, Box::new(FirstFit), config);
    // Every early write fails: the original placement (1 + 1 retry), then
    // the re-placement attempt (1 + 1 retry) — all four bounce.
    sched.set_fault_hook(Some(hook(
        "write 1 transient\nwrite 2 transient\nwrite 3 transient\nwrite 4 transient",
    )));

    match load(&mut sched, "fir4") {
        Outcome::Rejected { reason, .. } => {
            assert!(matches!(reason, RejectReason::Runtime(_)), "{reason:?}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    let m = sched.metrics();
    assert_eq!(m.loads_rejected, 1);
    assert_eq!(m.write_faults, 4);
    assert_eq!(m.write_retries, 2, "one retry per placement attempt");
}

/// An injected bit flip is caught by readback verification and scrubbed by
/// a rewrite; the load completes with the corruption healed.
#[test]
fn corrupt_write_is_caught_and_scrubbed() {
    let mut sched = scheduler(10, 10, 0, Box::new(FirstFit), base_config());
    sched.set_verify(true);
    sched.set_fault_hook(Some(hook("seed 7\nwrite 1 corrupt")));

    let outcome = load(&mut sched, "fir4");
    assert!(matches!(outcome, Outcome::Loaded { .. }), "{outcome:?}");
    let m = sched.metrics();
    assert_eq!(m.crc_mismatches, 1);
    assert_eq!(m.verify_scrubs, 1);
    assert_eq!(m.loads_accepted, 1);
    // The scrub healed the fabric: a whole-device verify stays clean.
    sched
        .manager()
        .controller()
        .verify_region(vbs_arch::Rect::at_origin(10, 10))
        .expect("post-scrub verify");
}

/// The full fleet lifecycle: an outage quarantines the fabric, its resident
/// is re-placed on the survivor under its original fleet-global id, loads
/// caught in flight migrate instead of dropping, and recovery returns the
/// wiped fabric to the routing set — in that order on the telemetry
/// timeline.
#[test]
fn quarantine_replacement_recovery_ordering() {
    let mut multi = fleet(
        2,
        12,
        12,
        Box::new(RoundRobin::default()),
        || Box::new(FirstFit),
        base_config(),
        MultiConfig::default(),
    );
    let telemetry = Telemetry::new();
    multi.set_telemetry(telemetry.clone());

    let mut injector = FaultInjector::new(FaultPlan::parse("outage 5 100").expect("plan"));
    injector.set_telemetry(telemetry.clone(), 0);
    let injector = Arc::new(injector);
    multi
        .fabric_mut(0)
        .set_fault_hook(Some(injector.clone() as Arc<dyn vbs_runtime::FaultHook>));

    // Round-robin: "fir4" lands on fabric 0, "crc4" on fabric 1.
    let on_dead = multi.submit(Request::Load {
        task: "fir4".into(),
        priority: 1,
        deadline: None,
    });
    let on_survivor = multi.submit(Request::Load {
        task: "crc4".into(),
        priority: 1,
        deadline: None,
    });
    for (_, outcome) in multi.process_pending_tagged() {
        assert!(matches!(outcome, Outcome::Loaded { .. }), "{outcome:?}");
    }
    assert_eq!(multi.metrics().loads_accepted, 2);

    // The outage hits. A load already queued to fabric 0 rides through the
    // quarantine as a migration, and the resident is re-placed.
    multi.advance_to(5);
    injector.set_tick(5);
    let in_flight = multi.submit(Request::Load {
        task: "aes5".into(),
        priority: 1,
        deadline: None,
    });
    let outcomes = multi.process_pending_tagged();
    // Both the in-flight load and the evacuated resident end up Loaded.
    for job in [in_flight, on_dead] {
        assert!(
            outcomes
                .iter()
                .any(|(id, o)| *id == job && matches!(o, Outcome::Loaded { .. })),
            "job {job} missing from {outcomes:?}"
        );
    }
    let m = *multi.metrics();
    assert!(multi.is_quarantined(0));
    assert_eq!(m.quarantines, 1);
    assert_eq!(m.residents_requeued, 1);
    assert_eq!(m.degraded_accepts, 1);
    assert!(m.migrations >= 1, "{m:?}");
    assert_eq!(
        m.loads_accepted, 3,
        "a re-placed resident is not a fresh acceptance"
    );
    assert_eq!(m.recoveries, 0);
    // Everything lives on fabric 1 now, original ids intact.
    let residents = multi.residents();
    assert_eq!(residents.len(), 3);
    for &(fabric, global, _) in &residents {
        assert_eq!(fabric, 1, "job {global} still routed to the dead fabric");
    }
    assert!(residents.iter().any(|&(_, g, _)| g == on_dead));
    assert!(residents.iter().any(|&(_, g, _)| g == on_survivor));
    assert!(multi.fabric(0).manager().loaded_tasks().is_empty());

    // While quarantined, new loads route around fabric 0.
    let during = multi.submit(Request::Load {
        task: "fir4".into(),
        priority: 1,
        deadline: None,
    });
    let outcomes = multi.process_pending_tagged();
    assert!(outcomes
        .iter()
        .any(|(id, o)| *id == during && matches!(o, Outcome::Loaded { .. })));
    assert!(multi.fabric(0).manager().loaded_tasks().is_empty());

    // Recovery: the fabric comes back wiped and rejoins the fleet.
    multi.advance_to(100);
    injector.set_tick(100);
    multi.process_pending();
    assert!(!multi.is_quarantined(0));
    assert_eq!(multi.metrics().recoveries, 1);
    assert_eq!(
        multi
            .fabric(0)
            .manager()
            .controller()
            .memory()
            .occupied_macros(),
        0,
        "recovered fabric must start blank"
    );
    let after = multi.submit(Request::Load {
        task: "crc4".into(),
        priority: 1,
        deadline: None,
    });
    let outcomes = multi.process_pending_tagged();
    assert!(outcomes
        .iter()
        .any(|(id, o)| *id == after && matches!(o, Outcome::Loaded { .. })));

    // The timeline shows the lifecycle in order: quarantine before any
    // degraded re-placement decision, recovery last.
    let events = telemetry.events();
    let seq_of = |kind: EventKind| {
        events
            .iter()
            .find(|e| e.kind == kind)
            .map(|e| e.seq)
            .unwrap_or_else(|| panic!("no {kind:?} event in {events:?}"))
    };
    let quarantine = seq_of(EventKind::Quarantine);
    let recover = seq_of(EventKind::Recover);
    assert!(quarantine < recover, "quarantine must precede recovery");
    // The re-placement shard decision of the evacuated resident sits
    // between them.
    let replacement_decision = events
        .iter()
        .find(|e| e.kind == EventKind::ShardDecision && e.a == on_dead && e.seq > quarantine)
        .expect("re-placement routing decision");
    assert!(replacement_decision.seq < recover);
}
