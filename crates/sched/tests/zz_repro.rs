mod common;
use common::fleet;
use vbs_runtime::FirstFit;
use vbs_sched::{MultiConfig, Outcome, Request, RoundRobin, SchedulerConfig};

#[test]
fn unload_submitted_with_load_in_same_batch() {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let mut multi = fleet(
        2,
        10,
        10,
        Box::new(RoundRobin::default()),
        || Box::new(FirstFit),
        config,
        MultiConfig::default(),
    );
    let job = multi.submit(Request::Load {
        task: "fir4".into(),
        priority: 1,
        deadline: None,
    });
    // Unload the job before the batch is processed: the shard processes
    // unloads first, so this resolves NotResident while the load still lands.
    multi.submit(Request::Unload { job });
    let outcomes = multi.process_pending_tagged();
    println!("outcomes: {outcomes:?}");
    assert!(outcomes
        .iter()
        .any(|(id, o)| *id == job && matches!(o, Outcome::Loaded { .. })));
    // The job is resident on fabric 0 — residents() must be able to name it.
    let residents = multi.residents();
    println!("residents: {residents:?}");
}
