//! Multi-fabric scheduler tests: the K=1 differential against the
//! single-fabric [`Scheduler`], property-based invariants over K ∈ {1,2,4}
//! fleets, migration behavior and the sharded-vs-independent acceptance
//! claim of the acceptance criteria.

mod common;

use common::{assert_fabric_invariants, fleet, repository, scheduler, TASKS};
use proptest::prelude::*;
use vbs_arch::Rect;
use vbs_runtime::{BestFit, FirstFit, PlacementPolicy};
use vbs_sched::{
    replay, replay_multi, shard_policy_by_name, CacheAffinity, LeastLoaded, MultiConfig, Outcome,
    Request, RoundRobin, SchedMetrics, Scheduler, SchedulerConfig, Trace, WorkloadSpec,
    SHARD_POLICY_NAMES,
};

fn overload_trace(loads: usize, seed: u64) -> Trace {
    Trace::synthetic(&WorkloadSpec {
        tasks: TASKS.iter().map(|t| t.0.to_string()).collect(),
        loads,
        mean_interarrival: 3,
        mean_duration: 24,
        priority_levels: 4,
        deadline_slack: None,
        seed,
    })
}

/// Wall-clock decode and compaction-pause times are the only
/// nondeterministic counters; zero them so the rest of the metrics can be
/// compared bit-for-bit.
fn normalized(mut metrics: SchedMetrics) -> SchedMetrics {
    metrics.decode_micros = 0;
    metrics.compaction_micros = 0;
    metrics
}

/// Reads back the whole configuration memory of a scheduler's device.
fn full_memory_image(sched: &Scheduler) -> vbs_bitstream::TaskBitstream {
    let device = sched.manager().controller().device();
    sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::at_origin(device.width(), device.height()))
        .expect("full-device read")
}

/// Differential: a K=1 fleet must replay a trace bit-identically to the
/// plain single-fabric scheduler — same counters (modulo wall-clock decode
/// time), same cache behavior, and the same final configuration memory,
/// for every shard policy. This pins down that the decode pipeline's
/// staged handoff changes *when* streams are decoded but nothing else.
#[test]
fn k1_fleet_is_bit_identical_to_single_scheduler() {
    let trace = overload_trace(80, 2015);
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };

    let mut single = scheduler(11, 11, 0, Box::new(BestFit), config);
    let single_report = replay(&mut single, &trace);

    for &policy in SHARD_POLICY_NAMES {
        let mut multi = fleet(
            1,
            11,
            11,
            shard_policy_by_name(policy).unwrap(),
            || Box::new(BestFit),
            config,
            MultiConfig::default(),
        );
        let multi_report = replay_multi(&mut multi, &trace);

        assert_eq!(multi_report.events, single_report.events, "{policy}");
        assert_eq!(
            multi_report.departures_already_gone, single_report.departures_already_gone,
            "{policy}"
        );
        let shard = &multi_report.fabrics[0];
        assert_eq!(
            normalized(shard.sched),
            normalized(single_report.sched),
            "{policy}: shard counters diverge from the single-fabric run"
        );
        assert_eq!(shard.cache, single_report.cache, "{policy}");
        assert_eq!(
            shard.final_fragmentation, single_report.final_fragmentation,
            "{policy}"
        );
        // Fleet-level accounting collapses to the single-fabric numbers.
        assert_eq!(
            multi_report.multi.loads_submitted,
            single_report.sched.loads_submitted
        );
        assert_eq!(
            multi_report.multi.loads_accepted,
            single_report.sched.loads_accepted
        );
        assert_eq!(
            multi_report.multi.migrations, 0,
            "{policy}: K=1 cannot migrate"
        );
        // The fabric ends in the bit-identical configuration state.
        let single_image = full_memory_image(&single);
        let multi_image = full_memory_image(multi.fabric(0));
        assert_eq!(
            single_image.diff_count(&multi_image).unwrap(),
            0,
            "{policy}: final configuration memories differ"
        );
    }
}

/// The acceptance-criteria claim: sharding one overloaded stream over 4
/// fabrics accepts more of it than 4 independent single-fabric schedulers
/// each facing the full stream.
#[test]
fn sharded_fleet_beats_independent_fabrics_on_overload() {
    let trace = overload_trace(120, 2015);
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };

    // 4 independent fabrics each replay the whole trace; aggregate
    // acceptance = total accepted / total submitted.
    let mut independent_accepted = 0u64;
    let mut independent_submitted = 0u64;
    for i in 0..4 {
        let mut single = scheduler(11, 11, i, Box::new(BestFit), config);
        let report = replay(&mut single, &trace);
        independent_accepted += report.sched.loads_accepted;
        independent_submitted += report.sched.loads_submitted;
    }
    let independent_rate = independent_accepted as f64 / independent_submitted as f64;

    let mut multi = fleet(
        4,
        11,
        11,
        Box::new(LeastLoaded),
        || Box::new(BestFit),
        config,
        MultiConfig::default(),
    );
    let report = replay_multi(&mut multi, &trace);
    assert!(
        report.acceptance_rate() > independent_rate,
        "sharded acceptance {:.3} must beat independent aggregate {:.3}",
        report.acceptance_rate(),
        independent_rate
    );
}

/// Migration: a load whose assigned fabric is saturated lands on another
/// fabric instead of being dropped.
#[test]
fn saturated_fabric_sheds_load_to_the_fleet() {
    // Two 10x10 fabrics; round-robin sends both big tasks to fabric 0
    // unless migration steps in (a second 6x6 cannot fit there, but fits
    // next to fabric 1's 4x4).
    let config = SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let mut multi = fleet(
        2,
        10,
        10,
        Box::new(RoundRobin::default()),
        || Box::new(FirstFit),
        config,
        MultiConfig::default(),
    );
    // fft6 (6x6) to fabric 0, fir4 (4x4) to fabric 1, then another fft6:
    // round-robin points back at fabric 0, where 6x6 no longer fits.
    let a = multi.submit(Request::Load {
        task: "fft6".into(),
        priority: 1,
        deadline: None,
    });
    let b = multi.submit(Request::Load {
        task: "fir4".into(),
        priority: 1,
        deadline: None,
    });
    let c = multi.submit(Request::Load {
        task: "fft6".into(),
        priority: 1,
        deadline: None,
    });
    let outcomes = multi.process_pending_tagged();
    for (job, outcome) in &outcomes {
        assert!(
            matches!(outcome, Outcome::Loaded { .. }),
            "job {job} failed: {outcome:?}"
        );
    }
    assert_eq!(outcomes.len(), 3);
    assert!(multi.metrics().migrations >= 1, "{:?}", multi.metrics());
    assert_eq!(multi.metrics().loads_accepted, 3);
    // The two fft6 instances sit on different fabrics.
    let residents = multi.residents();
    let fabric_of = |job: u64| {
        residents
            .iter()
            .find(|(_, global, _)| *global == job)
            .map(|(f, _, _)| *f)
            .expect("job resident")
    };
    assert_ne!(fabric_of(a), fabric_of(c));
    let _ = fabric_of(b);
}

/// Cache-affinity keeps repeat loads of one task on the fabric that already
/// decoded it, so the fleet decodes each task once.
#[test]
fn cache_affinity_decodes_each_task_once() {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let mut multi = fleet(
        2,
        12,
        12,
        Box::new(CacheAffinity),
        || Box::new(FirstFit),
        config,
        MultiConfig::default(),
    );
    let mut jobs = Vec::new();
    for round in 0..3 {
        multi.advance_to(round * 10);
        for task in ["fir4", "crc4"] {
            jobs.push(multi.submit(Request::Load {
                task: task.into(),
                priority: 1,
                deadline: None,
            }));
        }
        for outcome in multi.process_pending() {
            assert!(matches!(outcome, Outcome::Loaded { .. }), "{outcome:?}");
        }
        multi.advance_to(round * 10 + 5);
        for job in jobs.drain(..) {
            multi.submit(Request::Unload { job });
        }
        multi.process_pending();
    }
    let total_decodes: u64 = multi.fabric_metrics().iter().map(|m| m.decodes).sum();
    assert_eq!(
        total_decodes, 2,
        "each task decodes once fleet-wide; repeats are affinity-routed cache hits"
    );
}

proptest! {
    /// Arbitrary request sequences against K ∈ {1, 2, 4} fleets preserve
    /// the fleet invariants: a job is resident on at most one fabric, no
    /// fabric exceeds its capacity (disjoint, in-bounds regions), nothing
    /// is configured outside resident regions, and completed-request
    /// accounting sums across shards to the number submitted.
    #[test]
    fn fleet_sequences_preserve_invariants(
        k_idx in 0usize..3,
        shard_idx in 0usize..3,
        ops in proptest::collection::vec((0u8..6, 0u8..4, 0u16..12, 0u16..12), 1..20),
    ) {
        let k = [1usize, 2, 4][k_idx];
        let shard = shard_policy_by_name(SHARD_POLICY_NAMES[shard_idx]).unwrap();
        let config = SchedulerConfig {
            eviction_limit: 1,
            compaction: true,
            ..SchedulerConfig::default()
        };
        let mut multi = fleet(
            k, 9, 7, shard,
            || Box::new(FirstFit) as Box<dyn PlacementPolicy>,
            config,
            MultiConfig { decode_workers: 2, ..MultiConfig::default() },
        );

        let mut jobs: Vec<u64> = Vec::new();
        let mut loads_issued = 0u64;
        for (tick, &(op, priority, x, y)) in ops.iter().enumerate() {
            multi.advance_to(tick as u64);
            match op {
                0..=2 => {
                    let task = ["fir4", "crc4", "aes5"][op as usize];
                    loads_issued += 1;
                    let job = multi.submit(Request::Load {
                        task: task.into(),
                        priority,
                        deadline: None,
                    });
                    let outcomes = multi.process_pending_tagged();
                    if outcomes.iter().any(|(id, o)| {
                        *id == job && matches!(o, Outcome::Loaded { .. })
                    }) {
                        jobs.push(job);
                    }
                }
                3 => {
                    if !jobs.is_empty() {
                        let job = jobs[(x as usize + y as usize) % jobs.len()];
                        multi.submit(Request::Unload { job });
                        multi.process_pending();
                    }
                }
                4 => {
                    if !jobs.is_empty() {
                        let job = jobs[(x as usize) % jobs.len()];
                        // May fail (busy / out of bounds) — invariants must
                        // hold either way.
                        multi.submit(Request::Relocate {
                            job,
                            to: vbs_arch::Coord::new(x, y),
                        });
                        multi.process_pending();
                    }
                }
                _ => {
                    // A burst: two loads in one round, exercising the
                    // decode pipeline's fan-out.
                    loads_issued += 2;
                    let a = multi.submit(Request::Load {
                        task: "fir4".into(), priority, deadline: None,
                    });
                    let b = multi.submit(Request::Load {
                        task: "crc4".into(), priority, deadline: None,
                    });
                    for (id, outcome) in multi.process_pending_tagged() {
                        if (id == a || id == b) && matches!(outcome, Outcome::Loaded { .. }) {
                            jobs.push(id);
                        }
                    }
                }
            }

            // Invariant: a job is resident on at most one fabric.
            let residents = multi.residents();
            for (i, (_, job_a, _)) in residents.iter().enumerate() {
                for (_, job_b, _) in residents.iter().skip(i + 1) {
                    prop_assert_ne!(*job_a, *job_b, "job resident on two fabrics");
                }
            }
            // Invariant: per-fabric capacity and memory hygiene.
            for fabric in multi.fabrics() {
                assert_fabric_invariants(fabric);
            }
            // Invariant: every submitted load has settled, and shard
            // accounting sums to the fleet totals.
            let m = *multi.metrics();
            prop_assert_eq!(m.loads_submitted, loads_issued);
            prop_assert_eq!(m.loads_accepted + m.loads_rejected, loads_issued);
            let shard_accepted: u64 = multi
                .fabric_metrics()
                .iter()
                .map(|f| f.loads_accepted)
                .sum();
            prop_assert_eq!(
                shard_accepted, m.loads_accepted,
                "an accepted load lands on exactly one shard"
            );
        }

        // Drain: unloading everything leaves every fabric blank.
        for (_, job, _) in multi.residents() {
            multi.submit(Request::Unload { job });
        }
        multi.process_pending();
        for fabric in multi.fabrics() {
            assert_fabric_invariants(fabric);
            prop_assert_eq!(fabric.manager().controller().memory().occupied_macros(), 0);
            prop_assert_eq!(fabric.manager().fabric_view().free_area(), 9 * 7);
        }
        prop_assert!(multi.residents().is_empty());
    }
}

/// The overloaded-fleet smoke check kept out of proptest: all four fixture
/// tasks submitted at once to every fleet size resolve with full accounting
/// even though some must be rejected.
#[test]
fn burst_accounting_sums_across_shards() {
    for k in [1usize, 2, 4] {
        let config = SchedulerConfig {
            eviction_limit: 0,
            compaction: false,
            ..SchedulerConfig::default()
        };
        let mut multi = fleet(
            k,
            7,
            7,
            Box::new(LeastLoaded),
            || Box::new(FirstFit),
            config,
            MultiConfig::default(),
        );
        let n = 6u64;
        for task in ["fft6", "aes5", "fir4", "crc4", "fir4", "aes5"] {
            multi.submit(Request::Load {
                task: task.into(),
                priority: 1,
                deadline: None,
            });
        }
        let outcomes = multi.process_pending();
        assert_eq!(outcomes.len() as u64, n, "K={k}");
        let m = multi.metrics();
        assert_eq!(m.loads_submitted, n, "K={k}");
        assert_eq!(m.loads_accepted + m.loads_rejected, n, "K={k}");
        // More fabrics can only help acceptance on this burst.
        if k == 4 {
            assert!(
                m.loads_accepted >= 4,
                "K=4 accepted only {}",
                m.loads_accepted
            );
        }
        let _ = repository(); // keep the fixture alive across iterations
    }
}
