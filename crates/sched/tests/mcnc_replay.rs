//! Replays the checked-in MCNC corpus (`tests/traces/mcnc/` at the
//! workspace root) through the single- and multi-fabric schedulers and
//! compares the counters bit-for-bit against `replay.golden`.
//!
//! The corpus is the standing realism oracle: every stream in it came from
//! a real place/route/encode run over a BLIF-parsed circuit, so a change
//! anywhere in the pipeline (parser, placer, router, encoder, scheduler)
//! that shifts observable behavior shows up here as an explicit counter
//! diff. To update deliberately, rebuild the corpus and commit the diff:
//!
//! ```text
//! cargo run --release -p vbs-bench --bin mcnc_corpus
//! ```
//!
//! See `crates/sched/README.md` for the full workflow.

use std::collections::HashSet;
use vbs_sched::{CacheBudget, McncCorpus, SchedulerConfig, TraceOp};

fn corpus() -> McncCorpus {
    McncCorpus::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc"
    ))
    .expect("checked-in corpus loads")
}

#[test]
fn corpus_covers_at_least_five_circuits() {
    let corpus = corpus();
    // Distinct Table II circuits (variants collapse onto their base name).
    let circuits: HashSet<&str> = corpus
        .tasks
        .iter()
        .map(|t| t.name.split('@').next().unwrap())
        .collect();
    assert!(
        circuits.len() >= 5,
        "corpus must span at least five MCNC circuits, got {circuits:?}"
    );
    // Every manifest task has a non-empty stream behind it.
    for task in &corpus.tasks {
        let size = corpus
            .repository
            .stored_size(&task.name)
            .unwrap_or_else(|| panic!("task `{}` missing from repository", task.name));
        assert!(size > 0, "task `{}` has an empty stream", task.name);
    }
}

#[test]
fn replay_counters_match_golden() {
    let corpus = corpus();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc/replay.golden"
    );
    let text = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} — rebuild with the mcnc_corpus bin"));
    let expected: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = corpus.golden_lines();
    assert_eq!(
        actual, expected,
        "MCNC replay counters drifted from replay.golden — if intended, \
         regenerate with `cargo run --release -p vbs-bench --bin mcnc_corpus`"
    );
}

/// The goldens pin only budget-invariant counters, so replaying under a
/// finite cache budget — tight enough on the hot tier to force real
/// demotions and warm re-decodes, roomy enough on the warm tier to retain
/// every task name for `CacheAffinity` — must reproduce `replay.golden`
/// line for line.
#[test]
fn replay_counters_match_golden_under_finite_cache_budget() {
    let corpus = corpus();
    let budget = CacheBudget {
        hot_bytes: 24 * 1024,
        warm_bytes: 64 * 1024,
    };
    let config = SchedulerConfig {
        cache_budget: budget,
        ..McncCorpus::replay_config()
    };
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc/replay.golden"
    );
    let text = std::fs::read_to_string(golden_path).expect("golden present");
    let expected: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = corpus.golden_lines_with(config);
    assert_eq!(
        actual, expected,
        "a finite cache budget changed golden-pinned replay counters"
    );

    // Guard against vacuity: the budget must have actually squeezed the
    // hot tier during at least one replay.
    let mut single = corpus.single_scheduler_with(config);
    let trace = corpus.trace("steady").expect("steady trace present");
    vbs_sched::replay(&mut single, trace);
    let stats = single.cache_stats();
    assert!(stats.hot_bytes <= budget.hot_bytes);
    assert!(stats.warm_bytes <= budget.warm_bytes);
    assert!(
        stats.demotions + stats.warm_admissions > 0 && stats.warm_hits > 0,
        "the 24 KiB hot budget must force hot-tier pressure (demotions or \
         gated admissions) and warm re-decodes on the steady trace: {stats:?}"
    );
}

#[test]
fn variant_trace_swaps_through_every_variant() {
    let corpus = corpus();
    let trace = corpus.trace("variant").expect("variant trace present");
    let swapped: HashSet<&str> = trace
        .events
        .iter()
        .filter_map(|e| match &e.op {
            TraceOp::Swap { task, .. } => Some(task.as_str()),
            _ => None,
        })
        .collect();
    let variants: HashSet<&str> = corpus
        .tasks
        .iter()
        .filter(|t| t.name.contains('@'))
        .map(|t| t.name.as_str())
        .collect();
    assert!(!variants.is_empty(), "corpus carries a variant set");
    for variant in &variants {
        // The initial load covers variants[0]; every other variant must be
        // reached by an on-the-fly swap.
        let initial = trace
            .events
            .iter()
            .any(|e| matches!(&e.op, TraceOp::Load { task, .. } if task == variant));
        assert!(
            swapped.contains(variant) || initial,
            "variant `{variant}` never enters the scenario"
        );
    }
}
