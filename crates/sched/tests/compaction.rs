//! Differential suite for decode-free relocation and batch-planned
//! compaction.
//!
//! Pre-PR, `Scheduler` relocation fetched the task's decoded stream through
//! the decode cache (hitting, missing, decoding and LRU-stamping on the
//! way) and compaction executed up to four greedy bottom-left sweeps, each
//! move its own relocation. Both now run **decode-free**: a relocation is
//! one bulk word-arena move, and a compaction pass plans the whole move
//! schedule up front, moving every improved resident exactly once. This
//! suite pins the equivalences:
//!
//! * relocation and compaction perform **zero** decodes and **zero** decode
//!   cache fetches (the counters the old path bumped);
//! * the configuration memory after a relocation is bit-identical to
//!   re-writing the decoded image at the destination — exactly what the
//!   pre-PR cache-fetch path wrote;
//! * the fabric layout and memory after the batch-planned `compact()` are
//!   bit-identical to executing the legacy greedy sweeps move by move,
//!   while rewriting no more frames than the sweeps did.

mod common;

use common::{assert_fabric_invariants, scheduler, TASKS};
use vbs_arch::{Coord, Rect};
use vbs_runtime::{BestFit, FabricView, FirstFit};
use vbs_sched::{Outcome, Request, Scheduler, SchedulerConfig};

fn full_memory_image(sched: &Scheduler) -> vbs_bitstream::TaskBitstream {
    let device = sched.manager().controller().device();
    sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::at_origin(device.width(), device.height()))
        .expect("full-device read")
}

/// Loads a mix of tasks and unloads every other one, leaving bottom-left
/// holes so compaction has real work. Returns the surviving job ids.
fn fragment(sched: &mut Scheduler) -> Vec<u64> {
    let mut jobs = Vec::new();
    for round in 0..10 {
        let task = TASKS[round % TASKS.len()].0;
        if let Outcome::Loaded { job, .. } = sched.execute(Request::Load {
            task: task.into(),
            priority: 1,
            deadline: None,
        }) {
            jobs.push(job);
        }
    }
    let mut survivors = Vec::new();
    for (i, job) in jobs.into_iter().enumerate() {
        if i % 2 == 0 {
            sched.execute(Request::Unload { job });
        } else {
            survivors.push(job);
        }
    }
    survivors
}

/// The pre-PR compaction, re-created through public API: up to four greedy
/// bottom-left sweeps, every improvement executed immediately as its own
/// relocation request. Returns (moves, frames rewritten).
fn greedy_compact(sched: &mut Scheduler) -> (usize, u64) {
    let mut moves = 0usize;
    let mut frames = 0u64;
    for _ in 0..4 {
        let mut moved = false;
        let mut residents = sched.residents();
        residents.sort_by_key(|r| (r.region.origin.y, r.region.origin.x));
        for info in residents {
            let view = sched.manager().fabric_view();
            let others: Vec<Rect> = view
                .occupied()
                .iter()
                .copied()
                .filter(|r| *r != info.region)
                .collect();
            let masked = FabricView::new(view.width(), view.height(), others);
            let Some(candidate) =
                sched
                    .manager()
                    .policy()
                    .place(info.region.width, info.region.height, &masked)
            else {
                continue;
            };
            if (candidate.y, candidate.x) >= (info.region.origin.y, info.region.origin.x) {
                continue;
            }
            if matches!(
                sched.execute(Request::Relocate {
                    job: info.job,
                    to: candidate,
                }),
                Outcome::Relocated { .. }
            ) {
                moves += 1;
                frames += info.region.area() as u64;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    (moves, frames)
}

/// An explicit relocation touches neither the decode counters nor the cache,
/// and the moved region is bit-identical to re-writing the decoded image at
/// the destination (what the pre-PR cache-fetch relocate path produced).
#[test]
fn relocation_is_decode_free_and_bit_identical_to_the_decoded_image() {
    let mut sched = scheduler(12, 8, 0, Box::new(FirstFit), SchedulerConfig::default());
    let Outcome::Loaded { job, origin, .. } = sched.execute(Request::Load {
        task: "crc4".into(),
        priority: 0,
        deadline: None,
    }) else {
        panic!("fixture load failed");
    };
    assert_eq!(origin, Coord::new(0, 0));

    // Reference: the decoded image, independent of the scheduler's cache.
    let vbs = sched.manager().repository().fetch("crc4").unwrap();
    let (decoded, _) = sched.manager().controller().devirtualize(&vbs).unwrap();

    let metrics_before = sched.metrics();
    let cache_before = sched.cache_stats();
    let to = Coord::new(7, 3);
    assert!(matches!(
        sched.execute(Request::Relocate { job, to }),
        Outcome::Relocated { .. }
    ));
    let metrics_after = sched.metrics();
    let cache_after = sched.cache_stats();

    assert_eq!(
        metrics_after.decodes, metrics_before.decodes,
        "relocation must not decode"
    );
    assert_eq!(
        (cache_after.hits, cache_after.misses),
        (cache_before.hits, cache_before.misses),
        "relocation must not touch the decode cache"
    );

    let moved = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(to, 4, 4))
        .unwrap();
    assert_eq!(
        moved.diff_count(&decoded).unwrap(),
        0,
        "the moved region must hold exactly the decoded image"
    );
    let vacated = sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::new(origin, 4, 4))
        .unwrap();
    assert_eq!(vacated.popcount(), 0, "the old region must be blank");
}

/// The batch-planned pass converges to the same layout and the same memory
/// bits as the legacy greedy sweeps, without decoding, without cache
/// fetches, and without rewriting more frames than the sweeps did.
#[test]
fn batch_compaction_matches_the_greedy_sweeps_bit_for_bit() {
    let config = SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let mut batch = scheduler(11, 11, 0, Box::new(BestFit), config);
    let mut greedy = scheduler(11, 11, 0, Box::new(BestFit), config);
    let batch_jobs = fragment(&mut batch);
    let greedy_jobs = fragment(&mut greedy);
    assert_eq!(batch_jobs, greedy_jobs, "identical fixtures");
    assert!(
        batch_jobs.len() >= 2,
        "the fixture must keep at least two residents"
    );

    let metrics_before = batch.metrics();
    let cache_before = batch.cache_stats();
    let moves = batch.compact();
    let metrics_after = batch.metrics();
    let cache_after = batch.cache_stats();
    let batch_frames =
        metrics_after.compaction_frames_moved - metrics_before.compaction_frames_moved;

    assert!(moves > 0, "the fragmented fixture must compact");
    assert_eq!(
        metrics_after.decodes, metrics_before.decodes,
        "compaction must not decode"
    );
    assert_eq!(
        (cache_after.hits, cache_after.misses),
        (cache_before.hits, cache_before.misses),
        "compaction must not touch the decode cache"
    );
    assert_eq!(
        metrics_after.relocations - metrics_before.relocations,
        moves as u64
    );
    assert!(batch_frames > 0, "moved frames are accounted");

    let (greedy_moves, greedy_frames) = greedy_compact(&mut greedy);
    assert!(greedy_moves > 0);
    assert!(
        batch_frames <= greedy_frames,
        "the batch plan may not rewrite more frames than the sweeps \
         (batch {batch_frames}, greedy {greedy_frames})"
    );

    // Same final layout, same final bits.
    let batch_regions: Vec<(u64, Rect)> = {
        let mut r: Vec<_> = batch
            .residents()
            .iter()
            .map(|i| (i.job, i.region))
            .collect();
        r.sort_by_key(|&(job, _)| job);
        r
    };
    let greedy_regions: Vec<(u64, Rect)> = {
        let mut r: Vec<_> = greedy
            .residents()
            .iter()
            .map(|i| (i.job, i.region))
            .collect();
        r.sort_by_key(|&(job, _)| job);
        r
    };
    assert_eq!(
        batch_regions, greedy_regions,
        "batch planning must converge to the greedy layout"
    );
    assert_eq!(
        full_memory_image(&batch)
            .diff_count(&full_memory_image(&greedy))
            .unwrap(),
        0,
        "final configuration memories must be bit-identical"
    );
    assert_fabric_invariants(&batch);
    assert_fabric_invariants(&greedy);
}

/// A frame budget bounds every individual pass (the pause) without changing
/// where compaction ends up: repeated budgeted passes converge to the same
/// layout and the same memory bits as one unbounded pass, and the truncated
/// passes are counted.
#[test]
fn budgeted_passes_converge_to_the_unbounded_layout() {
    let base = SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let budget = 20u64; // below one 5x5 task, well below a full plan
    let bounded_cfg = SchedulerConfig {
        compaction_frame_budget: budget,
        ..base
    };
    let mut unbounded = scheduler(11, 11, 0, Box::new(BestFit), base);
    let mut bounded = scheduler(11, 11, 0, Box::new(BestFit), bounded_cfg);
    assert_eq!(fragment(&mut unbounded), fragment(&mut bounded));

    let unbounded_moves = unbounded.compact();
    assert!(unbounded_moves > 1, "fixture must need several moves");
    let unbounded_frames = unbounded.metrics().compaction_frames_moved;

    // Drive the bounded scheduler to its fixpoint, checking the per-pass
    // bound on the way: a pass may only exceed the budget through its
    // guaranteed first move.
    let mut total_moves = 0usize;
    for pass in 0..50 {
        let before = bounded.metrics();
        let moves = bounded.compact();
        let pass_frames =
            bounded.metrics().compaction_frames_moved - before.compaction_frames_moved;
        assert!(
            pass_frames <= budget || moves == 1,
            "pass {pass} rewrote {pass_frames} frames in {moves} moves \
             against a budget of {budget}"
        );
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    let bounded_metrics = bounded.metrics();
    assert!(
        bounded_metrics.compaction_truncated >= 1,
        "a {budget}-frame budget must truncate at least one pass: {bounded_metrics:?}"
    );
    assert_eq!(
        bounded_metrics.compaction_frames_moved, unbounded_frames,
        "budgeting must split the rewrites, not add any"
    );
    assert!(total_moves >= unbounded_moves);

    // Same fixpoint: layout and memory bits match the unbounded pass.
    let layout = |sched: &Scheduler| {
        let mut r: Vec<(u64, Rect)> = sched
            .residents()
            .iter()
            .map(|i| (i.job, i.region))
            .collect();
        r.sort_by_key(|&(job, _)| job);
        r
    };
    assert_eq!(layout(&bounded), layout(&unbounded));
    assert_eq!(
        full_memory_image(&bounded)
            .diff_count(&full_memory_image(&unbounded))
            .unwrap(),
        0
    );
    assert_fabric_invariants(&bounded);
    assert_fabric_invariants(&unbounded);
}

/// A truncated pass re-arms itself: after one explicit `compact()` call is
/// cut short by the frame budget, every idle tick (the clock advances with
/// no pending work) resumes exactly one more budgeted pass, until the
/// schedule converges to the unbounded fixpoint with no further explicit
/// calls. Once converged, idle ticks relocate nothing.
#[test]
fn idle_ticks_resume_truncated_compaction_to_the_fixpoint() {
    let base = SchedulerConfig {
        eviction_limit: 0,
        compaction: false,
        ..SchedulerConfig::default()
    };
    let bounded_cfg = SchedulerConfig {
        compaction_frame_budget: 20,
        ..base
    };
    let mut unbounded = scheduler(11, 11, 0, Box::new(BestFit), base);
    let mut bounded = scheduler(11, 11, 0, Box::new(BestFit), bounded_cfg);
    assert_eq!(fragment(&mut unbounded), fragment(&mut bounded));

    assert!(unbounded.compact() > 1, "fixture must need several moves");
    let unbounded_frames = unbounded.metrics().compaction_frames_moved;

    // One explicit pass, cut short by the budget; everything after rides
    // on idle ticks alone.
    assert!(bounded.compact() > 0);
    assert!(
        bounded.metrics().compaction_truncated >= 1,
        "the 20-frame budget must truncate the first pass"
    );

    let mut resumed = 0usize;
    for t in 0..50u64 {
        let passes_before = bounded.metrics().compaction_passes;
        bounded.advance_to(1_000 + t);
        if bounded.metrics().compaction_passes == passes_before {
            break; // the deferral cleared: nothing left to resume
        }
        resumed += 1;
    }
    assert!(resumed >= 1, "idle ticks must resume the truncated pass");
    assert_eq!(
        bounded.metrics().compaction_frames_moved,
        unbounded_frames,
        "idle-tick resumption must split the rewrites, not add any"
    );

    // Same fixpoint as the single unbounded pass: layout and memory bits.
    let layout = |sched: &Scheduler| {
        let mut r: Vec<(u64, Rect)> = sched
            .residents()
            .iter()
            .map(|i| (i.job, i.region))
            .collect();
        r.sort_by_key(|&(job, _)| job);
        r
    };
    assert_eq!(layout(&bounded), layout(&unbounded));
    assert_eq!(
        full_memory_image(&bounded)
            .diff_count(&full_memory_image(&unbounded))
            .unwrap(),
        0
    );

    // At the fixpoint further idle ticks are inert.
    let relocations = bounded.metrics().relocations;
    bounded.advance_to(10_000);
    assert_eq!(
        bounded.metrics().relocations,
        relocations,
        "a converged scheduler must not relocate on idle ticks"
    );
    assert_fabric_invariants(&bounded);
    assert_fabric_invariants(&unbounded);
}

/// Compaction triggered from the load path (placement failure) stays
/// decode-free too, and every resident's frames survive the moves intact.
#[test]
fn load_triggered_compaction_preserves_every_resident_image() {
    let config = SchedulerConfig {
        eviction_limit: 0,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let mut sched = scheduler(11, 11, 0, Box::new(BestFit), config);
    let survivors = fragment(&mut sched);

    // Reference images of every survivor, via an independent decode.
    let mut references = Vec::new();
    for info in sched.residents() {
        let vbs = sched.manager().repository().fetch(&info.name).unwrap();
        let (decoded, _) = sched.manager().controller().devirtualize(&vbs).unwrap();
        references.push((info.job, decoded));
    }

    let decodes_before = sched.metrics().decodes;
    // aes5 (5x5) cannot fit the fragmented holes as-is; compaction must
    // make room without decoding anything but the new arrival.
    let outcome = sched.execute(Request::Load {
        task: "aes5".into(),
        priority: 1,
        deadline: None,
    });
    assert!(
        matches!(outcome, Outcome::Loaded { .. }),
        "compaction must make room for aes5: {outcome:?}"
    );
    assert!(
        sched.metrics().compaction_passes > 0,
        "the load must have triggered a compaction pass"
    );
    assert!(
        sched.metrics().decodes - decodes_before <= 1,
        "compaction itself must not decode — at most the arrival may \
         (got {} decodes)",
        sched.metrics().decodes - decodes_before
    );

    for (job, reference) in references {
        let info = sched
            .residents()
            .into_iter()
            .find(|i| i.job == job)
            .unwrap_or_else(|| panic!("job {job} must survive compaction"));
        let image = sched
            .manager()
            .controller()
            .memory()
            .read_region(info.region)
            .unwrap();
        assert_eq!(
            image.diff_count(&reference).unwrap(),
            0,
            "job {job} moved with its bits intact"
        );
    }
    let _ = survivors;
    assert_fabric_invariants(&sched);
}
