//! Golden replay tests: two checked-in traces (`tests/traces/` at the
//! workspace root) replayed against a two-fabric fleet under every shard
//! policy, with exact counter expectations stored next to the traces
//! (`tests/traces/*.golden`). A change to shard routing, migration,
//! eviction or compaction behavior shows up here as an explicit diff of the
//! expected numbers.
//!
//! To update the expectations deliberately (a counter-changing PR), run the
//! regeneration helper and commit the rewritten `.golden` files:
//!
//! ```text
//! cargo test -p vbs-sched --test golden_replay -- --ignored regen
//! ```
//!
//! See `crates/sched/README.md` for the full workflow.

mod common;

use common::fleet;
use vbs_runtime::FirstFit;
use vbs_sched::{
    replay_multi, shard_policy_by_name, MultiConfig, SchedulerConfig, Trace, SHARD_POLICY_NAMES,
};

/// Exact counters of one (trace, policy) replay.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    accepted: u64,
    rejected: u64,
    migrations: u64,
    evictions: u64,
    relocations: u64,
    /// Loads accepted per shard, in fabric order.
    per_fabric_accepted: [u64; 2],
}

fn traces_dir() -> String {
    format!("{}/../../tests/traces", env!("CARGO_MANIFEST_DIR"))
}

fn load_trace(name: &str) -> Trace {
    let path = format!("{}/{name}", traces_dir());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Trace::from_text(&text).expect("trace parses")
}

fn replay_golden(trace: &Trace, policy: &str) -> Golden {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let mut multi = fleet(
        2,
        8,
        8,
        shard_policy_by_name(policy).unwrap(),
        || Box::new(FirstFit),
        config,
        MultiConfig::default(),
    );
    let report = replay_multi(&mut multi, trace);
    Golden {
        accepted: report.multi.loads_accepted,
        rejected: report.multi.loads_rejected,
        migrations: report.multi.migrations,
        evictions: report.fabrics.iter().map(|f| f.sched.evictions).sum(),
        relocations: report.fabrics.iter().map(|f| f.sched.relocations).sum(),
        per_fabric_accepted: [
            report.fabrics[0].sched.loads_accepted,
            report.fabrics[1].sched.loads_accepted,
        ],
    }
}

/// One golden file line: `policy accepted rejected migrations evictions
/// relocations fabric0_accepted fabric1_accepted`.
fn golden_line(policy: &str, golden: &Golden) -> String {
    format!(
        "{policy} {} {} {} {} {} {} {}",
        golden.accepted,
        golden.rejected,
        golden.migrations,
        golden.evictions,
        golden.relocations,
        golden.per_fabric_accepted[0],
        golden.per_fabric_accepted[1],
    )
}

fn parse_golden(text: &str, path: &str) -> Vec<(String, Golden)> {
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let policy = fields.next().expect("policy name").to_string();
            let mut next = || -> u64 {
                fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .unwrap_or_else(|| panic!("malformed golden line in {path}: {line}"))
            };
            let golden = Golden {
                accepted: next(),
                rejected: next(),
                migrations: next(),
                evictions: next(),
                relocations: next(),
                per_fabric_accepted: [next(), next()],
            };
            (policy, golden)
        })
        .collect()
}

fn check_trace_against_golden(trace_name: &str) {
    let trace = load_trace(trace_name);
    let golden_path = format!(
        "{}/{}.golden",
        traces_dir(),
        trace_name.trim_end_matches(".trace")
    );
    let text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("read {golden_path}: {e} — regenerate with the regen_golden_counters helper")
    });
    let expectations = parse_golden(&text, &golden_path);
    for &policy in SHARD_POLICY_NAMES {
        assert_eq!(
            expectations.iter().filter(|(p, _)| p == policy).count(),
            1,
            "{golden_path} must cover shard policy {policy} exactly once"
        );
    }
    assert_eq!(
        expectations.len(),
        SHARD_POLICY_NAMES.len(),
        "{golden_path} must not carry unknown policies"
    );
    for (policy, expected) in &expectations {
        let actual = replay_golden(&trace, policy);
        assert_eq!(&actual, expected, "{trace_name} / {policy}");
    }
}

#[test]
fn steady_trace_counters_are_golden() {
    check_trace_against_golden("steady.trace");
}

#[test]
fn burst_trace_counters_are_golden() {
    check_trace_against_golden("burst.trace");
}

/// Regeneration helper (deliberately `#[ignore]`d): deterministically
/// rewrites the `.golden` counter files from a fresh replay of every trace
/// under every shard policy. Run it when a PR intentionally changes
/// counter-visible behavior, review the diff, and commit the files:
///
/// ```text
/// cargo test -p vbs-sched --test golden_replay -- --ignored regen
/// ```
#[test]
#[ignore = "rewrites tests/traces/*.golden; run explicitly after intended counter changes"]
fn regen_golden_counters() {
    for trace_name in ["steady.trace", "burst.trace"] {
        let trace = load_trace(trace_name);
        let mut lines = vec![
            format!(
                "# Golden counters for {trace_name}: policy accepted rejected \
                 migrations evictions relocations fabric0_accepted fabric1_accepted."
            ),
            "# Regenerate: cargo test -p vbs-sched --test golden_replay -- --ignored regen"
                .to_string(),
        ];
        for &policy in SHARD_POLICY_NAMES {
            let golden = replay_golden(&trace, policy);
            lines.push(golden_line(policy, &golden));
        }
        let path = format!(
            "{}/{}.golden",
            traces_dir(),
            trace_name.trim_end_matches(".trace")
        );
        std::fs::write(&path, lines.join("\n") + "\n")
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("regenerated {path}");
    }
}
