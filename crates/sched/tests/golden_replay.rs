//! Golden replay tests: two checked-in traces (`tests/traces/` at the
//! workspace root) replayed against a two-fabric fleet under every shard
//! policy, with exact counter expectations. A change to shard routing,
//! migration or eviction behavior shows up here as an explicit diff of the
//! expected numbers — update them deliberately, with the new values in the
//! commit message.

mod common;

use common::fleet;
use vbs_runtime::FirstFit;
use vbs_sched::{replay_multi, shard_policy_by_name, MultiConfig, SchedulerConfig, Trace};

/// Exact counters of one (trace, policy) replay.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    accepted: u64,
    rejected: u64,
    migrations: u64,
    evictions: u64,
    relocations: u64,
    /// Loads accepted per shard, in fabric order.
    per_fabric_accepted: [u64; 2],
}

fn load_trace(name: &str) -> Trace {
    let path = format!("{}/../../tests/traces/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Trace::from_text(&text).expect("trace parses")
}

fn replay_golden(trace: &Trace, policy: &str) -> Golden {
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    let mut multi = fleet(
        2,
        8,
        8,
        shard_policy_by_name(policy).unwrap(),
        || Box::new(FirstFit),
        config,
        MultiConfig::default(),
    );
    let report = replay_multi(&mut multi, trace);
    Golden {
        accepted: report.multi.loads_accepted,
        rejected: report.multi.loads_rejected,
        migrations: report.multi.migrations,
        evictions: report.fabrics.iter().map(|f| f.sched.evictions).sum(),
        relocations: report.fabrics.iter().map(|f| f.sched.relocations).sum(),
        per_fabric_accepted: [
            report.fabrics[0].sched.loads_accepted,
            report.fabrics[1].sched.loads_accepted,
        ],
    }
}

#[test]
fn steady_trace_counters_are_golden() {
    let trace = load_trace("steady.trace");
    for (policy, expected) in [
        (
            "round-robin",
            Golden {
                accepted: 7,
                rejected: 0,
                migrations: 0,
                evictions: 3,
                relocations: 0,
                per_fabric_accepted: [4, 3],
            },
        ),
        (
            "least-loaded",
            Golden {
                accepted: 7,
                rejected: 0,
                migrations: 1,
                evictions: 4,
                relocations: 0,
                per_fabric_accepted: [4, 3],
            },
        ),
        (
            "cache-affinity",
            Golden {
                accepted: 7,
                rejected: 0,
                migrations: 0,
                evictions: 4,
                relocations: 0,
                per_fabric_accepted: [5, 2],
            },
        ),
    ] {
        let actual = replay_golden(&trace, policy);
        assert_eq!(actual, expected, "steady.trace / {policy}");
    }
}

#[test]
fn burst_trace_counters_are_golden() {
    let trace = load_trace("burst.trace");
    for (policy, expected) in [
        (
            "round-robin",
            Golden {
                accepted: 9,
                rejected: 1,
                migrations: 1,
                evictions: 6,
                relocations: 2,
                per_fabric_accepted: [5, 4],
            },
        ),
        (
            "least-loaded",
            Golden {
                accepted: 9,
                rejected: 1,
                migrations: 1,
                evictions: 5,
                relocations: 2,
                per_fabric_accepted: [4, 5],
            },
        ),
        (
            "cache-affinity",
            Golden {
                accepted: 9,
                rejected: 1,
                migrations: 1,
                evictions: 6,
                relocations: 2,
                per_fabric_accepted: [5, 4],
            },
        ),
    ] {
        let actual = replay_golden(&trace, policy);
        assert_eq!(actual, expected, "burst.trace / {policy}");
    }
}
