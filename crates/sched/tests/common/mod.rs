//! Shared fixture of the scheduler integration tests: a repository of
//! CAD-flow-built tasks (expensive, so built once per test binary) and
//! helpers assembling single- and multi-fabric schedulers over it.

// Each test binary compiles its own copy and uses a different subset.
#![allow(dead_code)]

use std::sync::OnceLock;
use vbs_arch::{ArchSpec, Coord, Device};
use vbs_flow::CadFlow;
use vbs_netlist::generate::SyntheticSpec;
use vbs_runtime::{
    FabricId, PlacementPolicy, ReconfigurationController, TaskManager, VbsRepository,
};
use vbs_sched::{
    LruEviction, MultiConfig, MultiFabricScheduler, Scheduler, SchedulerConfig, ShardPolicy,
};

/// Task set: (name, LUTs, grid edge, seed). Grid edge = footprint in macros.
pub const TASKS: &[(&str, usize, u16, u64)] = &[
    ("fir4", 9, 4, 11),
    ("crc4", 8, 4, 12),
    ("aes5", 16, 5, 13),
    ("fft6", 24, 6, 14),
];

pub const CHANNEL_WIDTH: u16 = 9;
pub const LUT_SIZE: u8 = 6;

/// The shared repository, built through the full CAD flow once.
pub fn repository() -> &'static VbsRepository {
    static REPO: OnceLock<VbsRepository> = OnceLock::new();
    REPO.get_or_init(|| {
        let mut repo = VbsRepository::new();
        for &(name, luts, edge, seed) in TASKS {
            let netlist = SyntheticSpec::new(name, luts, 3, 3)
                .with_seed(seed)
                .build()
                .expect("netlist generation");
            let result = CadFlow::new(CHANNEL_WIDTH, LUT_SIZE)
                .expect("flow")
                .with_grid(edge, edge)
                .with_seed(seed)
                .fast()
                .run(&netlist)
                .expect("cad flow");
            repo.store(name, &result.vbs(1).expect("encode"));
        }
        repo
    })
}

/// A device of the fixture architecture.
pub fn device(width: u16, height: u16) -> Device {
    Device::new(
        ArchSpec::new(CHANNEL_WIDTH, LUT_SIZE).unwrap(),
        width,
        height,
    )
    .unwrap()
}

/// One single-fabric scheduler over the shared repository.
pub fn scheduler(
    width: u16,
    height: u16,
    fabric: u32,
    policy: Box<dyn PlacementPolicy>,
    config: SchedulerConfig,
) -> Scheduler {
    let manager = TaskManager::new(
        ReconfigurationController::new(device(width, height)),
        repository().clone(),
    )
    .with_policy(policy)
    .with_fabric_id(FabricId(fabric));
    Scheduler::with_config(manager, Box::new(LruEviction), config)
}

/// A K-fabric fleet of identical `width` × `height` devices.
pub fn fleet(
    k: usize,
    width: u16,
    height: u16,
    shard: Box<dyn ShardPolicy>,
    make_placement: fn() -> Box<dyn PlacementPolicy>,
    config: SchedulerConfig,
    multi_config: MultiConfig,
) -> MultiFabricScheduler {
    let fabrics = (0..k)
        .map(|i| scheduler(width, height, i as u32, make_placement(), config))
        .collect();
    MultiFabricScheduler::new(fabrics, shard, multi_config)
}

/// Asserts one fabric's physical invariants: resident regions pairwise
/// disjoint and in bounds, occupied area within capacity, and nothing
/// configured in the config memory outside a resident region.
pub fn assert_fabric_invariants(sched: &Scheduler) {
    let manager = sched.manager();
    let device = manager.controller().device();
    let tasks = manager.loaded_tasks();
    let mut occupied_area = 0u32;
    for (i, a) in tasks.iter().enumerate() {
        assert!(
            a.region.origin.x as u32 + a.region.width as u32 <= device.width() as u32
                && a.region.origin.y as u32 + a.region.height as u32 <= device.height() as u32,
            "region {} out of bounds",
            a.region
        );
        occupied_area += a.region.area();
        for b in tasks.iter().skip(i + 1) {
            assert!(
                !a.region.intersects(&b.region),
                "regions {} and {} overlap",
                a.region,
                b.region
            );
        }
    }
    assert!(
        occupied_area <= device.width() as u32 * device.height() as u32,
        "resident area {} exceeds fabric capacity",
        occupied_area
    );
    for y in 0..device.height() {
        for x in 0..device.width() {
            let at = Coord::new(x, y);
            if !tasks.iter().any(|t| t.region.contains(at)) {
                assert!(
                    manager.controller().memory().frame(at).is_empty(),
                    "macro {at} configured outside any resident region"
                );
            }
        }
    }
}
