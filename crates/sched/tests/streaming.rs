//! Differential suite for the streaming decode→write load path: the
//! streaming scheduler (`SchedulerConfig::streaming` /
//! `MultiConfig::streaming`, built on `TaskManager::load_streaming_at` and
//! the `FrameSink` plumbing) must be **bit-identical** to the buffered
//! `load_decoded` path — same outcomes, same counters, same cache behavior
//! and the same final configuration memory — over fixed traces, proptest-
//! randomized traces at K ∈ {1, 4}, and direct request sequences.

mod common;

use common::{assert_fabric_invariants, fleet, scheduler, TASKS};
use proptest::prelude::*;
use vbs_arch::Rect;
use vbs_runtime::{BestFit, FirstFit};
use vbs_sched::{
    replay, replay_multi, CacheStats, LeastLoaded, MultiConfig, Outcome, Request, SchedMetrics,
    Scheduler, SchedulerConfig, Trace, WorkloadSpec,
};

fn trace(loads: usize, seed: u64) -> Trace {
    Trace::synthetic(&WorkloadSpec {
        tasks: TASKS.iter().map(|t| t.0.to_string()).collect(),
        loads,
        mean_interarrival: 3,
        mean_duration: 24,
        priority_levels: 4,
        deadline_slack: Some(40),
        seed,
    })
}

/// Wall-clock decode and compaction-pause times are the only
/// nondeterministic counters; zero them so the rest of the metrics compare
/// bit-for-bit.
fn normalized(mut metrics: SchedMetrics) -> SchedMetrics {
    metrics.decode_micros = 0;
    metrics.compaction_micros = 0;
    metrics
}

fn full_memory_image(sched: &Scheduler) -> vbs_bitstream::TaskBitstream {
    let device = sched.manager().controller().device();
    sched
        .manager()
        .controller()
        .memory()
        .read_region(Rect::at_origin(device.width(), device.height()))
        .expect("full-device read")
}

fn assert_schedulers_identical(buffered: &Scheduler, streaming: &Scheduler, context: &str) {
    assert_eq!(
        normalized(buffered.metrics()),
        normalized(streaming.metrics()),
        "{context}: scheduler counters diverge"
    );
    let nb: CacheStats = buffered.cache_stats();
    let ns: CacheStats = streaming.cache_stats();
    assert_eq!(nb, ns, "{context}: cache counters diverge");
    assert_eq!(
        full_memory_image(buffered)
            .diff_count(&full_memory_image(streaming))
            .expect("same devices"),
        0,
        "{context}: final configuration memories differ"
    );
}

/// Single fabric, fixed overload trace: streaming replays bit-identically
/// to buffered, including rejected loads, evictions and compaction moves.
#[test]
fn streaming_scheduler_is_bit_identical_on_a_fixed_trace() {
    let t = trace(120, 2015);
    for compaction in [false, true] {
        let config = SchedulerConfig {
            eviction_limit: 1,
            compaction,
            ..SchedulerConfig::default()
        };
        let mut buffered = scheduler(11, 11, 0, Box::new(BestFit), config);
        let buffered_report = replay(&mut buffered, &t);

        let mut streaming = scheduler(
            11,
            11,
            0,
            Box::new(BestFit),
            SchedulerConfig {
                streaming: true,
                ..config
            },
        );
        let streaming_report = replay(&mut streaming, &t);

        assert_eq!(buffered_report.events, streaming_report.events);
        assert_eq!(
            normalized(buffered_report.sched),
            normalized(streaming_report.sched),
            "compaction={compaction}"
        );
        assert_eq!(buffered_report.cache, streaming_report.cache);
        assert_eq!(
            buffered_report.final_fragmentation,
            streaming_report.final_fragmentation
        );
        assert_schedulers_identical(&buffered, &streaming, &format!("compaction={compaction}"));
    }
}

/// Streaming mode fleets (no staged pipeline, per-writer streaming loads)
/// replay bit-identically to the staged-pipeline fleets at K ∈ {1, 4}.
#[test]
fn streaming_fleet_matches_pipelined_fleet() {
    let t = trace(100, 77);
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: true,
        ..SchedulerConfig::default()
    };
    for k in [1usize, 4] {
        let mut pipelined = fleet(
            k,
            11,
            11,
            Box::new(LeastLoaded),
            || Box::new(BestFit),
            config,
            MultiConfig::default(),
        );
        let pipelined_report = replay_multi(&mut pipelined, &t);

        let mut streaming = fleet(
            k,
            11,
            11,
            Box::new(LeastLoaded),
            || Box::new(BestFit),
            config,
            MultiConfig {
                streaming: true,
                ..MultiConfig::default()
            },
        );
        let streaming_report = replay_multi(&mut streaming, &t);

        assert_eq!(pipelined_report.events, streaming_report.events, "K={k}");
        assert_eq!(
            pipelined_report.multi.loads_accepted, streaming_report.multi.loads_accepted,
            "K={k}"
        );
        assert_eq!(
            pipelined_report.multi.loads_rejected, streaming_report.multi.loads_rejected,
            "K={k}"
        );
        // Streaming decodes on demand: nothing goes through the staging
        // pipeline.
        assert_eq!(streaming.metrics().staged_decodes, 0, "K={k}");
        for f in 0..k {
            assert_eq!(
                normalized(pipelined_report.fabrics[f].sched),
                normalized(streaming_report.fabrics[f].sched),
                "K={k} fabric {f}: shard counters diverge"
            );
            assert_eq!(
                pipelined_report.fabrics[f].cache, streaming_report.fabrics[f].cache,
                "K={k} fabric {f}"
            );
            assert_eq!(
                full_memory_image(pipelined.fabric(f))
                    .diff_count(&full_memory_image(streaming.fabric(f)))
                    .expect("same devices"),
                0,
                "K={k} fabric {f}: final configuration memories differ"
            );
            assert_fabric_invariants(streaming.fabric(f));
        }
    }
}

/// Cache evictions feed the fleet-wide buffer pool, and subsequent decodes
/// draw from it instead of allocating.
#[test]
fn cache_evictions_recycle_into_the_pool() {
    // A 1-entry cache forces an eviction on every distinct decode.
    let config = SchedulerConfig {
        eviction_limit: 1,
        compaction: false,
        cache_capacity: 1,
        ..SchedulerConfig::default()
    };
    let mut sched = scheduler(12, 12, 0, Box::new(FirstFit), config);
    let mut jobs = Vec::new();
    for (round, task) in ["fir4", "crc4", "fir4", "crc4"].iter().enumerate() {
        sched.advance_to(round as u64 * 10);
        let job = sched.submit(Request::Load {
            task: (*task).into(),
            priority: 1,
            deadline: None,
        });
        for (id, outcome) in sched.process_pending_tagged() {
            if id == job {
                assert!(matches!(outcome, Outcome::Loaded { .. }), "{outcome:?}");
            }
        }
        jobs.push(job);
        // Unload immediately so the decoded image's only owner is the cache
        // and eviction can reclaim the buffer.
        sched.submit(Request::Unload { job });
        sched.process_pending();
    }
    let stats = sched.bitstream_pool().stats();
    assert!(
        stats.recycled >= 2,
        "each cache eviction recycles a buffer: {stats:?}"
    );
    assert!(
        stats.reused >= 2,
        "later decodes reuse recycled buffers: {stats:?}"
    );
}

proptest! {
    /// Random traces at K ∈ {1, 4}: the streaming fleet replays every trace
    /// bit-identically to the staged-pipeline fleet (counters, cache and
    /// final configuration memory, per fabric).
    #[test]
    fn streaming_matches_buffered_on_random_traces(
        seed in 0u64..1_000_000,
        loads in 8usize..48,
        k_idx in 0usize..2,
    ) {
        let k = [1usize, 4][k_idx];
        let t = trace(loads, seed);
        let config = SchedulerConfig {
            eviction_limit: 1,
            compaction: true,
            ..SchedulerConfig::default()
        };
        let mut pipelined = fleet(
            k, 9, 9,
            Box::new(LeastLoaded),
            || Box::new(BestFit),
            config,
            MultiConfig::default(),
        );
        let pipelined_report = replay_multi(&mut pipelined, &t);
        let mut streaming = fleet(
            k, 9, 9,
            Box::new(LeastLoaded),
            || Box::new(BestFit),
            config,
            MultiConfig { streaming: true, ..MultiConfig::default() },
        );
        let streaming_report = replay_multi(&mut streaming, &t);

        prop_assert_eq!(pipelined_report.events, streaming_report.events);
        prop_assert_eq!(
            pipelined_report.multi.loads_accepted,
            streaming_report.multi.loads_accepted
        );
        for f in 0..k {
            prop_assert_eq!(
                normalized(pipelined_report.fabrics[f].sched),
                normalized(streaming_report.fabrics[f].sched),
                "K={} fabric {}", k, f
            );
            prop_assert_eq!(
                pipelined_report.fabrics[f].cache,
                streaming_report.fabrics[f].cache,
                "K={} fabric {}", k, f
            );
            prop_assert_eq!(
                full_memory_image(pipelined.fabric(f))
                    .diff_count(&full_memory_image(streaming.fabric(f)))
                    .expect("same devices"),
                0,
                "K={} fabric {}: memories differ", k, f
            );
        }
    }
}
