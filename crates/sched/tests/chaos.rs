//! Chaos replay of the MCNC corpus: the steady trace runs on the 2-fabric
//! fleet under the seeded fault schedules (`McncCorpus::CHAOS_PLANS` —
//! scattered transient/persistent/corrupting write faults on both fabrics
//! plus a mid-trace outage of fabric 0), with readback verification on.
//!
//! Pinned here: two identical seeded runs produce bit-identical counters
//! (the determinism gate), the counters match the checked-in
//! `chaos.golden`, and the outage actually exercises the self-healing
//! machinery — quarantine, resident re-placement on the survivor, and
//! recovery. Regenerate the golden deliberately with:
//!
//! ```text
//! cargo run --release -p vbs-bench --bin chaos
//! ```

use vbs_sched::{replay_multi, CacheBudget, McncCorpus, SchedulerConfig};

fn corpus() -> McncCorpus {
    McncCorpus::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc"
    ))
    .expect("checked-in corpus loads")
}

#[test]
fn chaos_replay_is_deterministic_and_matches_golden() {
    let corpus = corpus();
    let first = corpus.chaos_lines();
    let second = corpus.chaos_lines();
    assert_eq!(
        first, second,
        "two seeded chaos replays must produce bit-identical counters"
    );

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc/chaos.golden"
    );
    let text = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} — rebuild with the chaos bin"));
    let expected: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        first, expected,
        "chaos counters drifted from chaos.golden — if intended, regenerate \
         with `cargo run --release -p vbs-bench --bin chaos`"
    );
}

/// The chaos goldens hold under a finite cache budget too: warm re-decodes
/// fetch and write through the same faultable path, so every pinned fault
/// counter (write faults, retries, CRC mismatches, scrubs) and the whole
/// self-healing sequence replay bit-identically while the budget squeezes
/// the hot tier.
#[test]
fn chaos_golden_holds_under_finite_cache_budget() {
    let corpus = corpus();
    let config = SchedulerConfig {
        cache_budget: CacheBudget {
            hot_bytes: 24 * 1024,
            warm_bytes: 64 * 1024,
        },
        ..McncCorpus::replay_config()
    };
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/mcnc/chaos.golden"
    );
    let text = std::fs::read_to_string(golden_path).expect("golden present");
    let expected: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        corpus.chaos_lines_with(config),
        expected,
        "a finite cache budget changed golden-pinned chaos counters"
    );
}

#[test]
fn chaos_outage_quarantines_replaces_and_recovers() {
    let corpus = corpus();
    let mut fleet = corpus.chaos_fleet_scheduler();
    let trace = corpus.trace("steady").expect("steady trace");
    let report = replay_multi(&mut fleet, trace);

    // The fabric-0 outage window opened and closed during the trace.
    assert_eq!(report.multi.quarantines, 1, "{:?}", report.multi);
    assert_eq!(report.multi.recoveries, 1, "{:?}", report.multi);
    assert!(
        !fleet.is_quarantined(0),
        "fabric 0 must have rejoined the fleet"
    );
    // The dead fabric's residents were re-queued and landed on the
    // survivor (degraded-mode acceptance, not fresh fleet loads).
    assert!(report.multi.residents_requeued >= 1, "{:?}", report.multi);
    assert_eq!(
        report.multi.degraded_accepts, report.multi.residents_requeued,
        "every evacuated resident must land on the survivor"
    );
    // The injected write faults hit both fabrics and every corruption was
    // caught by readback verification and scrubbed.
    let totals = report.shard_totals();
    assert!(totals.write_faults >= 3, "{totals:?}");
    assert!(totals.write_retries >= 2, "{totals:?}");
    assert_eq!(totals.crc_mismatches, 2, "one corrupt write per fabric");
    assert_eq!(totals.verify_scrubs, 2, "every mismatch is scrubbed");
    // Degraded-mode accounting: fleet acceptance only counts original
    // submissions.
    assert_eq!(
        report.multi.loads_accepted + report.multi.loads_rejected,
        report.multi.loads_submitted,
        "{:?}",
        report.multi
    );
    // After recovery both fabrics verify clean end to end.
    for i in 0..fleet.fabric_count() {
        let controller = fleet.fabric(i).manager().controller();
        let device = controller.device();
        controller
            .verify_region(vbs_arch::Rect::at_origin(device.width(), device.height()))
            .unwrap_or_else(|e| panic!("fabric {i} fails post-chaos verify: {e}"));
    }
}
