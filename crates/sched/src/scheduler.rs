//! The on-line reconfiguration scheduler.
//!
//! [`Scheduler`] layers a request queue, eviction, defragmentation and the
//! decode cache on top of the runtime [`TaskManager`]. It is the component
//! that turns the paper's fast-relocation primitive into a multi-tenant
//! resource manager: requests arrive with priorities and deadlines, victims
//! are evicted when the fabric is full, and resident tasks are compacted
//! toward the bottom-left corner to fight external fragmentation — every
//! compaction move is a run-time relocation of an unchanged Virtual
//! Bit-Stream.

use crate::cache::{CacheBudget, CacheLookup, CacheStats, DecodeCache};
use crate::evict::{EvictionPolicy, LruEviction, ResidentInfo};
use crate::pool::BitstreamPool;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use vbs_arch::{ArchSpec, Coord, Rect};
use vbs_bitstream::{BitstreamError, TaskBitstream};
use vbs_core::Vbs;
use vbs_runtime::{RuntimeError, TaskHandle, TaskManager};
use vbs_telemetry::{CounterBank, EventKind, Stage, Telemetry};

/// [`CounterBank`] slot assignments backing the [`SchedMetrics`] view.
/// Counters are bumped exactly where (and in the order) the former struct
/// fields were, so golden-trace counter values are bit-identical.
mod slot {
    pub const LOADS_SUBMITTED: usize = 0;
    pub const LOADS_ACCEPTED: usize = 1;
    pub const LOADS_REJECTED: usize = 2;
    pub const DEADLINE_MISSED: usize = 3;
    pub const EVICTIONS: usize = 4;
    pub const RELOCATIONS: usize = 5;
    pub const COMPACTION_PASSES: usize = 6;
    pub const COMPACTION_FRAMES_MOVED: usize = 7;
    pub const COMPACTION_MICROS: usize = 8;
    pub const DECODE_MICROS: usize = 9;
    pub const DECODES: usize = 10;
    pub const FRAGMENTATION_SAMPLES: usize = 11;
    /// f64 slot (see [`vbs_telemetry::CounterBank::float_add`]).
    pub const FRAGMENTATION_SUM: usize = 12;
    /// f64 slot.
    pub const UTILIZATION_SUM: usize = 13;
    pub const WRITE_RETRIES: usize = 14;
    pub const WRITE_FAULTS: usize = 15;
    pub const CRC_MISMATCHES: usize = 16;
    pub const VERIFY_SCRUBS: usize = 17;
    pub const COMPACTION_TRUNCATED: usize = 18;
    pub const REDECODE_MICROS: usize = 19;
}

/// Packs an origin into one event payload word (`x` high, `y` low).
const fn pack_origin(origin: Coord) -> u64 {
    ((origin.x as u64) << 16) | origin.y as u64
}

/// A request submitted to the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Load a task from the repository somewhere on the fabric.
    Load {
        /// Task name in the repository.
        task: String,
        /// Priority (higher wins the queue and resists eviction).
        priority: u8,
        /// Absolute tick after which the load is worthless.
        deadline: Option<u64>,
    },
    /// Unload a previously loaded job.
    Unload {
        /// The job to unload.
        job: u64,
    },
    /// Relocate a resident job to an explicit origin.
    Relocate {
        /// The job to move.
        job: u64,
        /// Destination origin (lower-left corner).
        to: Coord,
    },
}

/// Why a load request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// No task with this name exists in the repository.
    UnknownTask,
    /// No feasible region even after compaction and allowed evictions.
    NoCapacity,
    /// The request was processed after its deadline.
    DeadlineMissed,
    /// Fetch/decode/memory failure bubbled up from the runtime.
    Runtime(String),
}

/// What happened to one processed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The task was configured on the fabric.
    Loaded {
        /// The job id assigned at submission.
        job: u64,
        /// Runtime handle of the instance.
        handle: TaskHandle,
        /// Where it was placed.
        origin: Coord,
        /// Jobs evicted to make room, in eviction order.
        evicted: Vec<u64>,
        /// Whether the decoded stream came from the cache.
        cache_hit: bool,
    },
    /// The load was dropped.
    Rejected {
        /// The job id assigned at submission.
        job: u64,
        /// Why it was dropped.
        reason: RejectReason,
        /// Jobs evicted on behalf of this request before it still failed
        /// (empty for pre-placement rejections). Their fabric regions are
        /// already freed.
        evicted: Vec<u64>,
    },
    /// The job was unloaded.
    Unloaded {
        /// The job id.
        job: u64,
    },
    /// The job was not resident (already unloaded or evicted).
    NotResident {
        /// The job id.
        job: u64,
    },
    /// The job was moved to a new origin.
    Relocated {
        /// The job id.
        job: u64,
        /// The new origin.
        origin: Coord,
    },
}

/// A resident abandoned by [`Scheduler::evacuate`] when its fabric went
/// offline, carrying exactly what a re-placement load needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvacuatedJob {
    /// The job id the resident was loaded under.
    pub job: u64,
    /// Task name in the repository.
    pub task: String,
    /// The priority it was originally loaded with.
    pub priority: u8,
}

/// Tunables of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum evictions attempted on behalf of one load request.
    pub eviction_limit: usize,
    /// Whether to run a defragmentation pass when placement fails.
    pub compaction: bool,
    /// Decoded streams kept in the cache (0 disables caching).
    pub cache_capacity: usize,
    /// Whether loads take the streaming decode→write path when they can:
    /// a load that needs a fresh decode *and* fits the fabric without
    /// eviction or compaction writes configuration frames as each cluster
    /// record expands, instead of buffering the full decoded image first.
    /// Outcomes, counters, cache behavior and the final configuration
    /// memory are bit-identical to the buffered path (the differential
    /// suite pins this down); only the latency profile changes.
    pub streaming: bool,
    /// Maximum retries of a transiently refused configuration write
    /// before the load is re-placed elsewhere (and, failing that,
    /// rejected). The retry budget is the bounded-backoff knob: retries
    /// are immediate in the simulation (the logical clock never advances
    /// mid-request), so bounding their count is what bounds the backoff.
    pub write_retry_limit: u32,
    /// Whether every accepted load is readback-verified against the
    /// per-frame checksum sidecar, with a corrupted frame scrubbed once
    /// (rewritten from the decoded image) before the load counts as
    /// placed. Off by default: fault-free goldens stay bit-identical.
    pub verify: bool,
    /// Maximum configuration frames a single [`Scheduler::compact`] pass
    /// may rewrite (`0` = unbounded). A pass that hits the budget stops
    /// executing its move plan and reports truncation in
    /// [`SchedMetrics::compaction_truncated`]; the next pass re-plans from
    /// the current layout and continues toward the same fixpoint, so a
    /// bounded budget spreads one long defragmentation pause over several
    /// short ones. The first move of a pass is always allowed, so
    /// compaction makes progress even when one task alone exceeds the
    /// budget.
    pub compaction_frame_budget: u64,
    /// Byte budgets of the two decode-cache tiers (hot decoded arenas /
    /// warm compressed bytes). The default — unbounded on both tiers —
    /// reproduces the classic count-capped LRU bit-identically: nothing is
    /// ever demoted and every counter matches. A finite budget caps the
    /// cache's resident bytes: entries over the hot budget fall back to
    /// their compressed VBS bytes and re-decode through the pooled lanes
    /// on their next hit (see [`CacheBudget`]).
    pub cache_budget: CacheBudget,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            eviction_limit: 2,
            compaction: true,
            cache_capacity: 16,
            streaming: false,
            write_retry_limit: 2,
            verify: false,
            compaction_frame_budget: 0,
            cache_budget: CacheBudget::UNBOUNDED,
        }
    }
}

/// Aggregate counters of one scheduler's lifetime — a point-in-time view
/// over the scheduler's telemetry counter bank (see [`Scheduler::metrics`]).
/// All timing fields are `u64` microseconds with saturating accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedMetrics {
    /// Load requests submitted.
    pub loads_submitted: u64,
    /// Load requests that ended configured on the fabric.
    pub loads_accepted: u64,
    /// Load requests dropped (any [`RejectReason`]).
    pub loads_rejected: u64,
    /// Loads dropped specifically for missing their deadline.
    pub deadline_missed: u64,
    /// Resident tasks evicted to make room.
    pub evictions: u64,
    /// Relocations performed (compaction moves + explicit requests).
    pub relocations: u64,
    /// Defragmentation passes that ran.
    pub compaction_passes: u64,
    /// Configuration frames rewritten by compaction moves (the pause-cost
    /// proxy: each moved frame is one word-arena row segment rewrite).
    pub compaction_frames_moved: u64,
    /// Wall-clock time spent inside [`Scheduler::compact`] (planning +
    /// executing moves), in microseconds — the pause-time metric.
    pub compaction_micros: u64,
    /// Total de-virtualization time spent, in microseconds.
    pub decode_micros: u64,
    /// Number of de-virtualizations performed (cache misses).
    pub decodes: u64,
    /// Number of fragmentation samples folded into `fragmentation_sum`.
    pub fragmentation_samples: u64,
    /// Sum of sampled fragmentation values (one per processed request).
    pub fragmentation_sum: f64,
    /// Sum of sampled fabric-utilization values (occupied / total area, one
    /// sample per processed request, sharing `fragmentation_samples`).
    pub utilization_sum: f64,
    /// Transiently refused configuration writes that were retried.
    pub write_retries: u64,
    /// Configuration-write faults observed (transient and persistent).
    pub write_faults: u64,
    /// Frames a readback verify caught disagreeing with their checksum.
    pub crc_mismatches: u64,
    /// Scrub rewrites performed after a verify mismatch.
    pub verify_scrubs: u64,
    /// Compaction passes cut short by
    /// [`SchedulerConfig::compaction_frame_budget`] (the remainder of the
    /// move plan deferred to a later pass).
    pub compaction_truncated: u64,
    /// Cache lookups served by the warm tier: the compressed bytes were
    /// resident and the stream re-decoded through the pooled lanes. A
    /// subset of the decode-cache misses (warm hits still decode).
    pub warm_hits: u64,
    /// Time spent re-decoding warm cache entries, in microseconds (a
    /// subset of `decode_micros`).
    pub redecode_micros: u64,
    /// Hot→warm decode-cache demotions (decoded arena released under byte
    /// pressure, compressed bytes kept).
    pub cache_demotions: u64,
    /// Warm→hot decode-cache promotions (a re-decoded entry earned its
    /// arena back).
    pub cache_promotions: u64,
    /// Bytes currently resident in the decode cache, both tiers
    /// (point-in-time, not cumulative).
    pub cache_resident_bytes: u64,
}

impl SchedMetrics {
    /// Accepted / submitted loads, 1.0 when nothing was submitted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.loads_submitted == 0 {
            return 1.0;
        }
        self.loads_accepted as f64 / self.loads_submitted as f64
    }

    /// Mean de-virtualization time per decode, in microseconds.
    pub fn mean_decode_micros(&self) -> f64 {
        if self.decodes == 0 {
            return 0.0;
        }
        self.decode_micros as f64 / self.decodes as f64
    }

    /// Mean sampled fragmentation over the run.
    pub fn mean_fragmentation(&self) -> f64 {
        if self.fragmentation_samples == 0 {
            return 0.0;
        }
        self.fragmentation_sum / self.fragmentation_samples as f64
    }

    /// Mean sampled fabric utilization (occupied share of the device) over
    /// the run.
    pub fn mean_utilization(&self) -> f64 {
        if self.fragmentation_samples == 0 {
            return 0.0;
        }
        self.utilization_sum / self.fragmentation_samples as f64
    }

    /// Mean compaction pause, in microseconds per pass.
    pub fn mean_compaction_micros(&self) -> f64 {
        if self.compaction_passes == 0 {
            return 0.0;
        }
        self.compaction_micros as f64 / self.compaction_passes as f64
    }
}

#[derive(Debug)]
struct Resident {
    handle: TaskHandle,
    name: String,
    priority: u8,
    loaded_at: u64,
    last_used: u64,
}

#[derive(Debug)]
struct Pending {
    job: u64,
    seq: u64,
    request: Request,
    /// Telemetry-clock timestamp of submission (queue-wait span start).
    enqueued_at: u64,
}

/// The on-line reconfiguration scheduler (see the module docs).
#[derive(Debug)]
pub struct Scheduler {
    manager: TaskManager,
    eviction: Box<dyn EvictionPolicy>,
    cache: DecodeCache,
    config: SchedulerConfig,
    queue: Vec<Pending>,
    residents: BTreeMap<u64, Resident>,
    clock: u64,
    next_job: u64,
    next_seq: u64,
    /// This scheduler's private counter slots — the data behind the
    /// [`SchedMetrics`] view. Separate from the (possibly fleet-shared)
    /// telemetry registry so per-fabric counters never merge.
    counters: CounterBank,
    /// Span/event registry: stage latencies and the pipeline timeline.
    /// Disabled (recording no-ops) until one is installed.
    telemetry: Telemetry,
    /// Fabric tag stamped on this scheduler's events.
    fabric: u16,
    /// Streams de-virtualized ahead of time by an external decode pipeline
    /// (see [`Scheduler::stage_decoded`]), waiting to be consumed by the
    /// next load of their task.
    staged: HashMap<String, (Arc<TaskBitstream>, u64)>,
    /// Recycled decoded-image buffers: cache evictions return here, decodes
    /// check out of here. Shared fleet-wide in multi-fabric deployments.
    pool: BitstreamPool,
    /// A budget-truncated compaction pass left moves unexecuted; the next
    /// idle tick ([`Scheduler::advance_to`] with an empty queue) resumes
    /// the plan instead of burning passes back-to-back.
    deferred_compaction: bool,
}

impl Scheduler {
    /// Creates a scheduler over a task manager with LRU eviction and the
    /// default configuration. The placement policy is whatever `manager`
    /// was built with.
    pub fn new(manager: TaskManager) -> Self {
        Scheduler::with_config(manager, Box::new(LruEviction), SchedulerConfig::default())
    }

    /// Creates a scheduler with an explicit eviction policy and config.
    pub fn with_config(
        manager: TaskManager,
        eviction: Box<dyn EvictionPolicy>,
        config: SchedulerConfig,
    ) -> Self {
        let cache = DecodeCache::with_budget(config.cache_capacity, config.cache_budget);
        // Share the controller's scratch pool: images the cache evicts feed
        // the controller's decode lanes and vice versa.
        let pool = manager.controller().scratch_pool().clone();
        Scheduler {
            manager,
            eviction,
            cache,
            config,
            queue: Vec::new(),
            residents: BTreeMap::new(),
            clock: 0,
            next_job: 1,
            next_seq: 0,
            counters: CounterBank::new(),
            telemetry: Telemetry::disabled(),
            fabric: 0,
            staged: HashMap::new(),
            pool,
            deferred_compaction: false,
        }
    }

    /// Installs the observability registry stage latencies and pipeline
    /// events are recorded into, tagging this scheduler's events with
    /// `fabric`. The registry reaches the decode lanes too (through the
    /// controller's scratch pool), so lane busy spans, checkout hit/miss
    /// events and [`SchedMetrics`] timing all run on one shared clock.
    /// Counters keep accumulating in the scheduler's private bank either
    /// way — installing telemetry never changes golden-trace counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, fabric: u16) {
        self.manager
            .controller()
            .set_telemetry(telemetry.clone(), fabric);
        self.telemetry = telemetry;
        self.fabric = fabric;
    }

    /// The scheduler's span/event registry (a shared handle; disabled until
    /// [`Scheduler::set_telemetry`] installs one).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The scheduler's recycled-buffer pool (a shared handle).
    pub fn bitstream_pool(&self) -> BitstreamPool {
        self.pool.clone()
    }

    /// Replaces the recycled decode-state pool — multi-fabric dispatchers
    /// install one shared pool so evictions on any fabric feed decodes
    /// everywhere. The pool is also installed on this fabric's controller,
    /// so its decode lanes draw from the same free-list.
    pub fn set_pool(&mut self, pool: BitstreamPool) {
        self.manager.set_scratch_pool(pool.clone());
        self.pool = pool;
    }

    /// Switches the streaming decode→write load path on or off (see
    /// [`SchedulerConfig::streaming`]).
    pub fn set_streaming(&mut self, streaming: bool) {
        self.config.streaming = streaming;
    }

    /// Installs a fault model on this fabric's controller (see
    /// [`vbs_runtime::FaultHook`]); `None` restores the fault-free fabric.
    pub fn set_fault_hook(&mut self, hook: Option<Arc<dyn vbs_runtime::FaultHook>>) {
        self.manager.controller_mut().set_fault_hook(hook);
    }

    /// Whether the fabric's fault model currently reports it offline.
    pub fn is_offline(&self) -> bool {
        self.manager.controller().is_offline()
    }

    /// Switches readback verification of accepted loads on or off (see
    /// [`SchedulerConfig::verify`]). Enabling it switches on the
    /// controller's per-frame checksum sidecar.
    pub fn set_verify(&mut self, verify: bool) {
        self.config.verify = verify;
        if verify {
            self.manager.controller_mut().enable_integrity();
        }
    }

    /// Abandons every resident without touching the hardware — the
    /// quarantine path when this fabric has gone offline: its residents
    /// can no longer be cleared (the device is unreachable), so the
    /// bookkeeping is emptied and the abandoned jobs returned, oldest
    /// first, for re-placement on surviving fabrics.
    pub fn evacuate(&mut self) -> Vec<EvacuatedJob> {
        let abandoned = self.manager.evacuate();
        abandoned
            .iter()
            .filter_map(|t| {
                let job = self
                    .residents
                    .iter()
                    .find(|(_, r)| r.handle == t.handle)
                    .map(|(&job, _)| job)?;
                let resident = self.residents.remove(&job)?;
                Some(EvacuatedJob {
                    job,
                    task: resident.name,
                    priority: resident.priority,
                })
            })
            .collect()
    }

    /// Brings a recovered fabric back to a trusted blank state: drops any
    /// leftover resident bookkeeping and wipes the configuration memory
    /// (and checksum sidecar).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::FabricOffline`] while the fabric is still
    /// unreachable.
    pub fn reset_after_recovery(&mut self) -> Result<(), RuntimeError> {
        self.residents.clear();
        let _ = self.manager.evacuate();
        self.manager.controller_mut().reset_memory()
    }

    /// Read access to the underlying task manager (fabric + repository).
    pub fn manager(&self) -> &TaskManager {
        &self.manager
    }

    /// Mutable access to the task repository, to register tasks at run
    /// time. Deliberately *not* the whole `TaskManager`: loading, unloading
    /// and relocating behind the scheduler's back would desynchronize its
    /// resident table. When a *different* stream is re-registered under an
    /// existing name, call [`Scheduler::invalidate_cached`] afterwards or
    /// later loads may serve the stale decoded image.
    pub fn repository_mut(&mut self) -> &mut vbs_runtime::VbsRepository {
        self.manager.repository_mut()
    }

    /// Drops the cached decoded stream(s) of `name` — required after the
    /// repository replaces the task's VBS under the same name. Also drops
    /// any staged (pipeline-decoded) stream of the task.
    pub fn invalidate_cached(&mut self, name: &str) {
        self.cache.invalidate(name);
        self.staged.remove(name);
    }

    /// Hands over a stream de-virtualized by an external decode pipeline.
    ///
    /// The next load of `name` consumes the staged stream instead of
    /// decoding on demand, with identical accounting: the lookup still
    /// counts a cache miss, `micros` (measured by the decode worker) is
    /// folded into the decode-time counters, and the stream enters the
    /// decode cache. Replaying a trace through a pipeline that stages every
    /// upcoming decode therefore produces bit-identical counters to the
    /// on-demand path — the differential tests rely on this.
    pub fn stage_decoded(
        &mut self,
        name: impl Into<String>,
        stream: Arc<TaskBitstream>,
        micros: u64,
    ) {
        self.staged.insert(name.into(), (stream, micros));
    }

    /// Whether this scheduler already holds decode state for task `name`
    /// (decode cache — hot *or* warm tier, any spec — or a staged stream).
    /// Cache-affinity shard routing keys on this; a warm entry still makes
    /// this fabric the cheap place to route the task (a pooled re-decode
    /// beats a cold miss). Counters are not touched.
    pub fn holds_decoded(&self, name: &str) -> bool {
        self.cache.retains_name(name) || self.staged.contains_key(name)
    }

    /// Number of requests of any kind currently queued.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of load requests currently queued (not yet processed).
    pub fn queued_loads(&self) -> usize {
        self.queue
            .iter()
            .filter(|p| matches!(p.request, Request::Load { .. }))
            .count()
    }

    /// The de-virtualizations the next [`Scheduler::process_pending`] round
    /// will perform: for every queued load that will reach the decode step
    /// (deadline not already missed) and whose stream is neither cached nor
    /// staged, the task name and its fetched VBS — one entry per distinct
    /// task. A decode pipeline feeds these to its worker pool and hands the
    /// results back through [`Scheduler::stage_decoded`].
    pub fn pending_decode_fetches(&self) -> Vec<(String, Vbs)> {
        let mut out: Vec<(String, Vbs)> = Vec::new();
        for pending in &self.queue {
            let Request::Load { task, deadline, .. } = &pending.request else {
                continue;
            };
            if deadline.is_some_and(|d| self.clock > d) {
                continue;
            }
            if self.staged.contains_key(task) || out.iter().any(|(name, _)| name == task) {
                continue;
            }
            // Unknown or corrupted streams are skipped: the on-demand path
            // reports those errors with the right per-request accounting.
            let Ok(vbs) = self.manager.repository().fetch(task) else {
                continue;
            };
            if self.cache.contains(task, vbs.spec()) {
                continue;
            }
            out.push((task.clone(), vbs));
        }
        out
    }

    /// Marks a resident job as used "now" for LRU-eviction purposes.
    /// Loads and explicit relocations touch implicitly; call this when the
    /// running task does observable work between scheduler requests.
    pub fn touch(&mut self, job: u64) {
        let now = self.clock;
        if let Some(resident) = self.residents.get_mut(&job) {
            resident.last_used = now;
        }
    }

    /// The scheduler's logical clock (advanced by [`Scheduler::advance_to`]).
    pub const fn now(&self) -> u64 {
        self.clock
    }

    /// Aggregate counters so far — a snapshot view over the scheduler's
    /// telemetry counter bank.
    pub fn metrics(&self) -> SchedMetrics {
        let cache = self.cache.stats();
        SchedMetrics {
            loads_submitted: self.counters.get(slot::LOADS_SUBMITTED),
            loads_accepted: self.counters.get(slot::LOADS_ACCEPTED),
            loads_rejected: self.counters.get(slot::LOADS_REJECTED),
            deadline_missed: self.counters.get(slot::DEADLINE_MISSED),
            evictions: self.counters.get(slot::EVICTIONS),
            relocations: self.counters.get(slot::RELOCATIONS),
            compaction_passes: self.counters.get(slot::COMPACTION_PASSES),
            compaction_frames_moved: self.counters.get(slot::COMPACTION_FRAMES_MOVED),
            compaction_micros: self.counters.get(slot::COMPACTION_MICROS),
            decode_micros: self.counters.get(slot::DECODE_MICROS),
            decodes: self.counters.get(slot::DECODES),
            fragmentation_samples: self.counters.get(slot::FRAGMENTATION_SAMPLES),
            fragmentation_sum: self.counters.float_total(slot::FRAGMENTATION_SUM),
            utilization_sum: self.counters.float_total(slot::UTILIZATION_SUM),
            write_retries: self.counters.get(slot::WRITE_RETRIES),
            write_faults: self.counters.get(slot::WRITE_FAULTS),
            crc_mismatches: self.counters.get(slot::CRC_MISMATCHES),
            verify_scrubs: self.counters.get(slot::VERIFY_SCRUBS),
            compaction_truncated: self.counters.get(slot::COMPACTION_TRUNCATED),
            warm_hits: cache.warm_hits,
            redecode_micros: self.counters.get(slot::REDECODE_MICROS),
            cache_demotions: cache.demotions,
            cache_promotions: cache.promotions,
            cache_resident_bytes: cache.resident_bytes(),
        }
    }

    /// Decode-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs currently resident, with the metadata the eviction policies see.
    pub fn residents(&self) -> Vec<ResidentInfo> {
        self.residents
            .iter()
            .filter_map(|(&job, r)| {
                self.manager
                    .loaded_tasks()
                    .iter()
                    .find(|t| t.handle == r.handle)
                    .map(|t| ResidentInfo {
                        job,
                        name: r.name.clone(),
                        region: t.region,
                        priority: r.priority,
                        loaded_at: r.loaded_at,
                        last_used: r.last_used,
                    })
            })
            .collect()
    }

    /// Advances the logical clock (monotonic; earlier ticks are ignored).
    ///
    /// An idle tick — the clock actually advances and no requests are
    /// queued — resumes a budget-truncated compaction plan with one more
    /// bounded pass, so a long defragmentation spreads over the gaps
    /// between request bursts instead of burning its passes back-to-back
    /// inside one placement. With an unbounded
    /// [`SchedulerConfig::compaction_frame_budget`] passes never truncate
    /// and idle ticks never compact, so default-config behavior (and every
    /// golden trace) is unchanged.
    pub fn advance_to(&mut self, tick: u64) {
        let advanced = tick > self.clock;
        self.clock = self.clock.max(tick);
        // Time-keyed fault models (outage windows) follow the same clock.
        self.manager.controller().advance_clock(self.clock);
        if advanced && self.deferred_compaction && self.queue.is_empty() {
            // One bounded pass per idle tick; compact() re-arms the flag
            // if the budget truncates the plan again.
            self.deferred_compaction = false;
            self.compact();
        }
    }

    /// Enqueues a request and returns its job id (for loads, the id the
    /// eventual [`Outcome`] refers to; for unloads/relocates, a fresh id
    /// naming the request itself).
    pub fn submit(&mut self, request: Request) -> u64 {
        let job = self.next_job;
        self.next_job += 1;
        if matches!(request, Request::Load { .. }) {
            self.counters.add(slot::LOADS_SUBMITTED, 1);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let enqueued_at = self.telemetry.now();
        self.telemetry
            .event(EventKind::Enqueue, self.fabric, 0, job, 0);
        self.queue.push(Pending {
            job,
            seq,
            request,
            enqueued_at,
        });
        job
    }

    /// Processes every queued request in priority order (unloads first so
    /// departures free space before arrivals claim it, then loads by
    /// descending priority, FIFO within a class) and returns the outcomes.
    pub fn process_pending(&mut self) -> Vec<Outcome> {
        self.process_pending_tagged()
            .into_iter()
            .map(|(_, outcome)| outcome)
            .collect()
    }

    /// As [`Scheduler::process_pending`], but each outcome is tagged with
    /// the id [`Scheduler::submit`] returned for the request that produced
    /// it (an unload's *outcome* names the job it targeted, which is not
    /// the request's own id).
    pub fn process_pending_tagged(&mut self) -> Vec<(u64, Outcome)> {
        let mut pending = std::mem::take(&mut self.queue);
        pending.sort_by_key(|p| {
            (
                class_rank(&p.request),
                std::cmp::Reverse(priority_of(&p.request)),
                p.seq,
            )
        });
        pending
            .into_iter()
            .map(|p| {
                let outcome = self.process_one(p.job, p.request, p.enqueued_at);
                self.sample_fragmentation();
                (p.job, outcome)
            })
            .collect()
    }

    /// Submits one request and processes the whole queue immediately —
    /// convenience for direct (non-batched) callers. Returns the outcome of
    /// *this* request (matched by request id, so previously queued requests
    /// targeting the same job cannot be confused with it).
    pub fn execute(&mut self, request: Request) -> Outcome {
        let job = self.submit(request);
        self.process_pending_tagged()
            .into_iter()
            .find(|(id, _)| *id == job)
            .map(|(_, outcome)| outcome)
            .expect("the submitted request is always processed")
    }

    /// Runs a defragmentation pass as one **batch-planned** move schedule:
    /// the greedy bottom-left sweeps are *simulated* on the occupancy
    /// rectangles until they reach a fixpoint, then every resident whose
    /// final position improved is moved **once**, directly from its current
    /// region to its final one. Compared to executing the sweeps directly,
    /// this rewrites the minimum number of configuration frames (no task is
    /// shuttled through intermediate positions) while converging to the
    /// same packed layout. Every move is a decode-free bulk word-arena
    /// relocation; the pass records its pause cost (frames moved + wall
    /// microseconds) in [`SchedMetrics`]. Returns the number of
    /// relocations.
    ///
    /// With a nonzero [`SchedulerConfig::compaction_frame_budget`] the pass
    /// stops executing its plan once the budget is spent (after at least
    /// one move); the deferred moves are re-planned by the next pass from
    /// wherever the layout stands, so repeated bounded passes converge to
    /// the same fixpoint as one unbounded pass, in several short pauses
    /// instead of one long one.
    pub fn compact(&mut self) -> usize {
        let pause_start = self.telemetry.now();
        self.counters.add(slot::COMPACTION_PASSES, 1);
        let view = self.manager.fabric_view();

        // Phase 1 — plan: replay the greedy sweeps on rectangles only.
        // `sim` holds (job, current simulated region); each sweep offers
        // every task the best strictly-better origin with all other tasks
        // at their *simulated* positions, exactly as live sweeps would see
        // them, until no task improves (bounded like the old executor).
        let mut sim: Vec<(u64, Rect)> = {
            let mut residents = self.residents();
            residents.sort_by_key(|r| (r.region.origin.y, r.region.origin.x));
            residents.into_iter().map(|r| (r.job, r.region)).collect()
        };
        let original: HashMap<u64, Rect> = sim.iter().copied().collect();
        for _ in 0..4 {
            let mut moved = false;
            sim.sort_by_key(|(_, region)| (region.origin.y, region.origin.x));
            for i in 0..sim.len() {
                let (width, height) = (sim[i].1.width, sim[i].1.height);
                let others: Vec<Rect> = sim
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &(_, region))| region)
                    .collect();
                let masked = vbs_runtime::FabricView::new(view.width(), view.height(), others);
                if let Some(candidate) = self.manager.policy().place(width, height, &masked) {
                    let current = sim[i].1.origin;
                    if (candidate.y, candidate.x) < (current.y, current.x) {
                        sim[i].1 = Rect::new(candidate, width, height);
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }

        // Phase 2 — execute: one net move per improved task, in bottom-left
        // order of the *target*; a move whose destination is still occupied
        // by a not-yet-moved task is retried after the blocker vacates. A
        // round without progress (a blocking cycle — impossible for pure
        // swaps under the strict bottom-left ordering, pathological
        // otherwise) abandons the remainder; the fabric stays consistent.
        let mut plan: Vec<(u64, Rect)> = sim
            .into_iter()
            .filter(|(job, region)| original.get(job) != Some(region))
            .collect();
        plan.sort_by_key(|(_, region)| (region.origin.y, region.origin.x));
        let budget = self.config.compaction_frame_budget;
        let mut moves = 0usize;
        let mut frames = 0u64;
        let mut truncated = false;
        while !plan.is_empty() {
            let before = moves;
            plan.retain(|&(job, region)| {
                // Over-budget moves stay planned but unexecuted: the next
                // pass re-plans them from the layout this one leaves
                // behind. The first move always runs, so a task bigger
                // than the whole budget cannot wedge compaction.
                if budget != 0 && moves > 0 && frames + region.area() as u64 > budget {
                    truncated = true;
                    return true;
                }
                match self.relocate_resident(job, region.origin) {
                    Ok(()) => {
                        moves += 1;
                        frames += region.area() as u64;
                        false
                    }
                    Err(_blocked) => true,
                }
            });
            if moves == before {
                break;
            }
        }
        self.counters.add(slot::RELOCATIONS, moves as u64);
        self.counters.add(slot::COMPACTION_FRAMES_MOVED, frames);
        if truncated {
            self.counters.add(slot::COMPACTION_TRUNCATED, 1);
        }
        // A truncated plan waits for the next idle tick (see advance_to);
        // a completed pass disarms any pending resumption.
        self.deferred_compaction = truncated;
        // The pause span doubles as the counter source, so the histogram
        // and the golden-counter total always agree.
        let pause = self
            .telemetry
            .record_span(Stage::CompactionPause, pause_start);
        self.counters.add(slot::COMPACTION_MICROS, pause);
        self.telemetry.event_span(
            EventKind::CompactPass,
            self.fabric,
            0,
            moves as u64,
            frames,
            pause_start,
        );
        moves
    }

    /// Relocates a resident **decode-free**: the task's frames already sit
    /// decoded in the configuration memory, so the move is one bulk
    /// word-arena copy ([`TaskManager::relocate`]) — no repository fetch,
    /// no cache lookup, no de-virtualization. This is the paper's model of
    /// relocation as a pure copy; the decode counters and cache statistics
    /// are untouched, which the relocation differential suite pins down.
    fn relocate_resident(&mut self, job: u64, to: Coord) -> Result<(), RuntimeError> {
        let handle = self
            .residents
            .get(&job)
            .ok_or(RuntimeError::UnknownHandle { id: job })?
            .handle;
        self.manager.relocate(handle, to)?;
        self.telemetry
            .event(EventKind::Relocate, self.fabric, 0, job, pack_origin(to));
        Ok(())
    }

    /// Fetches the decoded stream of `name` through the cache (counting the
    /// hot hit, the warm hit + pooled re-decode, or the miss + decode),
    /// optionally reusing a stream the caller already fetched (the
    /// streaming fast path fetches before deciding to fall back — the
    /// fallback must not deserialize the VBS twice).
    /// Returns the stream and whether it was a (hot) cache hit.
    ///
    /// A warm hit accounts exactly like a miss in the classic counters
    /// (miss + decode + decode micros) — that invariance is what keeps
    /// every golden trace bit-identical under any budget — and
    /// *additionally* bumps the warm-hit counters. It still fetches from
    /// the repository first: the repository owns the authoritative bytes,
    /// so a stream corrupted there surfaces as the same decode error a
    /// cold miss would report instead of being masked by stale cache state.
    fn decoded_with(
        &mut self,
        job: u64,
        name: &str,
        prefetched: Option<Vbs>,
    ) -> Result<(Arc<TaskBitstream>, bool), RuntimeError> {
        // A stream the decode pipeline expanded ahead of time: it carries
        // the spec of the stream it was decoded from (this round's fetch),
        // so the repository fetch is skipped entirely. Accounting matches
        // the on-demand path: the cache lookup still counts the miss (plus
        // the warm hit when the pipeline re-staged a demoted entry) and
        // the worker-measured decode time is folded in.
        if let Some((task, micros)) = self.staged.remove(name) {
            let spec = *task.spec();
            let warm = match self.cache.get(name, &spec) {
                CacheLookup::Hot(cached) => return Ok((cached, true)),
                CacheLookup::Warm => true,
                CacheLookup::Miss => false,
            };
            self.counters.add(slot::DECODES, 1);
            self.counters.add(slot::DECODE_MICROS, micros);
            self.telemetry.record_micros(Stage::Decode, micros);
            if warm {
                self.counters.add(slot::REDECODE_MICROS, micros);
                self.telemetry.record_micros(Stage::Redecode, micros);
                self.telemetry
                    .event(EventKind::WarmHit, self.fabric, 0, job, 0);
            }
            self.cache_insert(name, spec, Arc::clone(&task), micros);
            return Ok((task, false));
        }
        let vbs: Vbs = match prefetched {
            Some(vbs) => vbs,
            None => self.manager.repository().fetch(name)?,
        };
        let warm = match self.cache.get(name, vbs.spec()) {
            CacheLookup::Hot(cached) => return Ok((cached, true)),
            CacheLookup::Warm => true,
            CacheLookup::Miss => false,
        };
        let redecode_start = self.telemetry.now();
        let mut staging = self
            .pool
            .checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
        let decode = if warm {
            self.manager.redevirtualize_into(&vbs, &mut staging)
        } else {
            self.manager.devirtualize_into(&vbs, &mut staging)
        };
        let report = match decode {
            Ok(report) => report,
            Err(e) => {
                self.pool.put(staging);
                return Err(e);
            }
        };
        self.counters.add(slot::DECODES, 1);
        self.counters.add(slot::DECODE_MICROS, report.micros);
        self.telemetry.record_micros(Stage::Decode, report.micros);
        if warm {
            self.counters.add(slot::REDECODE_MICROS, report.micros);
            self.telemetry.record_micros(Stage::Redecode, report.micros);
            self.telemetry.event_span(
                EventKind::WarmHit,
                self.fabric,
                0,
                job,
                vbs.size_bytes(),
                redecode_start,
            );
        }
        let task = Arc::new(staging);
        self.cache_insert(name, *vbs.spec(), Arc::clone(&task), report.micros);
        Ok((task, false))
    }

    /// Inserts a freshly decoded stream into the tiered cache with the
    /// metadata its cost model runs on (compressed bytes + measured decode
    /// micros), recycles every displaced arena into the shared pool, and
    /// records tier-transition events. Under an unbounded budget nothing
    /// is ever demoted, so the compressed copy is skipped entirely and the
    /// behavior is byte-for-byte the classic LRU insert.
    fn cache_insert(&mut self, name: &str, spec: ArchSpec, task: Arc<TaskBitstream>, micros: u64) {
        let compressed = if self.cache.budget().is_unbounded() {
            Vec::new()
        } else {
            self.manager
                .repository()
                .bytes(name)
                .map(<[u8]>::to_vec)
                .unwrap_or_default()
        };
        let outcome = self.cache.insert(name, spec, task, compressed, micros);
        for displaced in outcome.displaced {
            self.pool.recycle(displaced);
        }
        if outcome.demoted > 0 {
            let stats = self.cache.stats();
            self.telemetry.event(
                EventKind::Demote,
                self.fabric,
                0,
                outcome.demoted,
                stats.hot_bytes,
            );
        }
        if outcome.promoted {
            let stats = self.cache.stats();
            self.telemetry
                .event(EventKind::Promote, self.fabric, 0, 1, stats.hot_bytes);
        }
    }

    fn process_one(&mut self, job: u64, request: Request, enqueued_at: u64) -> Outcome {
        match request {
            Request::Load {
                task,
                priority,
                deadline,
            } => self.process_load(job, &task, priority, deadline, enqueued_at),
            Request::Unload { job: target } => match self.residents.remove(&target) {
                Some(resident) => {
                    // The manager drops the resident from its bookkeeping
                    // before clearing the hardware, so even when the clear
                    // is refused (offline fabric, write fault) the job is
                    // gone — report it unloaded; the stale frames are
                    // overwritten by whichever load lands there next.
                    if let Err(e) = self.manager.unload(resident.handle) {
                        debug_assert!(
                            !matches!(e, RuntimeError::UnknownHandle { .. }),
                            "resident handles are always valid"
                        );
                    }
                    self.telemetry
                        .event(EventKind::Unload, self.fabric, 0, target, 0);
                    Outcome::Unloaded { job: target }
                }
                None => Outcome::NotResident { job: target },
            },
            Request::Relocate { job: target, to } => match self.relocate_resident(target, to) {
                Ok(()) => {
                    self.counters.add(slot::RELOCATIONS, 1);
                    // An explicit relocation is a use of the task.
                    self.touch(target);
                    Outcome::Relocated {
                        job: target,
                        origin: to,
                    }
                }
                Err(RuntimeError::UnknownHandle { .. }) => Outcome::NotResident { job: target },
                Err(e) => Outcome::Rejected {
                    job: target,
                    reason: RejectReason::Runtime(e.to_string()),
                    evicted: Vec::new(),
                },
            },
        }
    }

    /// Wraps the load pipeline with its observability: queue-wait span,
    /// end-to-end load span, and the Admit/Reject timeline event.
    fn process_load(
        &mut self,
        job: u64,
        task: &str,
        priority: u8,
        deadline: Option<u64>,
        enqueued_at: u64,
    ) -> Outcome {
        self.telemetry.record_span(Stage::QueueWait, enqueued_at);
        let start = self.telemetry.now();
        let outcome = self.process_load_inner(job, task, priority, deadline);
        self.telemetry.record_span(Stage::Load, start);
        match &outcome {
            Outcome::Loaded { origin, .. } => self.telemetry.event_span(
                EventKind::Admit,
                self.fabric,
                0,
                job,
                pack_origin(*origin),
                start,
            ),
            Outcome::Rejected { .. } => {
                self.telemetry
                    .event_span(EventKind::Reject, self.fabric, 0, job, 0, start)
            }
            _ => {}
        }
        outcome
    }

    fn process_load_inner(
        &mut self,
        job: u64,
        task: &str,
        priority: u8,
        deadline: Option<u64>,
    ) -> Outcome {
        if deadline.is_some_and(|d| self.clock > d) {
            self.counters.add(slot::LOADS_REJECTED, 1);
            self.counters.add(slot::DEADLINE_MISSED, 1);
            return Outcome::Rejected {
                job,
                reason: RejectReason::DeadlineMissed,
                evicted: Vec::new(),
            };
        }
        let mut prefetched = None;
        if self.config.streaming {
            match self.try_load_streaming(job, task, priority) {
                StreamingAttempt::Done(outcome) => return outcome,
                StreamingAttempt::Buffered(vbs) => prefetched = vbs,
            }
        }
        let decoded = match self.decoded_with(job, task, prefetched) {
            Ok(d) => d,
            Err(RuntimeError::UnknownTask { .. }) => {
                self.counters.add(slot::LOADS_REJECTED, 1);
                return Outcome::Rejected {
                    job,
                    reason: RejectReason::UnknownTask,
                    evicted: Vec::new(),
                };
            }
            Err(e) => {
                self.counters.add(slot::LOADS_REJECTED, 1);
                return Outcome::Rejected {
                    job,
                    reason: RejectReason::Runtime(e.to_string()),
                    evicted: Vec::new(),
                };
            }
        };
        let (stream, cache_hit) = decoded;
        let (w, h) = (stream.width(), stream.height());

        // A task larger than the device can never fit — reject before
        // evicting anyone on its behalf.
        let device = self.manager.controller().device();
        if w > device.width() || h > device.height() {
            self.counters.add(slot::LOADS_REJECTED, 1);
            return Outcome::Rejected {
                job,
                reason: RejectReason::NoCapacity,
                evicted: Vec::new(),
            };
        }

        // Placement span: finding (or making, via compaction/eviction) a
        // free region. Compaction-pause spans nest inside it.
        let placement_start = self.telemetry.now();
        let mut evicted = Vec::new();
        // Once a budgeted pass truncates, this request stops re-compacting:
        // the rest of the plan belongs to idle ticks (see advance_to), not
        // to back-to-back passes inside one placement. Unbudgeted passes
        // never truncate, so the classic retry-after-eviction loop is
        // unchanged.
        let mut compaction_exhausted = false;
        let origin = loop {
            if let Some(origin) = self.manager.find_free_region(w, h) {
                break Some(origin);
            }
            if self.config.compaction && !compaction_exhausted {
                let moved = self.compact();
                compaction_exhausted = self.deferred_compaction;
                if moved > 0 {
                    if let Some(origin) = self.manager.find_free_region(w, h) {
                        break Some(origin);
                    }
                }
            }
            if evicted.len() >= self.config.eviction_limit {
                break None;
            }
            let candidates = self.eviction.victims(&self.residents(), priority);
            let Some(&victim) = candidates.first() else {
                break None;
            };
            let resident = self
                .residents
                .remove(&victim)
                .expect("eviction candidates are resident");
            // As with explicit unloads: the bookkeeping entry is gone even
            // when the fabric refuses the clear, so the eviction stands.
            let _ = self.manager.unload(resident.handle);
            self.counters.add(slot::EVICTIONS, 1);
            self.telemetry
                .event(EventKind::Evict, self.fabric, 0, victim, job);
            evicted.push(victim);
        };
        self.telemetry
            .record_span(Stage::Placement, placement_start);

        let Some(origin) = origin else {
            self.counters.add(slot::LOADS_REJECTED, 1);
            return Outcome::Rejected {
                job,
                reason: RejectReason::NoCapacity,
                evicted,
            };
        };
        let write_start = self.telemetry.now();
        let written = match self.write_with_retry(job, task, &stream, origin) {
            Ok(handle) => Ok((handle, origin)),
            Err(e)
                if matches!(
                    e,
                    RuntimeError::WriteFault { .. }
                        | RuntimeError::Memory(BitstreamError::CrcMismatch { .. })
                ) =>
            {
                // Self-healing re-placement: this region looks bad (a dead
                // column, transients that never dissolve, unverifiable
                // frames), so offer the load one alternative region with
                // the failed rectangle masked busy.
                match self.replacement_origin(w, h, origin) {
                    Some(alt) => self
                        .write_with_retry(job, task, &stream, alt)
                        .map(|handle| (handle, alt)),
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        };
        match written {
            Ok((handle, origin)) => {
                self.telemetry.record_span(Stage::Write, write_start);
                self.telemetry.event_span(
                    EventKind::FrameWrite,
                    self.fabric,
                    0,
                    job,
                    w as u64 * h as u64,
                    write_start,
                );
                self.residents.insert(
                    job,
                    Resident {
                        handle,
                        name: task.to_string(),
                        priority,
                        loaded_at: self.clock,
                        last_used: self.clock,
                    },
                );
                self.counters.add(slot::LOADS_ACCEPTED, 1);
                Outcome::Loaded {
                    job,
                    handle,
                    origin,
                    evicted,
                    cache_hit,
                }
            }
            Err(e) => {
                self.counters.add(slot::LOADS_REJECTED, 1);
                Outcome::Rejected {
                    job,
                    reason: RejectReason::Runtime(e.to_string()),
                    evicted,
                }
            }
        }
    }

    /// One load's gated write with the self-healing retry loop: a
    /// transiently refused write is retried up to
    /// [`SchedulerConfig::write_retry_limit`] times, and (with verify on)
    /// an accepted write must pass readback verification — a mismatching
    /// frame is scrubbed and re-verified by
    /// [`Scheduler::verify_and_scrub`]; an unverifiable write is torn
    /// down and spends a retry like a refused one. Persistent refusals
    /// fail immediately: by definition retrying the same region cannot
    /// help (re-placement happens in the caller).
    fn write_with_retry(
        &mut self,
        job: u64,
        name: &str,
        stream: &TaskBitstream,
        origin: Coord,
    ) -> Result<TaskHandle, RuntimeError> {
        let mut attempts = 0u32;
        loop {
            let error = match self.manager.load_decoded_at(name, stream, origin) {
                Ok(handle) => {
                    if !self.config.verify {
                        return Ok(handle);
                    }
                    match self.verify_and_scrub(job, stream, origin) {
                        Ok(()) => return Ok(handle),
                        Err(e) => {
                            // Unverifiable even after the scrub: tear the
                            // instance down (at least the bookkeeping — an
                            // offline fabric cannot clear) and retry.
                            let _ = self.manager.unload(handle);
                            e
                        }
                    }
                }
                Err(e @ RuntimeError::WriteFault { .. }) => {
                    self.counters.add(slot::WRITE_FAULTS, 1);
                    if !matches!(
                        e,
                        RuntimeError::WriteFault {
                            transient: true,
                            ..
                        }
                    ) {
                        return Err(e);
                    }
                    e
                }
                Err(e) => return Err(e),
            };
            if attempts >= self.config.write_retry_limit {
                return Err(error);
            }
            attempts += 1;
            self.counters.add(slot::WRITE_RETRIES, 1);
            self.telemetry
                .event(EventKind::WriteRetry, self.fabric, 0, job, attempts as u64);
        }
    }

    /// Readback-verifies a just-written load and scrubs one mismatch: the
    /// corrupted region is rewritten from the decoded image in hand (a
    /// write gated by the fault model like any other) and verified again.
    fn verify_and_scrub(
        &mut self,
        job: u64,
        stream: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), RuntimeError> {
        let region = Rect::new(origin, stream.width(), stream.height());
        match self.manager.controller().verify_region(region) {
            Ok(()) => Ok(()),
            Err(RuntimeError::Memory(BitstreamError::CrcMismatch { at })) => {
                self.counters.add(slot::CRC_MISMATCHES, 1);
                self.telemetry
                    .event(EventKind::CrcMismatch, self.fabric, 0, job, pack_origin(at));
                self.counters.add(slot::VERIFY_SCRUBS, 1);
                self.manager.controller_mut().load_decoded(stream, origin)?;
                self.manager.controller().verify_region(region)
            }
            Err(e) => Err(e),
        }
    }

    /// One alternative origin for a load whose target region refused or
    /// corrupted its writes: the placement policy runs again with the
    /// failed rectangle masked busy, so an answer is always a different
    /// spot.
    fn replacement_origin(&self, width: u16, height: u16, failed: Coord) -> Option<Coord> {
        let view = self.manager.fabric_view();
        let mut busy: Vec<Rect> = self
            .manager
            .loaded_tasks()
            .iter()
            .map(|t| t.region)
            .collect();
        busy.push(Rect::new(failed, width, height));
        let masked = vbs_runtime::FabricView::new(view.width(), view.height(), busy);
        self.manager.policy().place(width, height, &masked)
    }

    /// The streaming fast path of a load: when the task needs a fresh
    /// decode *and* a free region exists without eviction or compaction,
    /// decode and configuration-memory writes overlap within the load
    /// ([`TaskManager::load_streaming_at`]) using a pooled staging buffer.
    ///
    /// Returns [`StreamingAttempt::Buffered`] when the request must take
    /// the buffered path instead (staged or cached stream, unknown task, or
    /// no free region) — exactly the cases whose accounting could diverge;
    /// a stream already fetched for the probe rides along so the fallback
    /// never deserializes it twice. Restricting the fast path this way
    /// keeps every counter, cache stamp and memory bit identical between
    /// the two paths, which the differential suite pins down.
    fn try_load_streaming(&mut self, job: u64, name: &str, priority: u8) -> StreamingAttempt {
        if self.staged.contains_key(name) {
            return StreamingAttempt::Buffered(None);
        }
        // Verified loads take the buffered path, where the readback /
        // scrub / retry machinery lives.
        if self.config.verify {
            return StreamingAttempt::Buffered(None);
        }
        // Hot cache (any spec): nothing to stream — and nothing worth
        // fetching; the buffered path resolves the hit by itself. A *warm*
        // entry streams like a miss: it needs its decode anyway, so the
        // overlapped decode→write path is exactly right for it.
        if self.cache.contains_name(name) {
            return StreamingAttempt::Buffered(None);
        }
        // Errors fall through to the buffered path, which reports them with
        // its usual accounting.
        let Ok(vbs) = self.manager.repository().fetch(name) else {
            return StreamingAttempt::Buffered(None);
        };
        let (w, h) = (vbs.width().max(1), vbs.height().max(1));
        let Some(origin) = self.manager.find_free_region(w, h) else {
            return StreamingAttempt::Buffered(Some(vbs));
        };
        // Committed to streaming. From here the order of cache and counter
        // updates mirrors the buffered path exactly: one cache miss (a warm
        // hit for a demoted entry), then decode, then the insert.
        let lookup = self.cache.get(name, vbs.spec());
        debug_assert!(
            !matches!(lookup, CacheLookup::Hot(_)),
            "contains() checked above"
        );
        let warm = matches!(lookup, CacheLookup::Warm);
        let mut staging = self.pool.checkout(*vbs.spec(), w, h);
        let write_start = self.telemetry.now();
        match self
            .manager
            .load_streaming_at(name, &vbs, &mut staging, origin)
        {
            Ok((handle, report)) => {
                self.counters.add(slot::DECODES, 1);
                self.counters.add(slot::DECODE_MICROS, report.micros);
                // Streaming overlaps decode and frame writes in one pass;
                // the whole overlapped region is the write span, and the
                // decode histogram gets the report's decode measurement.
                self.telemetry.record_micros(Stage::Decode, report.micros);
                if warm {
                    self.counters.add(slot::REDECODE_MICROS, report.micros);
                    self.telemetry.record_micros(Stage::Redecode, report.micros);
                    self.telemetry.event_span(
                        EventKind::WarmHit,
                        self.fabric,
                        0,
                        job,
                        vbs.size_bytes(),
                        write_start,
                    );
                }
                self.telemetry.record_span(Stage::Write, write_start);
                self.telemetry.event_span(
                    EventKind::FrameWrite,
                    self.fabric,
                    0,
                    job,
                    w as u64 * h as u64,
                    write_start,
                );
                let image = Arc::new(staging);
                self.cache_insert(name, *vbs.spec(), Arc::clone(&image), report.micros);
                self.residents.insert(
                    job,
                    Resident {
                        handle,
                        name: name.to_string(),
                        priority,
                        loaded_at: self.clock,
                        last_used: self.clock,
                    },
                );
                self.counters.add(slot::LOADS_ACCEPTED, 1);
                StreamingAttempt::Done(Outcome::Loaded {
                    job,
                    handle,
                    origin,
                    evicted: Vec::new(),
                    cache_hit: false,
                })
            }
            Err(e) => {
                self.pool.put(staging);
                if matches!(e, RuntimeError::WriteFault { .. }) {
                    // The fabric refused the streamed write before any
                    // frame landed (the gate runs up front): count the
                    // fault and fall back to the buffered path, whose
                    // retry / re-placement machinery can still save the
                    // load.
                    self.counters.add(slot::WRITE_FAULTS, 1);
                    return StreamingAttempt::Buffered(Some(vbs));
                }
                self.counters.add(slot::LOADS_REJECTED, 1);
                StreamingAttempt::Done(Outcome::Rejected {
                    job,
                    reason: RejectReason::Runtime(e.to_string()),
                    evicted: Vec::new(),
                })
            }
        }
    }

    fn sample_fragmentation(&mut self) {
        let view = self.manager.fabric_view();
        let fragmentation = view.fragmentation();
        self.counters.add(slot::FRAGMENTATION_SAMPLES, 1);
        self.counters
            .float_add(slot::FRAGMENTATION_SUM, fragmentation);
        let total = view.total_area();
        if total > 0 {
            let utilization = 1.0 - view.free_area() as f64 / total as f64;
            self.counters.float_add(slot::UTILIZATION_SUM, utilization);
            // One utilization sample per processed request: the per-fabric
            // occupancy timeline (per-mille payloads keep the event fixed
            // width).
            self.telemetry.event(
                EventKind::Utilization,
                self.fabric,
                0,
                (utilization * 1000.0) as u64,
                (fragmentation * 1000.0) as u64,
            );
        }
    }
}

/// How the streaming fast-path probe resolved a load request.
enum StreamingAttempt {
    /// The load was fully handled on the streaming path.
    Done(Outcome),
    /// The load must take the buffered path; the VBS fetched during the
    /// probe (if the probe got that far) rides along to avoid a second
    /// deserialization.
    Buffered(Option<Vbs>),
}

/// Unloads before relocates before loads, so departures free space first.
fn class_rank(request: &Request) -> u8 {
    match request {
        Request::Unload { .. } => 0,
        Request::Relocate { .. } => 1,
        Request::Load { .. } => 2,
    }
}

fn priority_of(request: &Request) -> u8 {
    match request {
        Request::Load { priority, .. } => *priority,
        _ => u8::MAX,
    }
}
