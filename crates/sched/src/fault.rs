//! Deterministic fault injection for chaos replays.
//!
//! [`FaultInjector`] implements the runtime's [`FaultHook`] seam from a
//! parsed [`FaultPlan`]: per-write faults keyed by this fabric's
//! configuration-write count (each fabric's writes are sequential, so the
//! count is a deterministic clock even under a threaded dispatcher) and
//! whole-fabric outage windows keyed by the replay's logical tick (pushed
//! in by the driver between rounds via [`FaultInjector::set_tick`]).
//! Corrupt-write bit positions are derived from the plan's seed and the
//! write count alone, so two replays of the same plan inject bit-identical
//! faults — the chaos goldens replay twice and diff on exactly that.
//!
//! # Plan format
//!
//! One directive per line; `#` starts a comment:
//!
//! ```text
//! seed 42              # corrupt-bit PRNG seed (default 0)
//! write 17 transient   # the 17th region write is refused, retry succeeds
//! write 23 persistent  # the 23rd region write is refused for good
//! write 31 corrupt     # the 31st write lands, then one bit flips
//! outage 500 900       # fabric offline for ticks 500 ≤ t < 900
//! outage 1200 -        # fabric offline from tick 1200, never recovers
//! ```
//!
//! Write counts are 1-based and count *attempted* region writes on this
//! fabric (loads, scrub rewrites), exactly the calls the controller gates
//! through [`FaultHook::on_region_write`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use vbs_arch::Rect;
use vbs_runtime::{FaultAction, FaultHook};
use vbs_telemetry::{EventKind, Telemetry};

/// What a scheduled per-write fault does (see [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write is refused; a retry succeeds (unless itself scheduled).
    Transient,
    /// The write is refused; retries keep failing only if scheduled too —
    /// the *error* is reported persistent, steering the scheduler straight
    /// to re-placement.
    Persistent,
    /// The write lands, then one seed-derived bit flips.
    Corrupt,
}

impl FaultKind {
    /// Payload code stamped on [`EventKind::FaultInjected`] events.
    const fn code(self) -> u64 {
        match self {
            FaultKind::Transient => 0,
            FaultKind::Persistent => 1,
            FaultKind::Corrupt => 2,
        }
    }
}

/// A half-open `[from, until)` window of ticks the fabric spends offline;
/// `until == None` means it never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First offline tick.
    pub from: u64,
    /// First tick back online (`None` = never).
    pub until: Option<u64>,
}

/// A parsed fault schedule (see the module docs for the text format).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the corrupt-bit derivation.
    pub seed: u64,
    /// Scheduled per-write faults, keyed by 1-based write count.
    pub writes: BTreeMap<u64, FaultKind>,
    /// Offline windows over the replay's logical ticks.
    pub outages: Vec<Outage>,
}

/// A malformed fault-plan line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// Parses the text format of the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan::default();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let fail = |message: String| FaultPlanError { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            let directive = words.next().unwrap_or("");
            let mut arg = |what: &str| {
                words
                    .next()
                    .ok_or_else(|| fail(format!("missing {what}")))
                    .map(str::to_string)
            };
            match directive {
                "seed" => {
                    plan.seed = arg("seed value")?
                        .parse()
                        .map_err(|_| fail("seed must be a u64".into()))?;
                }
                "write" => {
                    let count: u64 = arg("write count")?
                        .parse()
                        .map_err(|_| fail("write count must be a u64".into()))?;
                    if count == 0 {
                        return Err(fail("write counts are 1-based".into()));
                    }
                    let kind = match arg("fault kind")?.as_str() {
                        "transient" => FaultKind::Transient,
                        "persistent" => FaultKind::Persistent,
                        "corrupt" => FaultKind::Corrupt,
                        other => {
                            return Err(fail(format!(
                                "unknown fault kind `{other}` (transient|persistent|corrupt)"
                            )))
                        }
                    };
                    plan.writes.insert(count, kind);
                }
                "outage" => {
                    let from: u64 = arg("outage start tick")?
                        .parse()
                        .map_err(|_| fail("outage start must be a u64".into()))?;
                    let until = match arg("outage end tick (or -)")?.as_str() {
                        "-" => None,
                        tick => Some(
                            tick.parse::<u64>()
                                .map_err(|_| fail("outage end must be a u64 or `-`".into()))?,
                        ),
                    };
                    if until.is_some_and(|u| u <= from) {
                        return Err(fail("outage must end after it starts".into()));
                    }
                    plan.outages.push(Outage { from, until });
                }
                other => return Err(fail(format!("unknown directive `{other}`"))),
            }
            if let Some(extra) = words.next() {
                return Err(fail(format!("trailing `{extra}`")));
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 — the corrupt-bit derivation. Fully determined by its input,
/// which is all the determinism contract needs.
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic [`FaultHook`]: replays a [`FaultPlan`] against
/// one fabric (see the module docs). Telemetry is optional; when installed,
/// every injected write fault emits an [`EventKind::FaultInjected`] event
/// (`a` = kind code, `b` = write count).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Attempted region writes on this fabric so far (the write clock).
    writes: AtomicU64,
    /// The replay's logical tick, pushed in by the driver between rounds.
    tick: AtomicU64,
    telemetry: Telemetry,
    fabric: u16,
}

impl FaultInjector {
    /// Creates an injector replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            writes: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
            fabric: 0,
        }
    }

    /// Installs the registry injected faults are audited into, tagging
    /// events with `fabric`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, fabric: u16) {
        self.telemetry = telemetry;
        self.fabric = fabric;
    }

    /// Advances the injector's logical tick (monotonic; outage windows key
    /// on it). Drivers call this alongside their scheduler's `advance_to`.
    pub fn set_tick(&self, tick: u64) {
        self.tick.fetch_max(tick, Ordering::SeqCst);
    }

    /// The injector's current tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::SeqCst)
    }

    /// Attempted region writes gated so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultHook for FaultInjector {
    fn on_region_write(&self, _region: Rect) -> FaultAction {
        let count = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(kind) = self.plan.writes.get(&count) else {
            return FaultAction::Pass;
        };
        self.telemetry
            .event(EventKind::FaultInjected, self.fabric, 0, kind.code(), count);
        match kind {
            FaultKind::Transient => FaultAction::FailTransient,
            FaultKind::Persistent => FaultAction::FailPersistent,
            FaultKind::Corrupt => FaultAction::Corrupt {
                bit: splitmix64(self.plan.seed ^ count),
            },
        }
    }

    fn offline(&self) -> bool {
        let tick = self.tick.load(Ordering::SeqCst);
        self.plan
            .outages
            .iter()
            .any(|o| tick >= o.from && o.until.is_none_or(|u| tick < u))
    }

    fn on_tick(&self, tick: u64) {
        self.set_tick(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_reject_malformed_lines() {
        let plan = FaultPlan::parse(
            "# chaos plan\n\
             seed 42\n\
             write 3 transient  # third write bounces\n\
             write 5 persistent\n\
             write 7 corrupt\n\
             \n\
             outage 100 200\n\
             outage 900 -\n",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.writes.len(), 3);
        assert_eq!(plan.writes[&3], FaultKind::Transient);
        assert_eq!(
            plan.outages,
            vec![
                Outage {
                    from: 100,
                    until: Some(200)
                },
                Outage {
                    from: 900,
                    until: None
                }
            ]
        );

        for bad in [
            "write 0 transient",
            "write 3 sideways",
            "outage 5 5",
            "outage 5",
            "writ 3 transient",
            "seed 42 extra",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(err.line, 1, "{bad}: {err}");
        }
    }

    #[test]
    fn injection_is_deterministic_and_tick_gated() {
        let plan = FaultPlan::parse("seed 7\nwrite 2 corrupt\noutage 10 20\n").unwrap();
        let replay = |plan: &FaultPlan| {
            let injector = FaultInjector::new(plan.clone());
            let region = Rect::at_origin(2, 2);
            let first = injector.on_region_write(region);
            let second = injector.on_region_write(region);
            let offline_before = injector.offline();
            injector.set_tick(10);
            let offline_during = injector.offline();
            injector.set_tick(20);
            let offline_after = injector.offline();
            (first, second, offline_before, offline_during, offline_after)
        };
        let a = replay(&plan);
        let b = replay(&plan);
        assert_eq!(a, b, "two runs of one plan must inject identically");
        assert_eq!(a.0, FaultAction::Pass);
        assert!(matches!(a.1, FaultAction::Corrupt { .. }));
        assert!(!a.2);
        assert!(a.3);
        assert!(!a.4);
    }
}
