//! A shared pool of recycled [`TaskBitstream`] buffers.
//!
//! De-virtualizing a stream needs one decoded-image buffer per load; at
//! fleet scale that is the single biggest allocation of the hot path
//! (`width · height` frames, each with its own word vector). The pool closes
//! the loop: buffers checked out by decode workers come back when the decode
//! cache evicts their image (see [`crate::DecodeCache`]) or when a worker
//! abandons a failed decode, and [`TaskBitstream::reset`] reshapes a
//! recycled buffer in place, so steady-state decoding recycles memory
//! instead of allocating it.
//!
//! The pool is `Clone` + thread-safe (a shared handle): one pool typically
//! serves every fabric of a [`crate::MultiFabricScheduler`] plus its decode
//! worker threads.

use std::sync::{Arc, Mutex};
use vbs_arch::ArchSpec;
use vbs_bitstream::TaskBitstream;

/// Counters of a [`BitstreamPool`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by a recycled buffer (no allocation).
    pub reused: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub fresh: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
    /// Returns dropped because the pool was full or the buffer was still
    /// shared (an `Arc` with other owners cannot be recycled).
    pub dropped: u64,
    /// Buffers currently parked in the pool.
    pub parked: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    buffers: Vec<TaskBitstream>,
    reused: u64,
    fresh: u64,
    recycled: u64,
    dropped: u64,
}

/// A bounded, thread-safe free-list of decoded-image buffers (see the module
/// docs). Cloning the pool clones the *handle*; all clones share one
/// free-list.
#[derive(Debug, Clone)]
pub struct BitstreamPool {
    inner: Arc<Mutex<PoolInner>>,
    capacity: usize,
}

impl Default for BitstreamPool {
    fn default() -> Self {
        BitstreamPool::new(32)
    }
}

impl BitstreamPool {
    /// Creates a pool parking at most `capacity` buffers (0 disables
    /// recycling: every checkout allocates, every return drops).
    pub fn new(capacity: usize) -> Self {
        BitstreamPool {
            inner: Arc::new(Mutex::new(PoolInner::default())),
            capacity,
        }
    }

    /// Checks a buffer out of the pool, reshaped in place to an all-empty
    /// `width` × `height` task of `spec`; allocates a fresh buffer when the
    /// pool is empty. Preference goes to the parked buffer whose frame count
    /// matches the request (reshaping it is free).
    pub fn checkout(&self, spec: ArchSpec, width: u16, height: u16) -> TaskBitstream {
        let wanted = width as usize * height as usize;
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        let pick = inner
            .buffers
            .iter()
            .position(|b| b.spec() == &spec && b.macro_count() == wanted)
            .or_else(|| {
                if inner.buffers.is_empty() {
                    None
                } else {
                    Some(inner.buffers.len() - 1)
                }
            });
        match pick {
            Some(i) => {
                let mut buffer = inner.buffers.swap_remove(i);
                inner.reused += 1;
                drop(inner);
                buffer.reset(spec, width, height);
                buffer
            }
            None => {
                inner.fresh += 1;
                drop(inner);
                TaskBitstream::empty(spec, width, height)
            }
        }
    }

    /// Returns a buffer to the pool (dropped silently when full).
    pub fn put(&self, buffer: TaskBitstream) {
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        if inner.buffers.len() < self.capacity {
            inner.recycled += 1;
            inner.buffers.push(buffer);
        } else {
            inner.dropped += 1;
        }
    }

    /// Recycles a shared decoded image if this handle is its last owner —
    /// the decode-cache eviction path: an evicted entry whose `Arc` is no
    /// longer referenced by any resident load goes back into circulation.
    pub fn recycle(&self, image: Arc<TaskBitstream>) {
        match Arc::try_unwrap(image) {
            Ok(buffer) => self.put(buffer),
            Err(_still_shared) => {
                let mut inner = self.inner.lock().expect("pool lock never poisoned");
                inner.dropped += 1;
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("pool lock never poisoned");
        PoolStats {
            reused: inner.reused,
            fresh: inner.fresh,
            recycled: inner.recycled,
            dropped: inner.dropped,
            parked: inner.buffers.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Coord;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn checkout_prefers_a_matching_recycled_buffer() {
        let pool = BitstreamPool::new(4);
        let mut a = pool.checkout(spec(), 3, 3);
        a.frame_mut(Coord::new(1, 1)).set_bit(0, true);
        pool.put(a);
        // A mismatched checkout still reuses (reshaping is free) …
        pool.put(pool.checkout(spec(), 2, 2));
        // … and a matching one is preferred over allocating.
        let b = pool.checkout(spec(), 3, 3);
        assert_eq!(b.macro_count(), 9);
        assert_eq!(b.popcount(), 0);
        let stats = pool.stats();
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.recycled, 2);
        assert_eq!(stats.parked, 0);
    }

    #[test]
    fn recycle_only_reclaims_sole_owners() {
        let pool = BitstreamPool::new(4);
        let image = Arc::new(pool.checkout(spec(), 2, 2));
        let keep = Arc::clone(&image);
        pool.recycle(image);
        assert_eq!(pool.stats().parked, 0);
        assert_eq!(pool.stats().dropped, 1);
        pool.recycle(keep);
        assert_eq!(pool.stats().parked, 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn zero_capacity_disables_recycling() {
        let pool = BitstreamPool::new(0);
        pool.put(pool.checkout(spec(), 2, 2));
        assert_eq!(pool.stats().parked, 0);
        assert_eq!(pool.stats().dropped, 1);
    }
}
