//! The fleet-wide recycled decode-state pool.
//!
//! The pool itself now lives in `vbs-runtime` ([`vbs_runtime::ScratchPool`])
//! so the runtime's parallel decode lanes and the scheduler layer recycle
//! through **one** free-list: staging buffers evicted from any fabric's
//! decode cache feed the next decode anywhere — including the controllers'
//! persistent [`vbs_runtime::DecodeWorkerPool`] lanes and the multi-fabric
//! pipeline workers, which also park their [`vbs_core::DecodeScratch`]
//! arenas here. The scheduler-facing name is kept for compatibility.

pub use vbs_runtime::{ScratchPool as BitstreamPool, ScratchPoolStats as PoolStats};
