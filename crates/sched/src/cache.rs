//! LRU cache of decoded task bit-streams.
//!
//! De-virtualizing a Virtual Bit-Stream is the dominant cost of a run-time
//! load (Section II-C). The decoded image of a task is position independent
//! — the *same* raw frames are written wherever the task lands — so repeated
//! loads of one task can reuse a cached [`TaskBitstream`] and skip decoding
//! entirely. The cache is keyed by `(task name, architecture spec)` so a
//! repository holding streams for several fabrics never aliases.

use std::sync::Arc;
use vbs_arch::ArchSpec;
use vbs_bitstream::TaskBitstream;

/// Hit/miss counters of a [`DecodeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads served from the cache.
    pub hits: u64,
    /// Loads that had to decode.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    spec: ArchSpec,
    task: Arc<TaskBitstream>,
    last_used: u64,
}

/// An LRU cache of decoded task bit-streams keyed by `(task, spec)`.
#[derive(Debug)]
pub struct DecodeCache {
    capacity: usize,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    clock: u64,
}

impl DecodeCache {
    /// Creates a cache holding at most `capacity` decoded streams.
    /// `capacity` 0 disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        DecodeCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            clock: 0,
        }
    }

    /// Looks up the decoded stream of `(name, spec)`, refreshing its LRU
    /// stamp and counting a hit or a miss.
    pub fn get(&mut self, name: &str, spec: &ArchSpec) -> Option<Arc<TaskBitstream>> {
        self.clock += 1;
        let clock = self.clock;
        match self
            .entries
            .iter_mut()
            .find(|e| e.name == name && e.spec == *spec)
        {
            Some(entry) => {
                entry.last_used = clock;
                self.hits += 1;
                Some(Arc::clone(&entry.task))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the decoded stream of `(name, spec)`, evicting
    /// the least recently used entry when the cache is full.
    ///
    /// The displaced stream — the replaced image or the LRU victim — is
    /// returned so callers can recycle its buffer into a
    /// [`crate::BitstreamPool`] instead of dropping a task-sized allocation
    /// on the floor.
    pub fn insert(
        &mut self,
        name: &str,
        spec: ArchSpec,
        task: Arc<TaskBitstream>,
    ) -> Option<Arc<TaskBitstream>> {
        if self.capacity == 0 {
            return Some(task);
        }
        self.clock += 1;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.name == name && e.spec == spec)
        {
            let displaced = std::mem::replace(&mut entry.task, task);
            entry.last_used = self.clock;
            return Some(displaced);
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                evicted = Some(self.entries.swap_remove(lru).task);
            }
        }
        self.entries.push(Entry {
            name: name.to_string(),
            spec,
            task,
            last_used: self.clock,
        });
        evicted
    }

    /// Whether a decoded stream of `(name, spec)` is cached, without
    /// touching the hit/miss counters or the LRU stamps. The multi-fabric
    /// decode pipeline uses this to plan which streams still need decoding.
    pub fn contains(&self, name: &str, spec: &ArchSpec) -> bool {
        self.entries
            .iter()
            .any(|e| e.name == name && e.spec == *spec)
    }

    /// Whether any decoded stream of task `name` is cached (any spec),
    /// without touching the counters. Shard policies use this to route a
    /// request to a fabric that already holds the task's decode state.
    pub fn contains_name(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops every entry of task `name` (all specs). Required after a
    /// repository re-registers a different stream under an existing name.
    pub fn invalidate(&mut self, name: &str) {
        self.entries.retain(|e| e.name != name);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Coord;

    fn task(bit: usize) -> Arc<TaskBitstream> {
        let mut t = TaskBitstream::empty(ArchSpec::paper_example(), 2, 2);
        t.frame_mut(Coord::new(0, 0)).set_bit(bit, true);
        Arc::new(t)
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let spec = ArchSpec::paper_example();
        let mut cache = DecodeCache::new(2);
        assert!(cache.get("a", &spec).is_none());
        assert!(cache.insert("a", spec, task(1)).is_none());
        assert!(cache.insert("b", spec, task(2)).is_none());
        assert!(cache.get("a", &spec).is_some());
        // "b" is now least recently used; inserting "c" evicts and returns it.
        let evicted = cache.insert("c", spec, task(3)).expect("lru victim");
        assert_eq!(evicted.popcount(), 1);
        assert!(evicted.frame(Coord::new(0, 0)).bit(2));
        assert!(cache.get("b", &spec).is_none());
        assert!(cache.get("a", &spec).is_some());
        assert!(cache.get("c", &spec).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!((stats.hit_rate() - 3.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn different_specs_do_not_alias() {
        let a = ArchSpec::paper_example();
        let b = ArchSpec::paper_evaluation();
        let mut cache = DecodeCache::new(4);
        cache.insert("t", a, task(1));
        assert!(cache.get("t", &b).is_none());
        assert!(cache.get("t", &a).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let spec = ArchSpec::paper_example();
        let mut cache = DecodeCache::new(0);
        cache.insert("a", spec, task(1));
        assert!(cache.get("a", &spec).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
