//! Byte-budgeted two-tier cache of task bit-streams.
//!
//! De-virtualizing a Virtual Bit-Stream is the dominant cost of a run-time
//! load (Section II-C). The decoded image of a task is position independent
//! — the *same* raw frames are written wherever the task lands — so repeated
//! loads of one task can reuse a cached [`TaskBitstream`] and skip decoding
//! entirely. The cache is keyed by `(task name, architecture spec)` so a
//! repository holding streams for several fabrics never aliases.
//!
//! At production fabric sizes the decoded arenas dominate memory (a 100×100
//! image is ~3 orders of magnitude larger than its compressed VBS), so the
//! cache holds two tiers under a [`CacheBudget`]:
//!
//! - **Hot** entries keep the decoded `FrameStore` arena — a hit is a
//!   zero-cost `Arc` clone, exactly the classic LRU path.
//! - **Warm** entries keep only the compressed VBS bytes — a hit re-decodes
//!   through the pooled decode lanes (allocation-free once the pools are
//!   warm) and counts as a miss in the classic hit/miss counters.
//!
//! Under byte pressure a hot entry is *demoted* to warm instead of evicted
//! outright: its decode cost is preserved as metadata and its compressed
//! bytes stay resident, so the next load pays a cheap pooled re-decode
//! rather than a repository round-trip of unknown cost. A cost model —
//! measured decode micros × observed hit count per decoded byte — picks
//! demotion victims, so expensive-to-decode, frequently-hit tasks keep
//! their hot slots. With both budgets unbounded (the default) the cache
//! behaves bit-identically to the classic count-capped LRU: nothing is ever
//! demoted and the warm tier stays empty.

use std::sync::Arc;
use vbs_arch::ArchSpec;
use vbs_bitstream::TaskBitstream;

/// Byte budgets of the two cache tiers. `0` means **unbounded** (the same
/// sentinel convention as `SchedulerConfig::compaction_frame_budget`); the
/// default is unbounded on both tiers, which reproduces the classic
/// count-capped LRU exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    /// Byte budget of the hot tier (decoded arenas + their compressed
    /// bytes). 0 = unbounded.
    pub hot_bytes: u64,
    /// Byte budget of the warm tier (compressed bytes only). 0 = unbounded.
    pub warm_bytes: u64,
}

impl CacheBudget {
    /// An explicitly unbounded budget (the default).
    pub const UNBOUNDED: CacheBudget = CacheBudget {
        hot_bytes: 0,
        warm_bytes: 0,
    };

    /// Whether both tiers are unbounded — the classic-LRU compatibility
    /// regime where no entry is ever demoted.
    pub fn is_unbounded(&self) -> bool {
        self.hot_bytes == 0 && self.warm_bytes == 0
    }
}

/// The outcome of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// The decoded arena is resident: use it directly (classic hit).
    Hot(Arc<TaskBitstream>),
    /// The entry is known but holds only compressed bytes: re-decode
    /// through the pooled lanes. Counted as a miss in the classic counters
    /// plus a `warm_hits` bump.
    Warm,
    /// Nothing cached.
    Miss,
}

/// What an insert displaced, so callers can recycle buffers and record
/// telemetry. `displaced` carries every decoded arena the insert released —
/// replaced images, eviction victims and demoted entries — for recycling
/// into a [`crate::BitstreamPool`]; it is empty (no allocation) on the
/// common pressure-free insert.
#[derive(Debug, Default)]
pub struct InsertOutcome {
    /// Decoded arenas released by this insert (recycle these).
    pub displaced: Vec<Arc<TaskBitstream>>,
    /// Hot entries that fell back to their compressed bytes.
    pub demoted: u64,
    /// Warm entries dropped entirely under warm-tier pressure.
    pub dropped: u64,
    /// Whether this insert gave a previously-warm entry its arena back.
    pub promoted: bool,
}

/// Hit/miss counters and byte accounting of a [`DecodeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads served from a resident decoded arena (hot hits).
    pub hits: u64,
    /// Loads that had to decode (true misses **and** warm hits).
    pub misses: u64,
    /// The subset of `misses` that found compressed bytes resident and
    /// re-decoded through the pooled lanes.
    pub warm_hits: u64,
    /// Hot entries currently cached (decoded arenas).
    pub entries: usize,
    /// Warm entries currently cached (compressed bytes only).
    pub warm_entries: usize,
    /// Maximum number of hot entries.
    pub capacity: usize,
    /// Bytes held by the hot tier (decoded arenas + compressed copies).
    pub hot_bytes: u64,
    /// Bytes held by the warm tier (compressed bytes).
    pub warm_bytes: u64,
    /// Total hot→warm transitions.
    pub demotions: u64,
    /// Total warm→hot transitions.
    pub promotions: u64,
    /// Inserts the admission gate held in the warm tier because the hot
    /// tier was full of higher-value entries.
    pub warm_admissions: u64,
}

impl CacheStats {
    /// Hot-hit rate in `[0, 1]`; 0 when nothing was looked up yet. Warm
    /// hits count as misses here (they pay a decode), matching the classic
    /// counters exactly.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Fraction of lookups that avoided a repository-shaped cold miss
    /// (hot hits + warm re-decodes) in `[0, 1]`.
    pub fn residency_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.warm_hits) as f64 / total as f64
    }

    /// Total bytes resident across both tiers.
    pub fn resident_bytes(&self) -> u64 {
        self.hot_bytes + self.warm_bytes
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    spec: ArchSpec,
    /// The decoded arena; `None` = warm (compressed bytes only).
    task: Option<Arc<TaskBitstream>>,
    /// The compressed VBS bytes, kept in both tiers (hot entries need them
    /// at demotion time; warm entries are nothing but them).
    compressed: Vec<u8>,
    /// Size of the decoded arena, remembered across demotion for the cost
    /// model and promotion accounting.
    decoded_bytes: u64,
    /// Measured decode cost of this task (microseconds, latest observed).
    decode_micros: u64,
    /// Lookups that found this entry (any tier).
    hits: u64,
    last_used: u64,
}

impl Entry {
    fn is_hot(&self) -> bool {
        self.task.is_some()
    }

    fn bytes(&self) -> u64 {
        match &self.task {
            Some(_) => self.decoded_bytes + self.compressed.len() as u64,
            None => self.compressed.len() as u64,
        }
    }

    /// The cost model's notion of how much this entry is worth keeping:
    /// measured decode cost × observed hit frequency. Compared per byte via
    /// cross-multiplication, so no floats enter the eviction order.
    fn value(&self) -> u128 {
        self.decode_micros.max(1) as u128 * (self.hits + 1) as u128
    }
}

/// Returns whether `a` is a poorer keep than `b` — lower value density
/// (value per byte at stake), ties broken LRU-first.
fn poorer(a: &Entry, b: &Entry, at_stake: impl Fn(&Entry) -> u64) -> bool {
    let lhs = a.value() * at_stake(b).max(1) as u128;
    let rhs = b.value() * at_stake(a).max(1) as u128;
    lhs < rhs || (lhs == rhs && a.last_used < b.last_used)
}

/// Hot-admission hysteresis: when the hot tier is over budget, a candidate
/// must be worth at least this many times the poorest incumbent's value
/// density before it may displace it. Without the margin, two entries of
/// near-equal density flip-flop across the tier boundary — every flip is a
/// full re-decode — because each promotion demotes the other and a warm
/// hit bumps the demoted entry right back over the line.
const ADMISSION_MARGIN: u128 = 2;

/// A two-tier (hot decoded / warm compressed) cache of task bit-streams
/// keyed by `(task, spec)`, count-capped on hot entries and byte-budgeted
/// on both tiers (see the module docs).
#[derive(Debug)]
pub struct DecodeCache {
    capacity: usize,
    budget: CacheBudget,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    warm_hits: u64,
    demotions: u64,
    promotions: u64,
    warm_admissions: u64,
    clock: u64,
}

impl DecodeCache {
    /// Creates an unbounded-budget cache holding at most `capacity` decoded
    /// streams — the classic LRU. `capacity` 0 disables caching (every
    /// lookup misses).
    pub fn new(capacity: usize) -> Self {
        DecodeCache::with_budget(capacity, CacheBudget::UNBOUNDED)
    }

    /// Creates a cache holding at most `capacity` decoded streams under
    /// `budget` (0 bytes on a tier = unbounded).
    pub fn with_budget(capacity: usize, budget: CacheBudget) -> Self {
        DecodeCache {
            capacity,
            budget,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            warm_hits: 0,
            demotions: 0,
            promotions: 0,
            warm_admissions: 0,
            clock: 0,
        }
    }

    /// The configured tier budgets.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Looks up `(name, spec)`, refreshing its LRU stamp and counting a
    /// hot hit, a warm hit (classic miss + `warm_hits`), or a miss.
    pub fn get(&mut self, name: &str, spec: &ArchSpec) -> CacheLookup {
        self.clock += 1;
        let clock = self.clock;
        match self
            .entries
            .iter_mut()
            .find(|e| e.name == name && e.spec == *spec)
        {
            Some(entry) => {
                entry.last_used = clock;
                entry.hits += 1;
                match &entry.task {
                    Some(task) => {
                        self.hits += 1;
                        CacheLookup::Hot(Arc::clone(task))
                    }
                    None => {
                        self.misses += 1;
                        self.warm_hits += 1;
                        CacheLookup::Warm
                    }
                }
            }
            None => {
                self.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Inserts (or replaces, or promotes) the decoded stream of
    /// `(name, spec)` together with its compressed bytes and the measured
    /// decode cost, then enforces the count cap and both byte budgets.
    ///
    /// Under an unbounded budget this is exactly the classic LRU insert:
    /// the least-recently-used entry is evicted outright when the count cap
    /// overflows. Under a finite budget the cost model gates admission —
    /// a stream whose value density does not clearly beat the poorest hot
    /// incumbent (see [`ADMISSION_MARGIN`]) lands in (or stays in) the warm
    /// tier instead of churning the hot set — the count-cap victim is
    /// *demoted* to warm instead of dropped, and byte pressure demotes
    /// minimum-score hot entries then drops minimum-score warm entries
    /// until both tiers fit.
    pub fn insert(
        &mut self,
        name: &str,
        spec: ArchSpec,
        task: Arc<TaskBitstream>,
        compressed: Vec<u8>,
        decode_micros: u64,
    ) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        if self.capacity == 0 {
            outcome.displaced.push(task);
            return outcome;
        }
        self.clock += 1;
        let decoded_bytes = task.size_bytes();
        if let Some(index) = self
            .entries
            .iter()
            .position(|e| e.name == name && e.spec == spec)
        {
            let (was_hot, accrued_value, resident_compressed) = {
                let entry = &self.entries[index];
                (
                    entry.is_hot(),
                    decode_micros.max(1) as u128 * (entry.hits + 1) as u128,
                    entry.compressed.len() as u64,
                )
            };
            let promote =
                was_hot || self.deserves_hot(decoded_bytes, resident_compressed, accrued_value);
            if promote {
                if self.entries[index].task.is_none() {
                    self.promotions += 1;
                    outcome.promoted = true;
                }
                if let Some(displaced) = self.entries[index].task.replace(task) {
                    outcome.displaced.push(displaced);
                }
            } else {
                // The cost model held the entry warm: the freshly decoded
                // arena is surplus, but the warm hit still refreshed the
                // entry's cost metadata below.
                self.warm_admissions += 1;
                outcome.displaced.push(task);
            }
            let entry = &mut self.entries[index];
            if !compressed.is_empty() {
                entry.compressed = compressed;
            }
            entry.decoded_bytes = decoded_bytes;
            entry.decode_micros = decode_micros;
            entry.last_used = self.clock;
        } else {
            let admit = self.deserves_hot(
                decoded_bytes,
                compressed.len() as u64,
                decode_micros.max(1) as u128,
            );
            if admit && self.hot_count() >= self.capacity {
                self.displace_count_victim(&mut outcome);
            }
            let task = if admit {
                Some(task)
            } else {
                self.warm_admissions += 1;
                outcome.displaced.push(task);
                None
            };
            self.entries.push(Entry {
                name: name.to_string(),
                spec,
                task,
                compressed,
                decoded_bytes,
                decode_micros,
                hits: 0,
                last_used: self.clock,
            });
        }
        self.enforce_budget(&mut outcome);
        outcome
    }

    /// The cost model's hot-admission gate: whether a stream of
    /// `decoded_bytes`/`compressed_len` shape and `value`
    /// (decode-micros × hit-frequency, see [`Entry::value`]) deserves a hot
    /// slot right now. Admission is free under an unbounded budget or while
    /// the hot tier has byte headroom; under pressure the candidate must
    /// beat the poorest incumbent's value density by [`ADMISSION_MARGIN`]×
    /// to displace it, otherwise it belongs in the warm tier.
    fn deserves_hot(&self, decoded_bytes: u64, compressed_len: u64, value: u128) -> bool {
        if self.budget.is_unbounded() || self.budget.hot_bytes == 0 {
            return true;
        }
        if self.hot_bytes_used() + decoded_bytes + compressed_len <= self.budget.hot_bytes {
            return true;
        }
        let Some(victim) = self.min_score_index(|e| e.is_hot(), |e| e.decoded_bytes) else {
            return true;
        };
        let victim = &self.entries[victim];
        value * u128::from(victim.decoded_bytes.max(1))
            >= ADMISSION_MARGIN * victim.value() * u128::from(decoded_bytes.max(1))
    }

    /// Evicts (unbounded budget) or demotes (finite budget) the
    /// least-recently-used **hot** entry to make room for one more.
    fn displace_count_victim(&mut self, outcome: &mut InsertOutcome) {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_hot())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i);
        let Some(index) = victim else { return };
        if self.budget.is_unbounded() {
            // Classic-LRU regime: drop the whole entry, exactly as before.
            let entry = self.entries.swap_remove(index);
            if let Some(task) = entry.task {
                outcome.displaced.push(task);
            }
        } else {
            self.demote(index, outcome);
        }
    }

    /// Drops the decoded arena of entry `index`, keeping its compressed
    /// bytes and cost metadata.
    fn demote(&mut self, index: usize, outcome: &mut InsertOutcome) {
        let entry = &mut self.entries[index];
        if let Some(task) = entry.task.take() {
            outcome.displaced.push(task);
            self.demotions += 1;
            outcome.demoted += 1;
        }
    }

    /// Demotes minimum-score hot entries until the hot tier fits its
    /// budget, then drops minimum-score warm entries until the warm tier
    /// fits its budget.
    fn enforce_budget(&mut self, outcome: &mut InsertOutcome) {
        if self.budget.hot_bytes > 0 {
            while self.hot_bytes_used() > self.budget.hot_bytes {
                let victim = self.min_score_index(|e| e.is_hot(), |e| e.decoded_bytes);
                let Some(index) = victim else { break };
                self.demote(index, outcome);
            }
        }
        if self.budget.warm_bytes > 0 {
            while self.warm_bytes_used() > self.budget.warm_bytes {
                let victim = self.min_score_index(|e| !e.is_hot(), |e| e.compressed.len() as u64);
                let Some(index) = victim else { break };
                self.entries.swap_remove(index);
                outcome.dropped += 1;
            }
        }
    }

    /// Index of the poorest-scoring entry among those matching `tier`,
    /// scoring value per `at_stake` byte.
    fn min_score_index(
        &self,
        tier: impl Fn(&Entry) -> bool,
        at_stake: impl Fn(&Entry) -> u64 + Copy,
    ) -> Option<usize> {
        let mut poorest: Option<usize> = None;
        for (index, entry) in self.entries.iter().enumerate() {
            if !tier(entry) {
                continue;
            }
            match poorest {
                None => poorest = Some(index),
                Some(best) => {
                    if poorer(entry, &self.entries[best], at_stake) {
                        poorest = Some(index);
                    }
                }
            }
        }
        poorest
    }

    fn hot_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_hot()).count()
    }

    fn hot_bytes_used(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.is_hot())
            .map(Entry::bytes)
            .sum()
    }

    fn warm_bytes_used(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| !e.is_hot())
            .map(Entry::bytes)
            .sum()
    }

    /// Whether a **decoded** stream of `(name, spec)` is resident, without
    /// touching the hit/miss counters or the LRU stamps. Warm entries do
    /// not count: they still need a decode, so pipelines planning decode
    /// work must treat them as absent. The multi-fabric decode pipeline
    /// uses this to plan which streams still need decoding.
    pub fn contains(&self, name: &str, spec: &ArchSpec) -> bool {
        self.entries
            .iter()
            .any(|e| e.name == name && e.spec == *spec && e.is_hot())
    }

    /// Whether a decoded stream of task `name` is resident under any spec,
    /// without touching the counters.
    pub fn contains_name(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name && e.is_hot())
    }

    /// Whether the cache retains *any* state for task `name` — a decoded
    /// arena or warm compressed bytes. Shard policies use this for cache
    /// affinity: a warm entry still makes the fabric the cheap place to
    /// route the task (pooled re-decode beats a cold repository miss).
    pub fn retains_name(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The compressed bytes of a warm entry, if `(name, spec)` is warm.
    pub fn warm_compressed(&self, name: &str, spec: &ArchSpec) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.spec == *spec && !e.is_hot())
            .map(|e| e.compressed.as_slice())
    }

    /// Drops every entry in both tiers (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops every entry of task `name` (all specs, both tiers). Required
    /// after a repository re-registers a different stream under an existing
    /// name.
    pub fn invalidate(&mut self, name: &str) {
        self.entries.retain(|e| e.name != name);
    }

    /// Current counters and byte accounting.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            warm_hits: self.warm_hits,
            entries: self.hot_count(),
            warm_entries: self.entries.len() - self.hot_count(),
            capacity: self.capacity,
            hot_bytes: self.hot_bytes_used(),
            warm_bytes: self.warm_bytes_used(),
            demotions: self.demotions,
            promotions: self.promotions,
            warm_admissions: self.warm_admissions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Coord;

    fn task(bit: usize) -> Arc<TaskBitstream> {
        let mut t = TaskBitstream::empty(ArchSpec::paper_example(), 2, 2);
        t.frame_mut(Coord::new(0, 0)).set_bit(bit, true);
        Arc::new(t)
    }

    fn hot(lookup: CacheLookup) -> Option<Arc<TaskBitstream>> {
        match lookup {
            CacheLookup::Hot(task) => Some(task),
            _ => None,
        }
    }

    fn compressed(len: usize) -> Vec<u8> {
        vec![0xAB; len]
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let spec = ArchSpec::paper_example();
        let mut cache = DecodeCache::new(2);
        assert!(hot(cache.get("a", &spec)).is_none());
        assert!(cache
            .insert("a", spec, task(1), compressed(4), 10)
            .displaced
            .is_empty());
        assert!(cache
            .insert("b", spec, task(2), compressed(4), 10)
            .displaced
            .is_empty());
        assert!(hot(cache.get("a", &spec)).is_some());
        // "b" is now least recently used; inserting "c" evicts and returns it.
        let outcome = cache.insert("c", spec, task(3), compressed(4), 10);
        let evicted = outcome.displaced.first().expect("lru victim");
        assert_eq!(evicted.popcount(), 1);
        assert!(evicted.frame(Coord::new(0, 0)).bit(2));
        // Unbounded budget = classic LRU: the victim is gone, not demoted.
        assert!(matches!(cache.get("b", &spec), CacheLookup::Miss));
        assert!(hot(cache.get("a", &spec)).is_some());
        assert!(hot(cache.get("c", &spec)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.warm_entries, 0);
        assert_eq!(stats.warm_hits, 0);
        assert!((stats.hit_rate() - 3.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn different_specs_do_not_alias() {
        let a = ArchSpec::paper_example();
        let b = ArchSpec::paper_evaluation();
        let mut cache = DecodeCache::new(4);
        cache.insert("t", a, task(1), compressed(4), 10);
        assert!(hot(cache.get("t", &b)).is_none());
        assert!(hot(cache.get("t", &a)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let spec = ArchSpec::paper_example();
        let mut cache = DecodeCache::new(0);
        let outcome = cache.insert("a", spec, task(1), compressed(4), 10);
        assert_eq!(outcome.displaced.len(), 1);
        assert!(hot(cache.get("a", &spec)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn count_cap_demotes_instead_of_evicting_under_finite_budget() {
        let spec = ArchSpec::paper_example();
        let budget = CacheBudget {
            hot_bytes: 1 << 30,
            warm_bytes: 1 << 30,
        };
        let mut cache = DecodeCache::with_budget(2, budget);
        cache.insert("a", spec, task(1), compressed(8), 10);
        cache.insert("b", spec, task(2), compressed(8), 10);
        cache.get("a", &spec);
        let outcome = cache.insert("c", spec, task(3), compressed(8), 10);
        assert_eq!(outcome.demoted, 1);
        assert_eq!(outcome.displaced.len(), 1);
        // "b" fell to warm: lookup reports a warm hit, not a miss.
        assert!(matches!(cache.get("b", &spec), CacheLookup::Warm));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.warm_entries, 1);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.demotions, 1);
        assert_eq!(stats.warm_bytes, 8);
    }

    #[test]
    fn byte_pressure_demotes_poorest_scoring_entry() {
        let spec = ArchSpec::paper_example();
        let arena = task(1).size_bytes();
        // Room for exactly two hot entries (arena + 8 compressed bytes each).
        let budget = CacheBudget {
            hot_bytes: 2 * (arena + 8),
            warm_bytes: 0,
        };
        let mut cache = DecodeCache::with_budget(8, budget);
        cache.insert("cheap", spec, task(1), compressed(8), 1);
        cache.insert("dear", spec, task(2), compressed(8), 1_000);
        // "dear" is worth more per byte; the third insert demotes "cheap"
        // even though "dear" is older in LRU order.
        cache.get("cheap", &spec);
        let outcome = cache.insert("c", spec, task(3), compressed(8), 1_000);
        assert_eq!(outcome.demoted, 1);
        assert!(matches!(cache.get("cheap", &spec), CacheLookup::Warm));
        assert!(hot(cache.get("dear", &spec)).is_some());
        let stats = cache.stats();
        assert!(stats.hot_bytes <= budget.hot_bytes);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.warm_entries, 1);
    }

    #[test]
    fn warm_pressure_drops_entries_and_budget_holds() {
        let spec = ArchSpec::paper_example();
        let arena = task(1).size_bytes();
        let budget = CacheBudget {
            hot_bytes: arena + 16,
            warm_bytes: 20,
        };
        let mut cache = DecodeCache::with_budget(8, budget);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            cache.insert(name, spec, task(i + 1), compressed(16), 10);
            let stats = cache.stats();
            assert!(stats.hot_bytes <= budget.hot_bytes, "hot over budget");
            assert!(stats.warm_bytes <= budget.warm_bytes, "warm over budget");
        }
        let stats = cache.stats();
        // One hot slot, one warm slot (16 of 20 bytes); the rest dropped.
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.warm_entries, 1);
        assert!(stats.resident_bytes() <= budget.hot_bytes + budget.warm_bytes);
    }

    #[test]
    fn warm_hits_earn_promotion_through_the_admission_gate() {
        let spec = ArchSpec::paper_example();
        let arena = task(1).size_bytes();
        let budget = CacheBudget {
            hot_bytes: arena + 8,
            warm_bytes: 0,
        };
        let mut cache = DecodeCache::with_budget(8, budget);
        cache.insert("a", spec, task(1), compressed(8), 10);
        // "b" does not clearly beat "a" on value density, so the admission
        // gate holds it warm instead of churning the single hot slot.
        let outcome = cache.insert("b", spec, task(2), compressed(8), 10);
        assert!(!outcome.promoted);
        assert_eq!(outcome.demoted, 0);
        assert_eq!(outcome.displaced.len(), 1, "surplus arena handed back");
        assert_eq!(cache.stats().entries, 1, "\"a\" keeps the hot slot");
        assert_eq!(cache.stats().warm_entries, 1);
        // A warm hit accrues value; the re-decode's insert now clears the
        // admission margin over the hitless incumbent and earns the slot.
        assert!(matches!(cache.get("b", &spec), CacheLookup::Warm));
        let outcome = cache.insert("b", spec, task(2), compressed(8), 10);
        assert!(outcome.promoted);
        assert_eq!(outcome.demoted, 1, "\"a\" fell back to warm");
        assert!(hot(cache.get("b", &spec)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.warm_admissions, 1);
        assert!(stats.hot_bytes <= budget.hot_bytes);
    }

    #[test]
    fn invalidate_drops_both_tiers() {
        let spec = ArchSpec::paper_example();
        let arena = task(1).size_bytes();
        let budget = CacheBudget {
            hot_bytes: arena + 8,
            warm_bytes: 0,
        };
        let mut cache = DecodeCache::with_budget(8, budget);
        cache.insert("a", spec, task(1), compressed(8), 10);
        // The admission gate lands "b" in the warm tier ("a" holds the slot).
        cache.insert("b", spec, task(2), compressed(8), 10);
        assert!(cache.retains_name("b"));
        assert!(!cache.contains_name("b"), "warm entry is not decoded");
        cache.invalidate("b");
        assert!(!cache.retains_name("b"));
        assert!(matches!(cache.get("b", &spec), CacheLookup::Miss));
        assert!(cache.contains_name("a"), "hot entry untouched so far");
        cache.invalidate("a");
        assert!(matches!(cache.get("a", &spec), CacheLookup::Miss));
    }
}
