//! On-line reconfiguration scheduling for Virtual Bit-Streams.
//!
//! The paper's run-time contribution is a *primitive*: one compressed,
//! position-independent stream per task that can be de-virtualized anywhere
//! the task fits. This crate builds the *system* on top of that primitive —
//! the layer a multi-tenant deployment needs once many tasks contend for one
//! fabric:
//!
//! * [`Scheduler`] — a prioritized request queue (load / unload / relocate
//!   with deadlines) over the runtime [`vbs_runtime::TaskManager`];
//! * [`EvictionPolicy`] — who leaves when the fabric is full ([`LruEviction`],
//!   [`PriorityEviction`]); eviction is cheap here because re-loading a task
//!   is just another de-virtualization;
//! * compaction — [`Scheduler::compact`] relocates resident tasks toward the
//!   bottom-left corner to fight external fragmentation, exercising the
//!   paper's fast-relocation use case at scale;
//! * [`DecodeCache`] — an LRU cache of decoded [`vbs_bitstream::TaskBitstream`]s
//!   keyed by `(task, spec)`, so repeated loads skip de-virtualization;
//! * [`BitstreamPool`] — a fleet-wide free-list of decoded-image buffers:
//!   cache evictions recycle into it, decode workers check out of it, so
//!   steady-state decoding allocates nothing
//!   ([`SchedulerConfig::streaming`] additionally overlaps config-memory
//!   writes with the decode of each load);
//! * [`Trace`] / [`replay`] — a deterministic trace format, a seeded
//!   synthetic workload generator and a simulator reporting acceptance
//!   rate, fragmentation, decode time, cache hit rate and relocations;
//! * [`MultiFabricScheduler`] — one request stream sharded over K fabrics
//!   through a pluggable [`ShardPolicy`] ([`RoundRobin`], [`LeastLoaded`],
//!   [`CacheAffinity`]), with cross-fabric migration of capacity-rejected
//!   loads and a decode pipeline that overlaps de-virtualization with
//!   config-memory writes; [`replay_multi`] replays traces against a fleet.
//!
//! Placement is pluggable through [`vbs_runtime::PlacementPolicy`]
//! (first-fit, best-fit, bottom-left skyline) on the manager the scheduler
//! is built over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod corpus;
mod evict;
mod fault;
mod multi;
mod pool;
mod scheduler;
mod shard;
mod sim;
mod trace;

pub use cache::{CacheBudget, CacheLookup, CacheStats, DecodeCache, InsertOutcome};
pub use corpus::{CorpusError, CorpusTask, McncCorpus};
pub use evict::{EvictionPolicy, LruEviction, PriorityEviction, ResidentInfo};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultPlanError, Outage};
pub use multi::{MultiConfig, MultiFabricScheduler, MultiMetrics};
pub use pool::{BitstreamPool, PoolStats};
pub use scheduler::{
    EvacuatedJob, Outcome, RejectReason, Request, SchedMetrics, Scheduler, SchedulerConfig,
};
pub use shard::{
    shard_policy_by_name, CacheAffinity, FabricStatus, LeastLoaded, RoundRobin, ShardPolicy,
    SHARD_POLICY_NAMES,
};
pub use sim::{replay, replay_multi, FabricReport, MultiSimReport, ReplayTarget, SimReport};
pub use trace::{Trace, TraceError, TraceEvent, TraceOp, VariantSwapSpec, WorkloadSpec};
