//! Workload traces: a deterministic event stream the simulator replays.
//!
//! A trace is a tick-ordered list of `load` / `unload` events referencing
//! tasks by repository name and jobs by a caller-chosen id. Traces come from
//! two places: [`Trace::synthetic`] generates one from a seeded RNG (the
//! reproducible heavy-traffic workloads of the benchmarks), and
//! [`Trace::from_text`] parses the line-oriented format below so real
//! workloads can be captured and replayed:
//!
//! ```text
//! # vbs-sched trace v1
//! load <tick> <job> <task> <priority> [deadline]
//! unload <tick> <job>
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One event of a workload trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Tick the event fires at.
    pub tick: u64,
    /// What happens.
    pub op: TraceOp,
}

/// The operation of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A task arrives and wants the fabric.
    Load {
        /// Trace-local job id (unique per trace).
        job: u64,
        /// Task name in the repository.
        task: String,
        /// Request priority.
        priority: u8,
        /// Optional absolute-tick deadline.
        deadline: Option<u64>,
    },
    /// A previously arrived job departs.
    Unload {
        /// The trace-local job id that departs.
        job: u64,
    },
}

/// Errors raised while parsing or serializing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not match the expected syntax.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A task name cannot be represented in the whitespace-separated line
    /// format (empty, contains whitespace, or starts with `#`).
    BadTaskName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::BadTaskName { name } => {
                write!(f, "task name {name:?} cannot appear in a trace file")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parameters of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Task names to draw from (uniformly).
    pub tasks: Vec<String>,
    /// Number of load events to generate (each gets a matching unload).
    pub loads: usize,
    /// Mean ticks between arrivals (inter-arrival is uniform in
    /// `1..=2*mean`).
    pub mean_interarrival: u64,
    /// Mean resident duration in ticks (uniform in `1..=2*mean`).
    pub mean_duration: u64,
    /// Priorities are drawn uniformly from `0..priority_levels` (min 1).
    pub priority_levels: u8,
    /// When set, every load gets `deadline = arrival + slack`.
    pub deadline_slack: Option<u64>,
    /// RNG seed; the same spec always yields the same trace.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tasks: Vec::new(),
            loads: 100,
            mean_interarrival: 4,
            mean_duration: 20,
            priority_levels: 4,
            deadline_slack: None,
            seed: 1,
        }
    }
}

/// A tick-ordered workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The events, sorted by tick (unloads before loads within a tick).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a deterministic synthetic trace: `spec.loads` arrivals with
    /// uniform inter-arrival times, each followed by a departure after a
    /// uniform duration.
    ///
    /// # Panics
    ///
    /// Panics if `spec.tasks` is empty or `spec.loads` is 0.
    pub fn synthetic(spec: &WorkloadSpec) -> Trace {
        assert!(!spec.tasks.is_empty(), "workload needs at least one task");
        assert!(spec.loads > 0, "workload needs at least one load");
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x7ace_5eed_0000_cafe);
        let mut events = Vec::with_capacity(spec.loads * 2);
        let mut tick = 0u64;
        for job in 1..=spec.loads as u64 {
            tick += rng.gen_range(1..=spec.mean_interarrival.max(1) * 2);
            let task = spec.tasks[rng.gen_range(0..spec.tasks.len())].clone();
            let priority = rng.gen_range(0..spec.priority_levels.max(1));
            let deadline = spec.deadline_slack.map(|s| tick + s);
            events.push(TraceEvent {
                tick,
                op: TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                },
            });
            let departure = tick + rng.gen_range(1..=spec.mean_duration.max(1) * 2);
            events.push(TraceEvent {
                tick: departure,
                op: TraceOp::Unload { job },
            });
        }
        let mut trace = Trace { events };
        trace.normalize();
        trace
    }

    /// Sorts events by tick, departures before arrivals within a tick.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| {
            (
                e.tick,
                matches!(e.op, TraceOp::Load { .. }) as u8,
                match &e.op {
                    TraceOp::Load { job, .. } | TraceOp::Unload { job } => *job,
                },
            )
        });
    }

    /// Serializes the trace to the line format of the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadTaskName`] when a task name cannot survive
    /// the whitespace-separated format (repository names are arbitrary
    /// strings; trace files only support names without whitespace that
    /// don't start with `#`).
    pub fn to_text(&self) -> Result<String, TraceError> {
        let mut out = String::from("# vbs-sched trace v1\n");
        for event in &self.events {
            match &event.op {
                TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    if task.is_empty()
                        || task.starts_with('#')
                        || task.chars().any(char::is_whitespace)
                    {
                        return Err(TraceError::BadTaskName { name: task.clone() });
                    }
                    out.push_str(&format!(
                        "load {} {} {} {}",
                        event.tick, job, task, priority
                    ));
                    if let Some(d) = deadline {
                        out.push_str(&format!(" {d}"));
                    }
                    out.push('\n');
                }
                TraceOp::Unload { job } => {
                    out.push_str(&format!("unload {} {}\n", event.tick, job));
                }
            }
        }
        Ok(out)
    }

    /// Parses the line format of the module docs. Blank lines and `#`
    /// comments are ignored; events are re-sorted by tick.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] with the offending line number.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = |reason: &str| TraceError::Malformed {
                line: idx + 1,
                reason: reason.to_string(),
            };
            let mut fields = line.split_whitespace();
            let op = fields.next().expect("non-empty line has a first field");
            match op {
                "load" => {
                    let tick = parse_u64(fields.next(), "tick").map_err(|e| malformed(&e))?;
                    let job = parse_u64(fields.next(), "job").map_err(|e| malformed(&e))?;
                    let task = fields
                        .next()
                        .ok_or_else(|| malformed("missing task name"))?
                        .to_string();
                    let priority = parse_u64(fields.next(), "priority")
                        .map_err(|e| malformed(&e))?
                        .try_into()
                        .map_err(|_| malformed("priority exceeds u8"))?;
                    let deadline = match fields.next() {
                        Some(d) => Some(parse_u64(Some(d), "deadline").map_err(|e| malformed(&e))?),
                        None => None,
                    };
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields"));
                    }
                    events.push(TraceEvent {
                        tick,
                        op: TraceOp::Load {
                            job,
                            task,
                            priority,
                            deadline,
                        },
                    });
                }
                "unload" => {
                    let tick = parse_u64(fields.next(), "tick").map_err(|e| malformed(&e))?;
                    let job = parse_u64(fields.next(), "job").map_err(|e| malformed(&e))?;
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields"));
                    }
                    events.push(TraceEvent {
                        tick,
                        op: TraceOp::Unload { job },
                    });
                }
                other => return Err(malformed(&format!("unknown op `{other}`"))),
            }
        }
        let mut trace = Trace { events };
        trace.normalize();
        Ok(trace)
    }
}

fn parse_u64(field: Option<&str>, what: &str) -> Result<u64, String> {
    field
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            tasks: vec!["a".into(), "b".into()],
            loads: 25,
            deadline_slack: Some(7),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn synthetic_is_deterministic_and_paired() {
        let t1 = Trace::synthetic(&spec());
        let t2 = Trace::synthetic(&spec());
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 50);
        let loads = t1
            .events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Load { .. }))
            .count();
        assert_eq!(loads, 25);
        // Ticks are sorted.
        assert!(t1.events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn text_roundtrip_preserves_the_trace() {
        let trace = Trace::synthetic(&spec());
        let text = trace.to_text().unwrap();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn serialization_rejects_unrepresentable_task_names() {
        let mut trace = Trace::default();
        trace.events.push(TraceEvent {
            tick: 1,
            op: TraceOp::Load {
                job: 1,
                task: "my task".into(),
                priority: 0,
                deadline: None,
            },
        });
        assert!(matches!(
            trace.to_text(),
            Err(TraceError::BadTaskName { .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            Trace::from_text("load 1 2"),
            Err(TraceError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Trace::from_text("# ok\nnop 3 4"),
            Err(TraceError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            Trace::from_text("unload 1 2 3"),
            Err(TraceError::Malformed { .. })
        ));
        let ok = Trace::from_text("\n# comment\nload 3 1 fir 2 9\nunload 5 1\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(
            ok.events[0].op,
            TraceOp::Load {
                job: 1,
                task: "fir".into(),
                priority: 2,
                deadline: Some(9),
            }
        );
    }
}
