//! Workload traces: a deterministic event stream the simulator replays.
//!
//! A trace is a tick-ordered list of `load` / `unload` events referencing
//! tasks by repository name and jobs by a caller-chosen id. Traces come from
//! two places: [`Trace::synthetic`] generates one from a seeded RNG (the
//! reproducible heavy-traffic workloads of the benchmarks), and
//! [`Trace::from_text`] parses the line-oriented format below so real
//! workloads can be captured and replayed:
//!
//! ```text
//! # vbs-sched trace v1
//! load <tick> <job> <task> <priority> [deadline]
//! unload <tick> <job>
//! swap <tick> <job> <task> <priority> [deadline]
//! ```
//!
//! `swap` atomically replaces the resident configuration of a live job with
//! a different pre-encoded variant of it (the ForgeMorph-style scenario:
//! one task encoded at several sizes/latencies, exchanged on the fly under
//! a deadline). Within a tick the simulator orders `unload` < `swap` <
//! `load`, so a swap can reuse the area its own job just vacated before
//! new arrivals compete for it. [`Trace::variant_swap`] generates such a
//! scenario, optionally over a background workload.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One event of a workload trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Tick the event fires at.
    pub tick: u64,
    /// What happens.
    pub op: TraceOp,
}

/// The operation of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A task arrives and wants the fabric.
    Load {
        /// Trace-local job id (unique per trace).
        job: u64,
        /// Task name in the repository.
        task: String,
        /// Request priority.
        priority: u8,
        /// Optional absolute-tick deadline.
        deadline: Option<u64>,
    },
    /// A previously arrived job departs.
    Unload {
        /// The trace-local job id that departs.
        job: u64,
    },
    /// A live job exchanges its resident configuration for another
    /// pre-encoded variant (unload + load under one trace-local job id).
    Swap {
        /// The trace-local job id being morphed.
        job: u64,
        /// Repository name of the variant to load.
        task: String,
        /// Priority of the replacement load.
        priority: u8,
        /// Optional absolute-tick deadline for the replacement load.
        deadline: Option<u64>,
    },
}

/// Errors raised while parsing or serializing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not match the expected syntax.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A task name cannot be represented in the whitespace-separated line
    /// format (empty, contains whitespace, or starts with `#`).
    BadTaskName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::BadTaskName { name } => {
                write!(f, "task name {name:?} cannot appear in a trace file")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parameters of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Task names to draw from (uniformly).
    pub tasks: Vec<String>,
    /// Number of load events to generate (each gets a matching unload).
    pub loads: usize,
    /// Mean ticks between arrivals (inter-arrival is uniform in
    /// `1..=2*mean`).
    pub mean_interarrival: u64,
    /// Mean resident duration in ticks (uniform in `1..=2*mean`).
    pub mean_duration: u64,
    /// Priorities are drawn uniformly from `0..priority_levels` (min 1).
    pub priority_levels: u8,
    /// When set, every load gets `deadline = arrival + slack`.
    pub deadline_slack: Option<u64>,
    /// RNG seed; the same spec always yields the same trace.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tasks: Vec::new(),
            loads: 100,
            mean_interarrival: 4,
            mean_duration: 20,
            priority_levels: 4,
            deadline_slack: None,
            seed: 1,
        }
    }
}

/// Parameters of the variant-swap scenario generator
/// ([`Trace::variant_swap`]): one logical task pre-encoded as several
/// variants (sizes/latencies), exchanged on the fly under a deadline while
/// an optional background workload keeps the fabric contended.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSwapSpec {
    /// Repository names of the variants, cycled through in order. The
    /// first is loaded at `start`; each swap advances to the next.
    pub variants: Vec<String>,
    /// Number of swap events after the initial load.
    pub swaps: usize,
    /// Ticks between consecutive swaps.
    pub period: u64,
    /// Every load/swap gets `deadline = tick + slack` when set.
    pub deadline_slack: Option<u64>,
    /// Priority of the variant job's load and swap requests.
    pub priority: u8,
    /// Tick of the initial variant load.
    pub start: u64,
    /// Optional background workload merged into the trace (its job ids are
    /// `1..=loads`; the variant job comes after them).
    pub background: Option<WorkloadSpec>,
}

impl Default for VariantSwapSpec {
    fn default() -> Self {
        VariantSwapSpec {
            variants: Vec::new(),
            swaps: 8,
            period: 16,
            deadline_slack: Some(4),
            priority: 3,
            start: 1,
            background: None,
        }
    }
}

/// A tick-ordered workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The events, sorted by tick (unloads before loads within a tick).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a deterministic synthetic trace: `spec.loads` arrivals with
    /// uniform inter-arrival times, each followed by a departure after a
    /// uniform duration.
    ///
    /// # Panics
    ///
    /// Panics if `spec.tasks` is empty or `spec.loads` is 0.
    pub fn synthetic(spec: &WorkloadSpec) -> Trace {
        assert!(!spec.tasks.is_empty(), "workload needs at least one task");
        assert!(spec.loads > 0, "workload needs at least one load");
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x7ace_5eed_0000_cafe);
        let mut events = Vec::with_capacity(spec.loads * 2);
        let mut tick = 0u64;
        for job in 1..=spec.loads as u64 {
            tick += rng.gen_range(1..=spec.mean_interarrival.max(1) * 2);
            let task = spec.tasks[rng.gen_range(0..spec.tasks.len())].clone();
            let priority = rng.gen_range(0..spec.priority_levels.max(1));
            let deadline = spec.deadline_slack.map(|s| tick + s);
            events.push(TraceEvent {
                tick,
                op: TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                },
            });
            let departure = tick + rng.gen_range(1..=spec.mean_duration.max(1) * 2);
            events.push(TraceEvent {
                tick: departure,
                op: TraceOp::Unload { job },
            });
        }
        let mut trace = Trace { events };
        trace.normalize();
        trace
    }

    /// Generates the deterministic variant-swap scenario: one long-lived
    /// job loads `variants[0]` at `spec.start`, then swaps to the next
    /// variant (cycling) every `spec.period` ticks, `spec.swaps` times, and
    /// finally departs one period after the last swap. When
    /// `spec.background` is set, that synthetic workload is merged in; its
    /// job ids stay `1..=loads` and the variant job id comes after them.
    ///
    /// # Panics
    ///
    /// Panics if `spec.variants` is empty or `spec.period` is 0.
    pub fn variant_swap(spec: &VariantSwapSpec) -> Trace {
        assert!(
            !spec.variants.is_empty(),
            "variant swap needs at least one variant"
        );
        assert!(spec.period > 0, "variant swap needs a non-zero period");
        let mut trace = match &spec.background {
            Some(bg) => Trace::synthetic(bg),
            None => Trace::default(),
        };
        let job = spec.background.as_ref().map_or(0, |bg| bg.loads as u64) + 1;
        let deadline = |tick: u64| spec.deadline_slack.map(|s| tick + s);
        trace.events.push(TraceEvent {
            tick: spec.start,
            op: TraceOp::Load {
                job,
                task: spec.variants[0].clone(),
                priority: spec.priority,
                deadline: deadline(spec.start),
            },
        });
        let mut tick = spec.start;
        for i in 1..=spec.swaps {
            tick += spec.period;
            let task = spec.variants[i % spec.variants.len()].clone();
            trace.events.push(TraceEvent {
                tick,
                op: TraceOp::Swap {
                    job,
                    task,
                    priority: spec.priority,
                    deadline: deadline(tick),
                },
            });
        }
        trace.events.push(TraceEvent {
            tick: tick + spec.period,
            op: TraceOp::Unload { job },
        });
        trace.normalize();
        trace
    }

    /// Sorts events by tick; within a tick departures come first, then
    /// swaps, then arrivals (so swaps can reuse freed area before new
    /// loads compete for it).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| {
            (
                e.tick,
                match &e.op {
                    TraceOp::Unload { .. } => 0u8,
                    TraceOp::Swap { .. } => 1,
                    TraceOp::Load { .. } => 2,
                },
                match &e.op {
                    TraceOp::Load { job, .. }
                    | TraceOp::Unload { job }
                    | TraceOp::Swap { job, .. } => *job,
                },
            )
        });
    }

    /// Serializes the trace to the line format of the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadTaskName`] when a task name cannot survive
    /// the whitespace-separated format (repository names are arbitrary
    /// strings; trace files only support names without whitespace that
    /// don't start with `#`).
    pub fn to_text(&self) -> Result<String, TraceError> {
        let mut out = String::from("# vbs-sched trace v1\n");
        for event in &self.events {
            match &event.op {
                TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    check_task_name(task)?;
                    out.push_str(&format!(
                        "load {} {} {} {}",
                        event.tick, job, task, priority
                    ));
                    if let Some(d) = deadline {
                        out.push_str(&format!(" {d}"));
                    }
                    out.push('\n');
                }
                TraceOp::Unload { job } => {
                    out.push_str(&format!("unload {} {}\n", event.tick, job));
                }
                TraceOp::Swap {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    check_task_name(task)?;
                    out.push_str(&format!(
                        "swap {} {} {} {}",
                        event.tick, job, task, priority
                    ));
                    if let Some(d) = deadline {
                        out.push_str(&format!(" {d}"));
                    }
                    out.push('\n');
                }
            }
        }
        Ok(out)
    }

    /// Parses the line format of the module docs. Blank lines and `#`
    /// comments are ignored; events are re-sorted by tick.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] with the offending line number.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = |reason: &str| TraceError::Malformed {
                line: idx + 1,
                reason: reason.to_string(),
            };
            let mut fields = line.split_whitespace();
            let op = fields.next().expect("non-empty line has a first field");
            match op {
                "load" | "swap" => {
                    let tick = parse_u64(fields.next(), "tick").map_err(|e| malformed(&e))?;
                    let job = parse_u64(fields.next(), "job").map_err(|e| malformed(&e))?;
                    let task = fields
                        .next()
                        .ok_or_else(|| malformed("missing task name"))?
                        .to_string();
                    let priority = parse_u64(fields.next(), "priority")
                        .map_err(|e| malformed(&e))?
                        .try_into()
                        .map_err(|_| malformed("priority exceeds u8"))?;
                    let deadline = match fields.next() {
                        Some(d) => Some(parse_u64(Some(d), "deadline").map_err(|e| malformed(&e))?),
                        None => None,
                    };
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields"));
                    }
                    let op = if op == "load" {
                        TraceOp::Load {
                            job,
                            task,
                            priority,
                            deadline,
                        }
                    } else {
                        TraceOp::Swap {
                            job,
                            task,
                            priority,
                            deadline,
                        }
                    };
                    events.push(TraceEvent { tick, op });
                }
                "unload" => {
                    let tick = parse_u64(fields.next(), "tick").map_err(|e| malformed(&e))?;
                    let job = parse_u64(fields.next(), "job").map_err(|e| malformed(&e))?;
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields"));
                    }
                    events.push(TraceEvent {
                        tick,
                        op: TraceOp::Unload { job },
                    });
                }
                other => return Err(malformed(&format!("unknown op `{other}`"))),
            }
        }
        let mut trace = Trace { events };
        trace.normalize();
        Ok(trace)
    }
}

fn check_task_name(task: &str) -> Result<(), TraceError> {
    if task.is_empty() || task.starts_with('#') || task.chars().any(char::is_whitespace) {
        return Err(TraceError::BadTaskName {
            name: task.to_string(),
        });
    }
    Ok(())
}

fn parse_u64(field: Option<&str>, what: &str) -> Result<u64, String> {
    field
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            tasks: vec!["a".into(), "b".into()],
            loads: 25,
            deadline_slack: Some(7),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn synthetic_is_deterministic_and_paired() {
        let t1 = Trace::synthetic(&spec());
        let t2 = Trace::synthetic(&spec());
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 50);
        let loads = t1
            .events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Load { .. }))
            .count();
        assert_eq!(loads, 25);
        // Ticks are sorted.
        assert!(t1.events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn text_roundtrip_preserves_the_trace() {
        let trace = Trace::synthetic(&spec());
        let text = trace.to_text().unwrap();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn serialization_rejects_unrepresentable_task_names() {
        let mut trace = Trace::default();
        trace.events.push(TraceEvent {
            tick: 1,
            op: TraceOp::Load {
                job: 1,
                task: "my task".into(),
                priority: 0,
                deadline: None,
            },
        });
        assert!(matches!(
            trace.to_text(),
            Err(TraceError::BadTaskName { .. })
        ));
    }

    #[test]
    fn swap_roundtrips_and_orders_between_unload_and_load() {
        let mut trace = Trace::default();
        trace.events.push(TraceEvent {
            tick: 5,
            op: TraceOp::Load {
                job: 1,
                task: "a".into(),
                priority: 2,
                deadline: None,
            },
        });
        trace.events.push(TraceEvent {
            tick: 5,
            op: TraceOp::Swap {
                job: 2,
                task: "b".into(),
                priority: 1,
                deadline: Some(9),
            },
        });
        trace.events.push(TraceEvent {
            tick: 5,
            op: TraceOp::Unload { job: 3 },
        });
        trace.normalize();
        assert!(matches!(trace.events[0].op, TraceOp::Unload { .. }));
        assert!(matches!(trace.events[1].op, TraceOp::Swap { .. }));
        assert!(matches!(trace.events[2].op, TraceOp::Load { .. }));
        let text = trace.to_text().unwrap();
        assert!(text.contains("swap 5 2 b 1 9\n"), "{text}");
        assert_eq!(Trace::from_text(&text).unwrap(), trace);
    }

    #[test]
    fn variant_swap_generates_the_scenario() {
        let spec = VariantSwapSpec {
            variants: vec!["t@s".into(), "t@m".into(), "t@l".into()],
            swaps: 5,
            period: 10,
            deadline_slack: Some(3),
            priority: 2,
            start: 4,
            background: None,
        };
        let trace = Trace::variant_swap(&spec);
        // 1 load + 5 swaps + 1 unload.
        assert_eq!(trace.len(), 7);
        assert_eq!(
            trace.events[0].op,
            TraceOp::Load {
                job: 1,
                task: "t@s".into(),
                priority: 2,
                deadline: Some(7),
            }
        );
        // Swaps cycle through the variants.
        assert_eq!(
            trace.events[1].op,
            TraceOp::Swap {
                job: 1,
                task: "t@m".into(),
                priority: 2,
                deadline: Some(17),
            }
        );
        assert_eq!(trace.events[6].op, TraceOp::Unload { job: 1 });
        assert_eq!(trace.events[6].tick, 4 + 6 * 10);
        // Deterministic.
        assert_eq!(trace, Trace::variant_swap(&spec));
    }

    #[test]
    fn variant_swap_merges_background_after_its_job_ids() {
        let spec = VariantSwapSpec {
            variants: vec!["v".into()],
            background: Some(super::super::trace::WorkloadSpec {
                tasks: vec!["bg".into()],
                loads: 10,
                ..WorkloadSpec::default()
            }),
            ..VariantSwapSpec::default()
        };
        let trace = Trace::variant_swap(&spec);
        // Background jobs 1..=10, the variant job is 11.
        let swap_jobs: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match &e.op {
                TraceOp::Swap { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert!(swap_jobs.iter().all(|&j| j == 11), "{swap_jobs:?}");
        assert_eq!(trace.len(), 10 * 2 + 1 + spec.swaps + 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            Trace::from_text("load 1 2"),
            Err(TraceError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Trace::from_text("# ok\nnop 3 4"),
            Err(TraceError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            Trace::from_text("unload 1 2 3"),
            Err(TraceError::Malformed { .. })
        ));
        let ok = Trace::from_text("\n# comment\nload 3 1 fir 2 9\nunload 5 1\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(
            ok.events[0].op,
            TraceOp::Load {
                job: 1,
                task: "fir".into(),
                priority: 2,
                deadline: Some(9),
            }
        );
    }
}
