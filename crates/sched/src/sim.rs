//! The trace-driven workload simulator.
//!
//! [`replay`] drives a [`Scheduler`] through a [`Trace`], batching the
//! events of each tick into one `process_pending` round (so departures free
//! space before same-tick arrivals claim it) and collecting a [`SimReport`]
//! of scheduler, cache and fragmentation metrics at the end. Everything is
//! deterministic: the same trace against the same scheduler configuration
//! yields the same report, which is what the policy-comparison benchmarks
//! and the acceptance tests rely on.

use crate::cache::CacheStats;
use crate::scheduler::{Outcome, Request, SchedMetrics, Scheduler};
use crate::trace::{Trace, TraceOp};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Metrics of one trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Events replayed.
    pub events: usize,
    /// Scheduler counters at the end of the replay.
    pub sched: SchedMetrics,
    /// Decode-cache counters at the end of the replay.
    pub cache: CacheStats,
    /// Fragmentation of the final fabric state.
    pub final_fragmentation: f64,
    /// Unload events whose job was already gone (evicted or rejected).
    pub departures_already_gone: u64,
}

impl SimReport {
    /// Accepted / submitted loads.
    pub fn acceptance_rate(&self) -> f64 {
        self.sched.acceptance_rate()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events            {:>8}", self.events)?;
        writeln!(f, "loads submitted   {:>8}", self.sched.loads_submitted)?;
        writeln!(
            f,
            "accepted          {:>8}  ({:.1}%)",
            self.sched.loads_accepted,
            100.0 * self.acceptance_rate()
        )?;
        writeln!(f, "rejected          {:>8}", self.sched.loads_rejected)?;
        writeln!(f, "deadline missed   {:>8}", self.sched.deadline_missed)?;
        writeln!(f, "evictions         {:>8}", self.sched.evictions)?;
        writeln!(f, "relocations       {:>8}", self.sched.relocations)?;
        writeln!(
            f,
            "decodes           {:>8}  (mean {:.1} µs)",
            self.sched.decodes,
            self.sched.mean_decode_micros()
        )?;
        writeln!(
            f,
            "cache             {:>8} hits / {} misses ({:.1}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate()
        )?;
        writeln!(
            f,
            "fragmentation     {:>8.3} mean / {:.3} final",
            self.sched.mean_fragmentation(),
            self.final_fragmentation
        )
    }
}

/// Replays `trace` through `scheduler` and reports the metrics of **this
/// replay only** — on a reused scheduler (e.g. to measure a warm decode
/// cache), counters accumulated by earlier activity are subtracted out.
///
/// Trace job ids are translated to scheduler job ids on the fly; an unload
/// of a job that was rejected or already evicted counts in
/// [`SimReport::departures_already_gone`] instead of failing.
pub fn replay(scheduler: &mut Scheduler, trace: &Trace) -> SimReport {
    let sched_before = *scheduler.metrics();
    let cache_before = scheduler.cache_stats();
    let mut job_map: HashMap<u64, u64> = HashMap::new();
    // (sched job, trace job) pairs of the current tick's arrivals.
    let mut load_of_round: Vec<(u64, u64)> = Vec::new();
    // Departures seen before their arrival was mapped (a zero-duration job
    // unloads in the same tick it loads, and departures sort first within a
    // tick): remembered and executed right after the arrival resolves.
    let mut deferred: HashSet<u64> = HashSet::new();
    let mut already_gone = 0u64;

    let mut index = 0;
    while index < trace.events.len() {
        let tick = trace.events[index].tick;
        scheduler.advance_to(tick);
        load_of_round.clear();
        while index < trace.events.len() && trace.events[index].tick == tick {
            match &trace.events[index].op {
                TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    let sched_job = scheduler.submit(Request::Load {
                        task: task.clone(),
                        priority: *priority,
                        deadline: *deadline,
                    });
                    load_of_round.push((sched_job, *job));
                }
                TraceOp::Unload { job } => match job_map.remove(job) {
                    Some(sched_job) => {
                        scheduler.submit(Request::Unload { job: sched_job });
                    }
                    None => {
                        deferred.insert(*job);
                    }
                },
            }
            index += 1;
        }
        for outcome in scheduler.process_pending() {
            match outcome {
                Outcome::Loaded { job, .. } => {
                    if let Some(&(_, trace_job)) =
                        load_of_round.iter().find(|(sched, _)| *sched == job)
                    {
                        job_map.insert(trace_job, job);
                    }
                    // Evicted victims keep their map entries; their later
                    // unload simply finds the job no longer resident.
                }
                Outcome::NotResident { .. } => already_gone += 1,
                _ => {}
            }
        }
        // Execute departures that arrived before their load resolved.
        let mut follow_up = false;
        for &(sched_job, trace_job) in &load_of_round {
            if deferred.remove(&trace_job) {
                if job_map.remove(&trace_job).is_some() {
                    scheduler.submit(Request::Unload { job: sched_job });
                    follow_up = true;
                } else {
                    // The load itself was rejected; its departure is moot.
                    already_gone += 1;
                }
            }
        }
        if follow_up {
            for outcome in scheduler.process_pending() {
                if matches!(outcome, Outcome::NotResident { .. }) {
                    already_gone += 1;
                }
            }
        }
    }
    // Departures that never matched any arrival.
    already_gone += deferred.len() as u64;

    SimReport {
        events: trace.events.len(),
        sched: metrics_delta(scheduler.metrics(), &sched_before),
        cache: cache_delta(scheduler.cache_stats(), cache_before),
        final_fragmentation: scheduler.manager().fabric_view().fragmentation(),
        departures_already_gone: already_gone,
    }
}

/// Counters accumulated between two scheduler snapshots.
fn metrics_delta(after: &SchedMetrics, before: &SchedMetrics) -> SchedMetrics {
    SchedMetrics {
        loads_submitted: after.loads_submitted - before.loads_submitted,
        loads_accepted: after.loads_accepted - before.loads_accepted,
        loads_rejected: after.loads_rejected - before.loads_rejected,
        deadline_missed: after.deadline_missed - before.deadline_missed,
        evictions: after.evictions - before.evictions,
        relocations: after.relocations - before.relocations,
        compaction_passes: after.compaction_passes - before.compaction_passes,
        decode_micros: after.decode_micros - before.decode_micros,
        decodes: after.decodes - before.decodes,
        fragmentation_samples: after.fragmentation_samples - before.fragmentation_samples,
        fragmentation_sum: after.fragmentation_sum - before.fragmentation_sum,
    }
}

/// Hit/miss counters accumulated between two cache snapshots; entry counts
/// are point-in-time values and reported as-is.
fn cache_delta(after: CacheStats, before: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        entries: after.entries,
        capacity: after.capacity,
    }
}
